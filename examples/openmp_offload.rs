//! The paper's §6 conclusion: "A similar reduction methodology can also be
//! applied to other programming models such as OpenMP 4.0. OpenMP
//! demonstrates two levels of parallelism and it just needs to ignore the
//! worker." This example runs the same dot product through both dialects
//! and shows they produce identical results on the same pipeline.
//!
//! Run with: `cargo run --release --example openmp_offload`

use uhacc::prelude::*;

const OMP_SRC: &str = r#"
    int n;
    double dot;
    double x[n]; double y[n];
    dot = 0.0;
    #pragma omp target teams distribute parallel for reduction(+:dot) map(to: x, y) num_teams(64)
    for (int i = 0; i < n; i++) {
        dot += x[i] * y[i];
    }
"#;

const ACC_SRC: &str = r#"
    int n;
    double dot;
    double x[n]; double y[n];
    dot = 0.0;
    #pragma acc parallel loop gang vector reduction(+:dot) copyin(x, y) num_gangs(64)
    for (int i = 0; i < n; i++) {
        dot += x[i] * y[i];
    }
"#;

fn run(label: &str, src: &str, xs: &[f64], ys: &[f64]) -> f64 {
    let mut r = AccRunner::new(src).expect("compile");
    r.bind_int("n", xs.len() as i64).unwrap();
    r.bind_array("x", HostBuffer::from_f64(xs)).unwrap();
    r.bind_array("y", HostBuffer::from_f64(ys)).unwrap();
    r.run().unwrap();
    let dims = r.resolve_dims(0).unwrap();
    let got = r.scalar("dot").unwrap().as_f64();
    println!(
        "  {label:<28} dot = {got:.6}   launch = {} teams/gangs x {} workers x {} lanes",
        dims.gangs, dims.workers, dims.vector
    );
    got
}

fn main() {
    let n = 1 << 18;
    let xs: Vec<f64> = (0..n).map(|i| ((i % 91) as f64) * 0.125).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i % 53) as f64) * 0.25 - 3.0).collect();
    let want: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
    println!("dot product of {n} doubles (host reference {want:.6}):\n");
    let omp = run("OpenMP target teams", OMP_SRC, &xs, &ys);
    let acc = run("OpenACC parallel loop", ACC_SRC, &xs, &ys);
    assert!((omp - want).abs() < 1e-6 * want.abs());
    assert!((acc - want).abs() < 1e-6 * want.abs());
    println!("\nBoth dialects lower to the same two-level mapping (worker level unused).");
}
