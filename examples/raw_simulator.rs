//! Program the simulated GPU directly: a hand-written interleaved
//! log-step reduction kernel (the paper's Fig. 7 / Harris's CUDA
//! reduction), built with the `gpsim` kernel builder — the same substrate
//! the OpenACC compiler targets.
//!
//! Run with: `cargo run --release --example raw_simulator`

use uhacc::sim::{
    BinOp, CmpOp, Device, KernelBuilder, LaunchConfig, MemRef, SpecialReg, Ty, Value,
};

/// Build a one-block-per-segment sum-reduction kernel:
/// each block reduces `block_threads * 2` elements into `out[blockIdx.x]`.
fn build_reduce_kernel(block_threads: u32) -> uhacc::sim::Kernel {
    assert!(block_threads.is_power_of_two());
    let mut b = KernelBuilder::new("fig7_reduce");
    let input = b.param(0);
    let out = b.param(1);
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);

    // Each thread loads two elements (Harris's "first add during load").
    let seg = b.bin(
        BinOp::Mul,
        Ty::I32,
        ctaid,
        Value::I32(block_threads as i32 * 2),
    );
    let i0 = b.bin(BinOp::Add, Ty::I32, seg, tid);
    let i1 = b.bin(BinOp::Add, Ty::I32, i0, Value::I32(block_threads as i32));
    let i0_64 = b.cvt(Ty::I64, i0);
    let i1_64 = b.cvt(Ty::I64, i1);
    let a = b.ld_global(Ty::F32, MemRef::indexed(input, i0_64, 4));
    let c = b.ld_global(Ty::F32, MemRef::indexed(input, i1_64, 4));
    let sum = b.bin(BinOp::Add, Ty::F32, a, c);

    // Stage into shared memory.
    let slab = b.alloc_shared(block_threads as usize * 4, 4) as u64;
    b.st_shared(
        Ty::F32,
        MemRef {
            base: Value::U64(slab).into(),
            index: Some(tid),
            scale: 4,
            disp: 0,
        },
        sum,
    );
    b.bar();

    // Interleaved log-step tree (Fig. 7), unrolled, with the
    // warp-synchronous tail: no __syncthreads once s <= 32.
    let mut s = block_threads / 2;
    while s >= 1 {
        let p = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(s as i32));
        let skip = b.new_label();
        b.bra_unless(p, skip);
        let other = b.bin(BinOp::Add, Ty::I32, tid, Value::I32(s as i32));
        let x = b.ld_shared(
            Ty::F32,
            MemRef {
                base: Value::U64(slab).into(),
                index: Some(tid),
                scale: 4,
                disp: 0,
            },
        );
        let y = b.ld_shared(
            Ty::F32,
            MemRef {
                base: Value::U64(slab).into(),
                index: Some(other),
                scale: 4,
                disp: 0,
            },
        );
        let r = b.bin(BinOp::Add, Ty::F32, x, y);
        b.st_shared(
            Ty::F32,
            MemRef {
                base: Value::U64(slab).into(),
                index: Some(tid),
                scale: 4,
                disp: 0,
            },
            r,
        );
        b.place(skip);
        if s > 32 {
            b.bar();
        }
        s /= 2;
    }

    // Thread 0 writes the block result.
    let is0 = b.cmp(CmpOp::Eq, Ty::I32, tid, Value::I32(0));
    let skip = b.new_label();
    b.bra_unless(is0, skip);
    let zero = b.mov_imm(Value::I32(0));
    let res = b.ld_shared(
        Ty::F32,
        MemRef {
            base: Value::U64(slab).into(),
            index: Some(zero),
            scale: 4,
            disp: 0,
        },
    );
    let c64 = b.cvt(Ty::I64, ctaid);
    b.st_global(Ty::F32, MemRef::indexed(out, c64, 4), res);
    b.place(skip);
    b.finish()
}

fn main() {
    let block_threads = 256u32;
    let blocks = 64u32;
    let n = (block_threads * 2 * blocks) as usize;
    let kernel = build_reduce_kernel(block_threads);
    println!(
        "{}",
        kernel
            .disasm()
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!("  ... ({} instructions total)\n", kernel.insts.len());

    let mut dev = Device::default();
    let data: Vec<Value> = (0..n)
        .map(|i| Value::F32(((i % 100) as f32) * 0.5))
        .collect();
    let inp = dev.alloc_elems(Ty::F32, n as u64).unwrap();
    let out = dev.alloc_elems(Ty::F32, blocks as u64).unwrap();
    dev.upload_values(inp, &data).unwrap();

    let stats = dev
        .launch(
            &kernel,
            LaunchConfig::d1(blocks, block_threads),
            &[Value::U64(inp.addr), Value::U64(out.addr)],
        )
        .unwrap();

    // Finish on the host.
    let partials = dev.download_values(out, Ty::F32, blocks as usize).unwrap();
    let got: f64 = partials.iter().map(|v| v.as_f64()).sum();
    let want: f64 = data.iter().map(|v| v.as_f64()).sum();
    println!("reduced {n} floats over {blocks} blocks x {block_threads} threads");
    println!("  device partial sum : {got}");
    println!("  host reference     : {want}");
    assert_eq!(
        got, want,
        "f32 tree vs f32 pairwise happen to agree on this data"
    );
    println!("\nprofile:");
    println!("  warp instructions    : {}", stats.warp_insts);
    println!("  global transactions  : {}", stats.global_transactions);
    println!("  shared accesses      : {}", stats.shared_accesses);
    println!(
        "  bank conflict ways   : {:.2} per access (1.0 = conflict-free)",
        stats.conflict_ways_per_access().unwrap_or(f64::NAN)
    );
    println!("  barrier arrivals     : {}", stats.barriers);
    println!(
        "  modelled kernel time : {:.1} us",
        stats.cycles as f64 / 706e6 * 1e6
    );
}
