//! Compare the paper's codegen strategy choices head to head on one
//! reduction: every `CompilerOptions` knob from §3.1–§3.3, plus the two
//! commercial-compiler personalities.
//!
//! Run with: `cargo run --release --example strategy_ablation`

use uhacc::baselines::Compiler;
use uhacc::core::{CombineSpace, Schedule, TreeStyle, VectorLayout, WorkerStrategy};
use uhacc::prelude::*;

const SRC: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int out[NK][NJ];
    #pragma acc parallel copyin(input) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                int s = 0;
                #pragma acc loop vector reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    s += input[k][j][i];
                }
                out[k][j] = s;
            }
        }
    }
"#;

fn run_with(label: &str, opts: CompilerOptions, want: &[i64]) {
    let (nk, nj, ni) = (4usize, 8usize, 16 * 1024usize);
    let dims = LaunchDims {
        gangs: 4,
        workers: 8,
        vector: 128,
    };
    let mut r = AccRunner::with_options(SRC, opts, dims, Device::default()).expect("compile");
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 9) as i32 - 4).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; nk * nj]))
        .unwrap();
    r.run().unwrap();
    let out = r.array("out").unwrap().to_i64_vec();
    let ok = out == want;
    let st = r.device().stats();
    println!(
        "  {label:<34} {:>9.3} ms   bank-ways/access {:>5.2}   tx/access {:>5.2}   {}",
        r.elapsed_ms(),
        st.totals.conflict_ways_per_access().unwrap_or(f64::NAN),
        st.totals.transactions_per_access().unwrap_or(f64::NAN),
        if ok { "OK" } else { "WRONG" }
    );
    assert!(ok, "{label} produced a wrong result");
}

fn main() {
    // Host expectation.
    let (nk, nj, ni) = (4usize, 8usize, 16 * 1024usize);
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 9) as i32 - 4).collect();
    let want: Vec<i64> = (0..nk * nj)
        .map(|r| input[r * ni..(r + 1) * ni].iter().map(|&v| v as i64).sum())
        .collect();

    println!("vector `+` reduction, 4x8x16384 ints — strategy ablation (paper §3):\n");
    let base = CompilerOptions::openuh();
    run_with("OpenUH defaults (Fig. 6c row-wise)", base.clone(), &want);
    run_with(
        "transposed layout (Fig. 6b)",
        CompilerOptions {
            vector_layout: VectorLayout::Transposed,
            ..base.clone()
        },
        &want,
    );
    run_with(
        "blocking schedule (no coalescing)",
        CompilerOptions {
            schedule: Schedule::Blocking,
            ..base.clone()
        },
        &want,
    );
    run_with(
        "looped tree (barrier per step)",
        CompilerOptions {
            tree: TreeStyle::Looped,
            ..base.clone()
        },
        &want,
    );
    run_with(
        "global-memory staging (§3.3)",
        CompilerOptions {
            combine_space: CombineSpace::Global,
            ..base.clone()
        },
        &want,
    );
    run_with(
        "duplicate-rows workers (Fig. 8b)",
        CompilerOptions {
            worker_strategy: WorkerStrategy::DuplicateRows,
            ..base.clone()
        },
        &want,
    );
    println!("\ncompiler personalities on the same case:\n");
    for c in Compiler::all() {
        run_with(c.name(), c.base_options(), &want);
    }
}
