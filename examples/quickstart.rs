//! Quickstart: compile and run a directive-annotated reduction on the
//! simulated GPU, then inspect what the compiler and device did.
//!
//! Run with: `cargo run --release --example quickstart`

use uhacc::prelude::*;

fn main() -> Result<(), AccError> {
    // An OpenACC program in the supported C dialect: sum a vector with a
    // single reduction clause spanning all three levels of parallelism.
    let src = r#"
        int N;
        double total;
        double a[N];
        total = 0.0;
        #pragma acc parallel num_gangs(192) num_workers(8) vector_length(128)
        {
            #pragma acc loop gang worker vector reduction(+:total)
            for (int i = 0; i < N; i++) {
                total += a[i] * a[i];
            }
        }
    "#;

    let n = 1 << 20;
    let mut runner = AccRunner::new(src)?;
    runner.bind_int("N", n as i64)?;
    let data: Vec<f64> = (0..n).map(|i| ((i % 1000) as f64) * 0.001).collect();
    runner.bind_array("a", HostBuffer::from_f64(&data))?;
    runner.run()?;

    let got = runner.scalar("total")?.as_f64();
    let want: f64 = data.iter().map(|x| x * x).sum();
    println!("sum of squares over {n} elements");
    println!("  device result : {got:.6}");
    println!("  host reference: {want:.6}");
    assert!((got - want).abs() < 1e-6 * want);

    // The simulator keeps the statistics a profiler would show.
    let stats = runner.device().stats();
    println!("\ndevice session:");
    println!("  kernel launches     : {}", stats.launches);
    println!("  warp instructions   : {}", stats.totals.warp_insts);
    println!(
        "  global transactions : {}",
        stats.totals.global_transactions
    );
    println!(
        "  avg active lanes    : {:.1} / 32",
        stats.totals.avg_active_lanes().unwrap_or(f64::NAN)
    );
    println!(
        "  coalescing          : {:.2} transactions/access",
        stats.totals.transactions_per_access().unwrap_or(f64::NAN)
    );
    println!("  modelled time       : {:.3} ms", runner.elapsed_ms());
    Ok(())
}
