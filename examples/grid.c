/* The §6 testsuite grid shape: vector-position `+` reduction over the
 * innermost dimension of a 3-D grid (the Fig. 6 kernel).
 *
 * Profile the two shared-store layouts of §2.2 against each other:
 *
 *   uhacc-cc examples/grid.c --profile --n 32                  # Fig. 6c row-wise
 *   uhacc-cc examples/grid.c --profile --n 32 --compiler caps  # Fig. 6b transposed
 */
int NK; int NJ; int NI;
int input[NK][NJ][NI];
int out[NK][NJ];
#pragma acc parallel copyin(input) copyout(out)
{
    #pragma acc loop gang
    for (int k = 0; k < NK; k++) {
        #pragma acc loop worker
        for (int j = 0; j < NJ; j++) {
            int s = 0;
            #pragma acc loop vector reduction(+:s)
            for (int i = 0; i < NI; i++) {
                s += input[k][j][i];
            }
            out[k][j] = s;
        }
    }
}
