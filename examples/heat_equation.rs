//! The paper's 2D heat equation (Fig. 12a / Fig. 13a): Jacobi relaxation
//! with a `reduction(max:error)` convergence test every iteration.
//!
//! Run with: `cargo run --release --example heat_equation [grid_size]`

use uhacc::apps::heat2d::{run_heat, HeatConfig};
use uhacc::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let cfg = HeatConfig {
        n,
        tol: 1e-3,
        max_iters: 2000,
        ..Default::default()
    };
    println!("2D heat equation on a {n}x{n} grid (tol {:.0e})", cfg.tol);

    let res = run_heat(&cfg, CompilerOptions::openuh()).expect("heat run");
    println!("  iterations          : {}", res.iterations);
    println!("  final max |delta|   : {:.6}", res.final_error);
    println!(
        "  max-reduction time  : {:.3} ms (modelled device time)",
        res.reduction_ms
    );
    println!("  total device time   : {:.3} ms", res.total_ms);

    // A few interior temperatures, for a feel of the solution.
    let mid = n / 2;
    println!("  centre temperature  : {:.3}", res.grid[mid * n + mid]);
    println!("  near-top temperature: {:.3}", res.grid[n + mid]);
    assert!(res.grid[n + mid] > res.grid[mid * n + mid]);
}
