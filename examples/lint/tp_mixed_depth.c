// expect: L104
// `sum` is updated directly in the gang loop body *and* inside the
// nested vector loop: a single per-thread accumulator over-counts the
// shallower site, so codegen rejects this shape.
int N; int M;
double sum;
double a[N];
sum = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += 1.0;
        #pragma acc loop vector
        for (int j = 0; j < M; j++) {
            sum += a[i * M + j];
        }
    }
}
