// Near miss: the inner construct declares `present(a)` — it names the
// array without claiming to move it, which is exactly what the enclosing
// data region provides.
int N;
double a[N];
#pragma acc data copy(a)
{
    #pragma acc parallel present(a)
    {
        #pragma acc loop gang vector
        for (int i = 0; i < N; i++) {
            a[i] = a[i] + 1.0;
        }
    }
}
