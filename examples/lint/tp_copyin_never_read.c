// expect: L300
// `b` is declared copyin but the region only writes it: the
// host-to-device transfer is wasted, and the result must come back some
// other way. The lint suggests copyout(b) (or create(b)).
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copyin(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        b[i] = a[i] + 1.0;
    }
}
