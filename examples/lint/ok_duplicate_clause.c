// Near miss: each variable appears once.
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copyout(b)
{
    double t = 0.0;
    double u = 0.0;
    #pragma acc loop gang private(t, u)
    for (int i = 0; i < N; i++) {
        t = a[i];
        u = t + 1.0;
        b[i] = t * u;
    }
}
