// Near miss: the clause variable is updated in the loop — a live,
// correct reduction.
int N;
double sum;
double a[N];
sum = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector reduction(+:sum)
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
}
