// expect: L301
// `c` is declared copyout but the region only reads it: the
// device-to-host transfer copies back unmodified data. copyin(c) is what
// was meant.
int N;
double a[N];
double c[N];
#pragma acc parallel copyout(a) copyout(c)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        a[i] = c[i] * 2.0;
    }
}
