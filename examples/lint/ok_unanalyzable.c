// Near miss: an affine gather. The *read* side b[idx-like expression]
// would be fine anyway; here both subscripts are affine in i, so the
// dependence test proves independence.
int N;
double a[N];
double b[N];
#pragma acc parallel copyout(a) copyin(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        a[i] = b[N - 1 - i];
    }
}
