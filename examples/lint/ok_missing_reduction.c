// Near miss: the accumulation loop is sequential (`seq`), so iterations
// run in order on one thread — no clause needed, no race.
int N;
double sum;
double a[N];
sum = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop seq
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
}
