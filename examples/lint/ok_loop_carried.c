// Near miss: iteration i reads and writes only its own element a[i]
// (dependence distance 0), so every iteration is independent.
int N;
double a[N];
#pragma acc parallel copy(a)
{
    #pragma acc loop gang vector
    for (int i = 1; i < N; i++) {
        a[i] = a[i] * 2.0 + 1.0;
    }
}
