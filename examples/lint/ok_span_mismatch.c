// Near miss: matrix multiply. The clause also sits on an inner loop, but
// here `c` is consumed inside the worker-vector loop (one dot product per
// (i, j) iteration), so the sequential k loop is exactly where the clause
// belongs — the value never crosses a parallelism level.
int n;
double A[n][n];
double B[n][n];
double C[n][n];
#pragma acc parallel copyin(A) copyin(B) copyout(C)
{
    #pragma acc loop gang
    for (int i = 0; i < n; i++) {
        #pragma acc loop worker vector
        for (int j = 0; j < n; j++) {
            double c = 0.0;
            #pragma acc loop seq reduction(+:c)
            for (int k = 0; k < n; k++) {
                c += A[i][k] * B[k][j];
            }
            C[i][j] = c;
        }
    }
}
