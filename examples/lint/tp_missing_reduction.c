// expect: L100
// Fig. 4 shape with the clause forgotten: every gang*vector iteration
// races on the read-modify-write of `sum`. The fix-it suggests the exact
// clause: reduction(+:sum) on this loop.
int N;
double sum;
double a[N];
sum = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        sum += a[i];
    }
}
