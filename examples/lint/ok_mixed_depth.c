// Near miss: both updates sit at the same depth (inside the vector
// loop), so one per-thread accumulator is exact.
int N; int M;
double sum;
double a[N];
double b[N];
sum = 0.0;
#pragma acc parallel copyin(a) copyin(b)
{
    #pragma acc loop gang reduction(+:sum)
    for (int i = 0; i < N; i++) {
        #pragma acc loop vector
        for (int j = 0; j < M; j++) {
            sum += a[i * M + j];
            sum += b[i];
        }
    }
}
