// expect: L103
// The clause names `sum`, but nothing under the loop updates it — the
// clause is dead (likely a leftover from an edit).
int N;
double sum;
double a[N];
double b[N];
sum = 0.0;
#pragma acc parallel copyin(a) copyout(b)
{
    #pragma acc loop gang vector reduction(+:sum)
    for (int i = 0; i < N; i++) {
        b[i] = a[i] * 2.0;
    }
}
