// expect: L101
// The clause sits on the vector loop, but `s` is only consumed after the
// gang loop — its value is combined across gangs too, outside the
// clause's coverage. The clause belongs on the gang loop (the compiler
// widens the span down to the update, paper §3.2.1).
int N; int M;
double a[N];
double out[N];
#pragma acc parallel copyin(a) copyout(out)
{
    double s = 0.0;
    #pragma acc loop gang
    for (int i = 0; i < N; i++) {
        #pragma acc loop vector reduction(+:s)
        for (int j = 0; j < M; j++) {
            s += a[i * M + j];
        }
    }
    out[0] = s;
}
