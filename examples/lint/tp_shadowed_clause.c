// expect: L401
// The enclosing `acc data` region already made `a` resident; the inner
// copyin moves no data (present-or-copy semantics) and reads as if it
// did. `present(a)` states the actual intent.
int N;
double a[N];
#pragma acc data copy(a)
{
    #pragma acc parallel copyin(a)
    {
        #pragma acc loop gang vector
        for (int i = 0; i < N; i++) {
            a[i] = a[i] + 1.0;
        }
    }
}
