// expect: L200
// A first-order recurrence: iteration i reads the element iteration i-1
// writes. Parallel iterations execute in arbitrary order, so the loop
// cannot be a parallel loop as written.
int N;
double a[N];
#pragma acc parallel copy(a)
{
    #pragma acc loop gang vector
    for (int i = 1; i < N; i++) {
        a[i] = a[i - 1] + 1.0;
    }
}
