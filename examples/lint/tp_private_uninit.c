// expect: L304
// `t` is private to each thread, so the host-side `t = 1.0` does not
// initialize the per-thread copies: the first iteration reads garbage.
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copyout(b)
{
    double t = 1.0;
    #pragma acc loop gang private(t)
    for (int i = 0; i < N; i++) {
        b[i] = t * a[i];
        t = a[i];
    }
}
