// Near miss: every named array is referenced by the region.
int N;
double a[N];
double b[N];
double c[N];
#pragma acc parallel copyin(a) copyin(c) copyout(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        b[i] = a[i] + c[i];
    }
}
