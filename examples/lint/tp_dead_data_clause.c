// expect: L402
// `c` is named in a data clause but the region never touches it — the
// transfer is pure overhead.
int N;
double a[N];
double b[N];
double c[N];
#pragma acc parallel copyin(a) copyin(c) copyout(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        b[i] = a[i] + 1.0;
    }
}
