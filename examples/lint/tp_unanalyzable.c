// expect: L201
// Indirect subscript: the store target depends on idx[i], which the
// dependence test cannot analyze — two iterations may hit the same
// element, so the lint warns (it cannot prove a race either way).
int N;
double a[N];
double b[N];
int idx[N];
#pragma acc parallel copy(a) copyin(b) copyin(idx)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        a[idx[i]] = b[i];
    }
}
