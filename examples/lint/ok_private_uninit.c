// Near miss: the private copy is assigned at the top of every iteration
// before any read — well-defined for every thread.
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copyout(b)
{
    double t = 1.0;
    #pragma acc loop gang private(t)
    for (int i = 0; i < N; i++) {
        t = a[i] + 1.0;
        b[i] = t * a[i];
    }
}
