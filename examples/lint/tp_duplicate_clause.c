// expect: L400
// `t` is listed twice in the private clause — the duplicate has no
// effect and usually signals a typo for another variable.
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copyout(b)
{
    double t = 0.0;
    #pragma acc loop gang private(t, t)
    for (int i = 0; i < N; i++) {
        t = a[i];
        b[i] = t * t;
    }
}
