// Near miss: `c` is written by every iteration — copyout is exactly
// right.
int N;
double a[N];
double c[N];
#pragma acc parallel copyin(a) copyout(c)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        c[i] = a[i] * 2.0;
    }
}
