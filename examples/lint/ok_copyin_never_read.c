// Near miss: `b` is copied in *and* read (then overwritten) — the
// transfer carries live data.
int N;
double a[N];
double b[N];
#pragma acc parallel copyin(a) copy(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        b[i] = b[i] + a[i];
    }
}
