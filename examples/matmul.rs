//! The paper's matrix multiplication (Fig. 12b / Fig. 13b): the inner
//! product k loop parallelized as a vector `+` reduction, compared against
//! the naive sequential-k version.
//!
//! Run with: `cargo run --release --example matmul [n]`

use uhacc::apps::matmul::{cpu_matmul, run_matmul, test_matrices, MatmulConfig};
use uhacc::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    println!("matrix multiply {n}x{n} (double)");

    for (label, parallel_k) in [
        ("vector-reduction k loop (Fig. 13b)", true),
        ("sequential k loop (naive)", false),
    ] {
        let cfg = MatmulConfig {
            n,
            parallel_k,
            ..Default::default()
        };
        let res = run_matmul(&cfg, CompilerOptions::openuh()).expect("matmul");
        let (a, b) = test_matrices(n);
        let want = cpu_matmul(&a, &b, n);
        let max_err = res
            .c
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {label:<36} {:>9.3} ms   max |err| = {max_err:.2e}",
            res.kernel_ms
        );
        assert!(max_err < 1e-9);
    }
}
