/* Monte Carlo PI (paper §4, Fig. 13c): gang+vector `+` reduction counting
 * points inside the unit circle. Point coordinates are host-provided
 * arrays, as in the paper.
 *
 * Profile it with:
 *
 *   uhacc-cc examples/pi.c --profile --n 65536
 */
int n;
int m;
double x[n]; double y[n];
m = 0;
#pragma acc parallel loop gang vector reduction(+:m) copyin(x, y)
for (int i = 0; i < n; i++) {
    if (x[i]*x[i] + y[i]*y[i] < 1.0) {
        m += 1;
    }
}
