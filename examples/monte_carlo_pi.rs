//! The paper's Monte Carlo PI (Fig. 12c / Fig. 13c): a gang+vector `+`
//! reduction counting points inside the unit circle.
//!
//! Run with: `cargo run --release --example monte_carlo_pi [samples]`

use uhacc::apps::pi::{cpu_hits, generate_points, run_pi, PiConfig};
use uhacc::prelude::*;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 18);
    let cfg = PiConfig {
        samples,
        ..Default::default()
    };
    println!("Monte Carlo PI with {samples} points (host-pregenerated, as in the paper)");

    let res = run_pi(&cfg, CompilerOptions::openuh()).expect("pi run");
    println!("  hits        : {} / {}", res.hits, res.samples);
    println!(
        "  pi estimate : {:.6} (error {:+.6})",
        res.pi,
        res.pi - std::f64::consts::PI
    );
    println!("  kernel time : {:.3} ms (modelled)", res.kernel_ms);
    println!(
        "  total time  : {:.3} ms (incl. PCIe upload of the points)",
        res.total_ms
    );

    // The simulated reduction is bit-exact with a sequential count.
    let (xs, ys) = generate_points(&cfg);
    assert_eq!(res.hits, cpu_hits(&xs, &ys));
    println!("  verified against the CPU reference: exact match");
}
