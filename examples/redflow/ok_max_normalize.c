// A max -> normalize pipeline: region one reduces the peak magnitude
// into `m`, region two divides every sample by it. The producer's
// scalar output is fully consumed by the consumer, no host code runs in
// between, and the shapes agree — a fusable pair under
// `--fusion-plan`.
int N;
double m;
double a[N];
double b[N];
m = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector reduction(max:m)
    for (int i = 0; i < N; i++) {
        m = fmax(m, a[i]);
    }
}
#pragma acc parallel copyin(a) copyout(b)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        b[i] = a[i] / m;
    }
}
