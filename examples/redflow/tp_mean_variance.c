// expect: L211
// Broken variant: the accumulation of `s` leaks its running value into
// `run[i]` every iteration — a prefix sum (scan), not a reduction. No
// `reduction` clause can express this, so the lint reports an error
// instead of suggesting one.
int N;
double s;
double a[N];
double run[N];
s = 0.0;
#pragma acc parallel copyin(a) copyout(run)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        s += a[i];
        run[i] = s;
    }
}
