// A cascaded mean -> variance pipeline: the first region reduces the
// samples into `s`, the second consumes `s / N` inline while reducing
// the squared deviations into `v`. Both reductions are declared, both
// lint clean, and the redflow fusion analysis proves the pair fusable
// (try `uhacc-cc examples/redflow/ok_mean_variance.c --fusion-plan`).
int N;
double s;
double v;
double a[N];
s = 0.0;
v = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector reduction(+:s)
    for (int i = 0; i < N; i++) {
        s += a[i];
    }
}
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector reduction(+:v)
    for (int i = 0; i < N; i++) {
        v += (a[i] - s / N) * (a[i] - s / N);
    }
}
