// expect: L211
// Broken variant: the loop still bumps `hist[bin[i]]`, but it also
// *reads* the freshly-bumped counter into `last[i]`. The value observed
// is an unspecified partial count under parallel execution, so the
// relaxation is withdrawn and the idiom is reported as an error.
int N;
int B;
int hist[B];
int bin[N];
int last[N];
#pragma acc parallel copy(hist) copyin(bin) copyout(last)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        hist[bin[i]] += 1;
        last[i] = hist[bin[i]];
    }
}
