// expect: L210
// A histogram: the subscript `bin[i]` is data-dependent, so the affine
// dependence test cannot exclude a carried conflict (classically an
// L201 warning). The redflow pass proves every store to `hist` is the
// same commutative `+=` update with no other read or write, so the
// dependence is *relaxed*: the only finding is the informational L210
// note carrying the proven operator, identity and privatization cost.
int N;
int B;
int hist[B];
int bin[N];
#pragma acc parallel copy(hist) copyin(bin)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        hist[bin[i]] += 1;
    }
}
