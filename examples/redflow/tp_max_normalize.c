// expect: L211
// Broken variant: the clause was dropped and the loop folds `m` with
// *two different* combiners — `fmax` on even samples, `fmin` on odd
// ones. Mixed operators combine order-sensitively: no privatization
// scheme is exact, so redflow rejects the idiom outright rather than
// suggesting a clause.
int N;
double m;
double a[N];
m = 0.0;
#pragma acc parallel copyin(a)
{
    #pragma acc loop gang vector
    for (int i = 0; i < N; i++) {
        if (i % 2 == 0) {
            m = fmax(m, a[i]);
        } else {
            m = fmin(m, a[i]);
        }
    }
}
