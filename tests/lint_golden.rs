//! Golden-diff tests for the machine-readable lint output: the JSON
//! rendering is a stable interface (editor integrations parse it), so
//! any change to field order, span layout or message text must show up
//! as an explicit diff here.

use uhacc::parse::diag::{diags_to_json, lint_report_json, LINT_SCHEMA_VERSION};
use uhacc::parse::lint::lint_source;

fn lint_json(src: &str) -> String {
    let (_, findings) = lint_source(src).expect("compile");
    let diags: Vec<_> = findings.into_iter().map(|f| f.diag).collect();
    diags_to_json(&diags, src)
}

fn report_json(src: &str) -> String {
    let (_, findings) = lint_source(src).expect("compile");
    let diags: Vec<_> = findings.into_iter().map(|f| f.diag).collect();
    lint_report_json(&diags, src)
}

#[test]
fn clean_program_is_empty_array() {
    let src = "int N; double s;\n\
               double a[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a)\n\
               {\n\
               #pragma acc loop gang vector reduction(+:s)\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    assert_eq!(lint_json(src), "[]");
}

#[test]
fn missing_reduction_json_golden() {
    let src = "int N; double s;\n\
               double a[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a)\n\
               {\n\
               #pragma acc loop gang vector\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"error\",\"code\":\"L100\",",
        "\"message\":\"`s` is accumulated across iterations of a parallel loop ",
        "without a `reduction` clause\",",
        "\"span\":{\"start\":129,\"end\":130,\"line\":7,\"column\":31},",
        "\"notes\":[",
        "{\"message\":\"concurrent iterations race on the read-modify-write of `s`\",",
        "\"span\":null},",
        "{\"message\":\"the accumulated value of `s` is copied back to the host ",
        "after the region\",\"span\":null},",
        "{\"message\":\"detected reduction span: gang vector (every parallelism ",
        "level between the next use and the update)\",\"span\":null}],",
        "\"fixit\":{\"message\":\"add this clause to the `gang vector` loop\",",
        "\"insert\":\"reduction(+:s)\",",
        "\"at\":{\"start\":70,\"end\":77,\"line\":6,\"column\":1}}}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn warning_json_golden() {
    let src = "int N;\n\
               double a[N];\n\
               double b[N];\n\
               double c[N];\n\
               #pragma acc parallel copyin(a) copyin(c) copyout(b)\n\
               {\n\
               #pragma acc loop gang vector\n\
               for (int i = 0; i < N; i++) { b[i] = a[i] + 1.0; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"warning\",\"code\":\"L402\",",
        "\"message\":\"data clause names `c`, but the region never references it\",",
        "\"span\":{\"start\":46,\"end\":53,\"line\":5,\"column\":1},",
        "\"notes\":[{\"message\":\"remove the clause to avoid a useless transfer\",",
        "\"span\":null}],",
        "\"fixit\":null}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn schema_version_envelope_golden() {
    // The versioned envelope `uhacc-cc --lint --json` prints (and the
    // daemon `/lint` endpoint splices): bumping LINT_SCHEMA_VERSION or
    // changing the envelope framing must show up as a diff here.
    assert_eq!(LINT_SCHEMA_VERSION, 2);
    let clean = "int N; double s;\n\
                 double a[N];\n\
                 s = 0;\n\
                 #pragma acc parallel copyin(a)\n\
                 {\n\
                 #pragma acc loop gang vector reduction(+:s)\n\
                 for (int i = 0; i < N; i++) { s += a[i]; }\n\
                 }\n";
    assert_eq!(
        report_json(clean),
        "{\"schema_version\":2,\"diagnostics\":[]}"
    );
}

#[test]
fn relaxation_note_json_golden() {
    // The L210 relaxation note: severity `note`, the commutativity
    // proof, the operator identity and the privatization cost.
    let src = "int N; int B;\n\
               int hist[B]; int bin[N];\n\
               #pragma acc parallel copy(hist) copyin(bin)\n\
               {\n\
               #pragma acc loop gang vector\n\
               for (int i = 0; i < N; i++) { hist[bin[i]] += 1; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"note\",\"code\":\"L210\",",
        "\"message\":\"carried accesses on `hist` form a `+` reduction; ",
        "the dependence is relaxed\",",
        "\"span\":{\"start\":144,\"end\":148,\"line\":6,\"column\":31},",
        "\"notes\":[",
        "{\"message\":\"proof: all 1 store(s) to `hist` in this parallel loop are ",
        "`hist[e] += v` updates with no other read or write of `hist`, so any ",
        "interleaving commutes\",\"span\":null},",
        "{\"message\":\"identity: 0; privatization cost: one private copy per ",
        "gang+vector lane, combined in a log-depth tree at loop exit\",\"span\":null},",
        "{\"message\":\"the subscripts of `hist` are not analyzable, so a carried ",
        "conflict cannot be excluded\",",
        "\"span\":{\"start\":149,\"end\":154,\"line\":6,\"column\":36}}],",
        "\"fixit\":null}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn illegal_reduction_json_golden() {
    // The L211 scan error: the running value of the accumulator escapes
    // into `run[i]` every iteration.
    let src = "int N; double s;\n\
               double a[N]; double run[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a) copyout(run)\n\
               {\n\
               #pragma acc loop gang\n\
               for (int i = 0; i < N; i++) { s += a[i]; run[i] = s; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"error\",\"code\":\"L211\",",
        "\"message\":\"the running value of `s` is consumed inside the parallel ",
        "loop that accumulates it (a scan, not a reduction)\",",
        "\"span\":{\"start\":170,\"end\":171,\"line\":7,\"column\":51},",
        "\"notes\":[",
        "{\"message\":\"`s` is accumulated here\",",
        "\"span\":{\"start\":150,\"end\":151,\"line\":7,\"column\":31}},",
        "{\"message\":\"each iteration observes an unspecified partial value under ",
        "parallel execution; a reduction clause cannot express this \u{2014} mark ",
        "the loop `seq` or restructure as a scan primitive\",\"span\":null}],",
        "\"fixit\":null}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn json_is_parseable_shape() {
    // Structural sanity for a multi-finding program: valid JSON array
    // framing, one object per finding, errors ranked before warnings.
    let src = "int N; double s;\n\
               double a[N];\n\
               double dead[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a) copyin(dead)\n\
               {\n\
               #pragma acc loop gang\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    let json = lint_json(src);
    assert!(json.starts_with("[{") && json.ends_with("}]"));
    let err = json.find("\"severity\":\"error\"").expect("has an error");
    let warn = json
        .find("\"severity\":\"warning\"")
        .expect("has a warning");
    assert!(err < warn, "errors must rank before warnings");
    assert!(json.contains("\"code\":\"L100\""));
    assert!(json.contains("\"code\":\"L402\""));
}
