//! Golden-diff tests for the machine-readable lint output: the JSON
//! rendering is a stable interface (editor integrations parse it), so
//! any change to field order, span layout or message text must show up
//! as an explicit diff here.

use uhacc::parse::diag::diags_to_json;
use uhacc::parse::lint::lint_source;

fn lint_json(src: &str) -> String {
    let (_, findings) = lint_source(src).expect("compile");
    let diags: Vec<_> = findings.into_iter().map(|f| f.diag).collect();
    diags_to_json(&diags, src)
}

#[test]
fn clean_program_is_empty_array() {
    let src = "int N; double s;\n\
               double a[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a)\n\
               {\n\
               #pragma acc loop gang vector reduction(+:s)\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    assert_eq!(lint_json(src), "[]");
}

#[test]
fn missing_reduction_json_golden() {
    let src = "int N; double s;\n\
               double a[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a)\n\
               {\n\
               #pragma acc loop gang vector\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"error\",\"code\":\"L100\",",
        "\"message\":\"`s` is accumulated across iterations of a parallel loop ",
        "without a `reduction` clause\",",
        "\"span\":{\"start\":129,\"end\":130,\"line\":7,\"column\":31},",
        "\"notes\":[",
        "{\"message\":\"concurrent iterations race on the read-modify-write of `s`\",",
        "\"span\":null},",
        "{\"message\":\"the accumulated value of `s` is copied back to the host ",
        "after the region\",\"span\":null},",
        "{\"message\":\"detected reduction span: gang vector (every parallelism ",
        "level between the next use and the update)\",\"span\":null}],",
        "\"fixit\":{\"message\":\"add this clause to the `gang vector` loop\",",
        "\"insert\":\"reduction(+:s)\",",
        "\"at\":{\"start\":70,\"end\":77,\"line\":6,\"column\":1}}}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn warning_json_golden() {
    let src = "int N;\n\
               double a[N];\n\
               double b[N];\n\
               double c[N];\n\
               #pragma acc parallel copyin(a) copyin(c) copyout(b)\n\
               {\n\
               #pragma acc loop gang vector\n\
               for (int i = 0; i < N; i++) { b[i] = a[i] + 1.0; }\n\
               }\n";
    let expected = concat!(
        "[{\"severity\":\"warning\",\"code\":\"L402\",",
        "\"message\":\"data clause names `c`, but the region never references it\",",
        "\"span\":{\"start\":46,\"end\":53,\"line\":5,\"column\":1},",
        "\"notes\":[{\"message\":\"remove the clause to avoid a useless transfer\",",
        "\"span\":null}],",
        "\"fixit\":null}]",
    );
    assert_eq!(lint_json(src), expected);
}

#[test]
fn json_is_parseable_shape() {
    // Structural sanity for a multi-finding program: valid JSON array
    // framing, one object per finding, errors ranked before warnings.
    let src = "int N; double s;\n\
               double a[N];\n\
               double dead[N];\n\
               s = 0;\n\
               #pragma acc parallel copyin(a) copyin(dead)\n\
               {\n\
               #pragma acc loop gang\n\
               for (int i = 0; i < N; i++) { s += a[i]; }\n\
               }\n";
    let json = lint_json(src);
    assert!(json.starts_with("[{") && json.ends_with("}]"));
    let err = json.find("\"severity\":\"error\"").expect("has an error");
    let warn = json
        .find("\"severity\":\"warning\"")
        .expect("has a warning");
    assert!(err < warn, "errors must rank before warnings");
    assert!(json.contains("\"code\":\"L100\""));
    assert!(json.contains("\"code\":\"L402\""));
}
