//! Golden-diff test for the redflow fusion plans of the
//! `examples/redflow/` corpus: the plan JSON is a stable interface (the
//! CI `redflow` job uploads it as an artifact and fails on verdict
//! drift), so any change to a region fact, a fusability verdict, or the
//! rendering itself must show up as an explicit diff against the
//! committed `FUSION_PLANS.golden.json`.
//!
//! To regenerate after an *intended* analysis change:
//!
//! ```console
//! $ for f in examples/redflow/*.c; do uhacc-cc $f --fusion-plan=json; done
//! ```
//!
//! and splice the outputs into the golden file (one `"<file>": <plan>`
//! entry per example, sorted by filename).

use std::path::PathBuf;

fn redflow_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/redflow")
}

/// Build the aggregate document in the exact committed layout.
fn render_aggregate() -> String {
    let mut files: Vec<PathBuf> = std::fs::read_dir(redflow_dir())
        .expect("examples/redflow exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no redflow examples");
    let mut out = String::from("{\n");
    for (i, path) in files.iter().enumerate() {
        let name = path.file_name().unwrap().to_string_lossy();
        let src = std::fs::read_to_string(path).expect("read example");
        let hir = uhacc::parse::compile(&src)
            .unwrap_or_else(|d| panic!("{name}: failed to compile: {}", d.render(&src)));
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"{name}\": {}",
            uhacc::driver::analyze_json(&hir)
        ));
    }
    out.push_str("\n}\n");
    out
}

#[test]
fn fusion_plans_match_committed_golden() {
    let golden_path = redflow_dir().join("FUSION_PLANS.golden.json");
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden exists");
    let got = render_aggregate();
    assert_eq!(
        got, golden,
        "fusion plans drifted from examples/redflow/FUSION_PLANS.golden.json \
         — if the analysis change is intended, regenerate the golden \
         (see this test's module docs)"
    );
}

#[test]
fn fusion_plans_are_deterministic() {
    // Byte-stability across repeated analysis of the same sources — the
    // property the committed golden (and the CI artifact diff) rests on.
    assert_eq!(render_aggregate(), render_aggregate());
}

#[test]
fn corpus_exercises_both_verdicts() {
    // The golden must keep at least one fusable chain and at least one
    // region set with none, or the diff stops guarding anything.
    let agg = render_aggregate();
    assert!(agg.contains("\"chains\":[[0,1]]"), "{agg}");
    assert!(agg.contains("\"chains\":[]"), "{agg}");
}
