//! Drive the lint rule catalog over the `examples/lint/` and
//! `examples/redflow/` corpora: every `tp_*.c` file must report exactly
//! the codes named in its `// expect:` header, and every `ok_*.c`
//! near-miss must produce no errors or warnings — only the
//! informational notes (if any) its own `// expect:` header declares
//! (`ok_histogram.c` legitimately carries an L210 relaxation note).

use std::collections::BTreeSet;
use std::path::PathBuf;
use uhacc::parse::lint::lint_source;
use uhacc::parse::Severity;

fn corpus() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = Vec::new();
    for sub in ["examples/lint", "examples/redflow"] {
        let dir = root.join(sub);
        files.extend(
            std::fs::read_dir(&dir)
                .unwrap_or_else(|e| panic!("{} exists: {e}", dir.display()))
                .map(|e| e.expect("dir entry").path())
                .filter(|p| p.extension().is_some_and(|x| x == "c")),
        );
    }
    files.sort();
    assert!(!files.is_empty(), "no example files");
    files
}

/// Codes named in the `// expect: L100 L200` header, if any.
fn expected_codes(src: &str) -> BTreeSet<String> {
    src.lines()
        .take(1)
        .filter_map(|l| l.strip_prefix("// expect:"))
        .flat_map(|rest| rest.split_whitespace().map(|c| c.to_string()))
        .collect()
}

#[test]
fn corpus_covers_every_rule_with_a_pair() {
    let files = corpus();
    let names: Vec<String> = files
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for tp in names.iter().filter(|n| n.starts_with("tp_")) {
        let ok = tp.replacen("tp_", "ok_", 1);
        assert!(
            names.contains(&ok),
            "true positive `{tp}` has no clean near-miss `{ok}`"
        );
    }
    assert!(names.iter().filter(|n| n.starts_with("tp_")).count() >= 8);
}

#[test]
fn true_positives_report_exactly_their_expected_codes() {
    for path in corpus() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("tp_") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read example");
        let expect = expected_codes(&src);
        assert!(
            !expect.is_empty(),
            "{name}: tp_ example must declare `// expect:` codes"
        );
        let (_, findings) = lint_source(&src)
            .unwrap_or_else(|d| panic!("{name}: failed to compile: {}", d.render(&src)));
        let got: BTreeSet<String> = findings.iter().map(|f| f.code().to_string()).collect();
        assert_eq!(
            got, expect,
            "{name}: reported codes do not match the `// expect:` header"
        );
    }
}

#[test]
fn near_misses_lint_clean() {
    for path in corpus() {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("ok_") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read example");
        let (_, findings) = lint_source(&src)
            .unwrap_or_else(|d| panic!("{name}: failed to compile: {}", d.render(&src)));
        // No errors or warnings, ever. Informational notes are allowed
        // only when the file's own `// expect:` header declares them.
        let offending: Vec<_> = findings
            .iter()
            .filter(|f| f.diag.severity != Severity::Note)
            .map(|f| (f.code(), &f.diag.message))
            .collect();
        assert!(
            offending.is_empty(),
            "{name}: expected no errors/warnings, got {offending:?}"
        );
        let notes: BTreeSet<String> = findings.iter().map(|f| f.code().to_string()).collect();
        assert_eq!(
            notes,
            expected_codes(&src),
            "{name}: notes do not match the `// expect:` header"
        );
    }
}

#[test]
fn paper_applications_lint_clean() {
    // The repo's own application sources (heat, matmul, pi) must produce
    // zero findings: the checks add no false positives on real codes.
    for (name, src) in uhacc::apps::all_sources() {
        let (_, findings) =
            lint_source(src).unwrap_or_else(|d| panic!("{name}: {}", d.render(src)));
        assert!(
            findings.is_empty(),
            "{name}: expected no findings, got {:?}",
            findings.iter().map(|f| f.code()).collect::<Vec<_>>()
        );
    }
}
