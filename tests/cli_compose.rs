//! Integration tests for `uhacc-cc` analysis-mode composability: the
//! four static passes (`--verify`, `--lint`, `--fusion-plan`,
//! `--certify`) compose in a single invocation — every report renders,
//! the kernel/plan dump is suppressed unless explicitly requested, and
//! the process exits with the *worst* of the individual pass codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn uhacc_cc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_uhacc-cc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn uhacc-cc")
}

fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn all_four_analysis_passes_compose_in_one_invocation() {
    let out = uhacc_cc(&[
        &example("grid.c"),
        "--verify",
        "--lint",
        "--fusion-plan",
        "--certify",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "exit: {:?}\n{stdout}", out.status);
    // Every pass rendered its section…
    assert!(stdout.contains("lint clean"), "{stdout}");
    assert!(stdout.contains("fusion plan:"), "{stdout}");
    assert!(stdout.contains("redcert: region 0"), "{stdout}");
    assert!(stdout.contains("CERTIFIED"), "{stdout}");
    assert!(stdout.contains("static verification"), "{stdout}");
    // …and the kernel dump stayed suppressed (analysis mode, no --emit).
    assert!(!stdout.contains(".kernel"), "{stdout}");
}

#[test]
fn certify_json_is_the_daemon_body() {
    let out = uhacc_cc(&[&example("grid.c"), "--certify=json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("{\"schema_version\":1,\"reports\":["),
        "{stdout}"
    );
    assert!(stdout.contains("\"verdict\":\"certified\""), "{stdout}");
}

#[test]
fn refuted_region_exits_one_even_composed_with_clean_passes() {
    // The redflow true-positive twin drops its reduction clause: the
    // kernel provably does not implement the sequential region, so
    // --certify must refute it and drive the composed exit code to 1.
    let out = uhacc_cc(&[
        &example("redflow/tp_mean_variance.c"),
        "--fusion-plan",
        "--certify",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("REFUTED"), "{stdout}");
    assert!(stdout.contains("fusion plan:"), "{stdout}");
}

#[test]
fn unknown_verdict_is_honest_but_not_fatal() {
    // pi.c branches on a symbolic array value: the validator must say
    // Unknown (never Certified), and Unknown exits 0 — it is a coverage
    // gap, not a proven miscompilation.
    let out = uhacc_cc(&[&example("pi.c"), "--certify"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
    assert!(stdout.contains("symbolic branch condition"), "{stdout}");
}

#[test]
fn garbage_certify_format_is_a_flag_error() {
    let out = uhacc_cc(&[&example("grid.c"), "--certify=garbage"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid value for --certify: expected `text` or `json`"),
        "{stderr}"
    );
}
