//! Integration test for the sanitizer detection matrix — the output of
//! `acc-testsuite --sanitize` / `uhacc-cc --sanitize`.
//!
//! The paper's §6 grid (every OpenUH reduction strategy) must run
//! hazard-free under the full sanitizer, while known miscompilations are
//! flagged with the hazard class that explains them. This is the
//! subsystem's acceptance gate: a correctness suite only proves results
//! right for one geometry; the sanitizer proves the barrier placement
//! right for the execution that actually happened.

use uhacc::sim::HazardClass;
use uhacc::testsuite::{format_matrix, run_sanitize_matrix, SanitizeRow, SuiteConfig};

fn matrix() -> Vec<SanitizeRow> {
    run_sanitize_matrix(&SuiteConfig::quick())
}

fn row<'a>(rows: &'a [SanitizeRow], needle: &str) -> &'a SanitizeRow {
    rows.iter()
        .find(|r| r.label.contains(needle))
        .unwrap_or_else(|| panic!("no matrix row containing `{needle}`"))
}

#[test]
fn openuh_strategy_grid_is_hazard_free() {
    let rows = matrix();
    let openuh: Vec<_> = rows
        .iter()
        .filter(|r| r.label.starts_with("openuh"))
        .collect();
    assert_eq!(openuh.len(), 7, "one row per reduction position");
    for r in openuh {
        assert!(
            !r.any(),
            "{}: expected hazard-free, got {} racecheck / {} synccheck / {} initcheck ({:?})",
            r.label,
            r.racecheck,
            r.synccheck,
            r.initcheck,
            r.sample
        );
        assert_eq!(r.verdict(), "clean");
    }
}

#[test]
fn miscompilations_are_flagged_with_the_right_class() {
    let rows = matrix();

    // The three named wrong-answer cases, all racecheck-class.
    for needle in [
        "missing post-broadcast barrier",
        "warp-sync tail",
        "transposed slab reuse",
    ] {
        let r = row(&rows, needle);
        assert!(
            r.racecheck > 0,
            "{}: expected racecheck hazards, got none ({:?})",
            r.label,
            r.sample
        );
        assert_eq!(r.verdict(), "detected", "{}", r.label);
    }

    // A missing stage barrier additionally exposes reads of not-yet-staged
    // slots: racecheck and initcheck together.
    let stage = row(&rows, "missing stage barrier");
    assert!(stage.racecheck > 0 && stage.initcheck > 0, "{:?}", stage);

    // Sync and init classes have dedicated rows.
    let sync = row(&rows, "divergent control flow");
    assert!(sync.count(HazardClass::SyncCheck) > 0, "{:?}", sync.sample);
    assert_eq!(sync.racecheck, 0);
    let init = row(&rows, "uninitialized shared");
    assert!(init.count(HazardClass::InitCheck) > 0, "{:?}", init.sample);
    assert_eq!(init.synccheck, 0);
}

#[test]
fn formatted_matrix_reads_like_the_cli_output() {
    let rows = matrix();
    let text = format_matrix(&rows);
    assert!(text.contains("racecheck"), "{text}");
    assert!(text.contains("synccheck"), "{text}");
    assert!(text.contains("initcheck"), "{text}");
    assert!(text.contains("openuh gang"), "{text}");
    assert!(text.contains("detected"), "{text}");
    assert!(text.contains("0 unexpected outcome(s)"), "{text}");
    assert!(!text.contains("MISSED"), "{text}");
    assert!(!text.contains("FALSE POSITIVE"), "{text}");
}
