//! Cross-crate integration tests: front end → compiler → runtime →
//! simulator → verification against the CPU reference executor.

use uhacc::baselines::{Compiler, CpuExec};
use uhacc::prelude::*;

/// A program with two regions sharing state: the first computes row sums
/// into `rs`, the second reduces `rs` to a scalar.
#[test]
fn two_regions_share_data_environment() {
    let src = r#"
        int N; int M;
        double total;
        double A[N][M];
        double rs[N];
        total = 0.0;
        #pragma acc parallel copyin(A) copyout(rs)
        {
            #pragma acc loop gang worker
            for (int i = 0; i < N; i++) {
                double s = 0.0;
                #pragma acc loop vector reduction(+:s)
                for (int j = 0; j < M; j++) {
                    s += A[i][j];
                }
                rs[i] = s;
            }
        }
        #pragma acc parallel copyin(rs)
        {
            #pragma acc loop gang vector reduction(+:total)
            for (int i = 0; i < N; i++) {
                total += rs[i];
            }
        }
    "#;
    let (n, m) = (40usize, 300usize);
    let a: Vec<f64> = (0..n * m).map(|x| ((x % 17) as f64) * 0.5 - 4.0).collect();

    let mut r = AccRunner::new(src).unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.bind_int("M", m as i64).unwrap();
    r.bind_array("A", HostBuffer::from_f64(&a)).unwrap();
    r.bind_array("rs", HostBuffer::new(accparse::CType::Double, n))
        .unwrap();
    r.run().unwrap();

    let want: f64 = a.iter().sum();
    let got = r.scalar("total").unwrap().as_f64();
    assert!(
        (got - want).abs() < 1e-9 * want.abs().max(1.0),
        "{got} vs {want}"
    );
    // Row sums came back too.
    let rs = r.array("rs").unwrap().to_f64_vec();
    let want0: f64 = a[..m].iter().sum();
    assert!((rs[0] - want0).abs() < 1e-9);
}

/// GPU result equals the sequential CPU interpreter on the same HIR for a
/// gnarly mixed program.
#[test]
fn device_matches_cpu_reference_interpreter() {
    let src = r#"
        int N;
        long checksum;
        int parity;
        int a[N];
        int b[N];
        checksum = 7;
        parity = 0;
        #pragma acc parallel copyin(a) copyout(b)
        {
            #pragma acc loop gang reduction(+:checksum)
            for (int i = 0; i < N; i++) {
                int v = a[i];
                if (v % 3 == 0) {
                    v = v * 2 + 1;
                } else {
                    v = v - 1;
                }
                b[i] = v;
                checksum += v;
            }
        }
        #pragma acc parallel copyin(b)
        {
            #pragma acc loop gang vector reduction(^:parity)
            for (int i = 0; i < N; i++) {
                parity ^= b[i];
            }
        }
    "#;
    let n = 5000usize;
    let a: Vec<i32> = (0..n).map(|x| ((x * 37) % 91) as i32 - 45).collect();

    let mut gpu = AccRunner::new(src).unwrap();
    gpu.bind_int("N", n as i64).unwrap();
    gpu.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    gpu.bind_array("b", HostBuffer::from_i32(&vec![0; n]))
        .unwrap();
    gpu.run().unwrap();

    let mut cpu = CpuExec::new(src).unwrap();
    cpu.bind_int("N", n as i64).unwrap();
    cpu.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    cpu.bind_array("b", HostBuffer::from_i32(&vec![0; n]))
        .unwrap();
    cpu.run().unwrap();

    assert_eq!(
        gpu.scalar("checksum").unwrap().as_i64(),
        cpu.scalar("checksum").unwrap().as_i64()
    );
    assert_eq!(
        gpu.scalar("parity").unwrap().as_i64(),
        cpu.scalar("parity").unwrap().as_i64()
    );
    assert_eq!(
        gpu.array("b").unwrap().to_i64_vec(),
        cpu.array("b").unwrap().to_i64_vec()
    );
}

/// Every compiler personality agrees on a case that all of them support.
#[test]
fn personalities_agree_on_supported_cases() {
    let src = r#"
        int N; int s;
        int a[N];
        s = 0;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang reduction(+:s)
            for (int i = 0; i < N; i++) {
                s += a[i];
            }
        }
    "#;
    let n = 3000usize;
    let a: Vec<i32> = (0..n).map(|x| (x % 21) as i32 - 10).collect();
    let want: i64 = a.iter().map(|&v| v as i64).sum();
    for c in Compiler::all() {
        let mut r = AccRunner::with_options(
            src,
            c.base_options(),
            LaunchDims {
                gangs: 16,
                workers: 2,
                vector: 64,
            },
            Device::default(),
        )
        .unwrap();
        r.bind_int("N", n as i64).unwrap();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.run().unwrap();
        assert_eq!(r.scalar("s").unwrap().as_i64(), want, "{}", c.name());
    }
}

/// The full quick testsuite: OpenUH passes everything; each baseline shows
/// at least one failure (the paper's robustness claim).
#[test]
fn quick_suite_reproduces_robustness_claim() {
    use accparse::ast::{CType, RedOp};
    use uhacc::testsuite::{run_suite, CaseStatus, SuiteConfig};
    let cfg = SuiteConfig::quick();
    let results = run_suite(
        &Compiler::all(),
        &[RedOp::Add, RedOp::Mul],
        &[CType::Int],
        &cfg,
    );
    let count = |c: Compiler, pred: &dyn Fn(&CaseStatus) -> bool| {
        results
            .iter()
            .filter(|r| r.compiler == c && pred(&r.status))
            .count()
    };
    let is_pass = |s: &CaseStatus| matches!(s, CaseStatus::Pass { .. });
    let is_bad = |s: &CaseStatus| !matches!(s, CaseStatus::Pass { .. });
    assert_eq!(
        count(Compiler::OpenUH, &is_bad),
        0,
        "OpenUH must pass everything"
    );
    assert!(count(Compiler::PgiLike, &is_bad) > 0);
    assert!(count(Compiler::CapsLike, &is_bad) > 0);
    assert!(count(Compiler::PgiLike, &is_pass) > 0);
    assert!(count(Compiler::CapsLike, &is_pass) > 0);
}

/// Diagnostics carry usable source locations end to end.
#[test]
fn diagnostics_render_with_location() {
    let src = "int N;\n#pragma acc parallel\n{\n#pragma acc loop gang reduction(+:nosuch)\nfor (int i = 0; i < N; i++) { }\n}\n";
    let err = accparse::compile(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("line 4"), "{rendered}");
    assert!(rendered.contains("nosuch"), "{rendered}");
}

/// Modelled time scales with the work: the same program on 4x the data
/// takes measurably more simulated time.
#[test]
fn modelled_time_scales_with_work() {
    let src = r#"
        int N; int s;
        int a[N];
        s = 0;
        #pragma acc parallel loop gang vector reduction(+:s) copyin(a)
        for (int i = 0; i < N; i++) { s += a[i]; }
    "#;
    let mut times = Vec::new();
    for n in [20_000usize, 80_000] {
        let mut r = AccRunner::new(src).unwrap();
        r.bind_int("N", n as i64).unwrap();
        r.bind_array("a", HostBuffer::from_i32(&vec![1; n]))
            .unwrap();
        r.run().unwrap();
        assert_eq!(r.scalar("s").unwrap().as_i64(), n as i64);
        times.push(r.elapsed_ms());
    }
    assert!(times[1] > times[0] * 1.5, "{times:?}");
}
