//! Golden-diff test for the redcert certification reports of the
//! example corpus: the report JSON is a stable interface (the CI
//! `certify` job uploads it as an artifact and fails on verdict drift),
//! so any change to a verdict, an observable, a reason string, or the
//! rendering itself must show up as an explicit diff against the
//! committed `CERT_REPORTS.golden.json`.
//!
//! To regenerate after an *intended* validator change:
//!
//! ```console
//! $ for f in examples/*.c examples/redflow/*.c; do uhacc-cc $f --certify=json; done
//! ```
//!
//! and splice the outputs into the golden file (one `"<file>": <reports>`
//! entry per example, `examples/*.c` first, then `redflow/*.c`, each
//! group sorted by filename).

use std::path::PathBuf;
use uhacc::driver::{cert_reports_json, certify_dims, certify_reports, RunRequest};

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples")
}

fn corpus() -> Vec<(String, PathBuf)> {
    let dir = examples_dir();
    let mut groups = Vec::new();
    for sub in [None, Some("redflow")] {
        let d = match sub {
            None => dir.clone(),
            Some(s) => dir.join(s),
        };
        let mut files: Vec<PathBuf> = std::fs::read_dir(&d)
            .expect("examples dir exists")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect();
        files.sort();
        for f in files {
            let name = match sub {
                None => f.file_name().unwrap().to_string_lossy().into_owned(),
                Some(s) => format!("{s}/{}", f.file_name().unwrap().to_string_lossy()),
            };
            groups.push((name, f));
        }
    }
    groups
}

/// Build the aggregate document in the exact committed layout, through
/// the same driver path the CLI and the daemon share.
fn render_aggregate() -> String {
    let files = corpus();
    assert!(!files.is_empty(), "no examples");
    let req = RunRequest {
        dims: certify_dims(),
        ..Default::default()
    };
    let mut out = String::from("{\n");
    for (i, (name, path)) in files.iter().enumerate() {
        let src = std::fs::read_to_string(path).expect("read example");
        let reports = certify_reports(&src, &req, |_| {})
            .unwrap_or_else(|e| panic!("{name}: certification run failed: {e}"));
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  \"{name}\": {}", cert_reports_json(&reports)));
    }
    out.push_str("\n}\n");
    out
}

#[test]
fn cert_reports_match_committed_golden() {
    let golden_path = examples_dir().join("CERT_REPORTS.golden.json");
    let golden = std::fs::read_to_string(&golden_path).expect("committed golden exists");
    let got = render_aggregate();
    assert_eq!(
        got, golden,
        "certification reports drifted from examples/CERT_REPORTS.golden.json \
         — if the validator change is intended, regenerate the golden \
         (see this test's module docs)"
    );
}

#[test]
fn cert_reports_are_deterministic() {
    // Byte-stability across repeated validation of the same sources — the
    // property the committed golden (and the CI artifact diff) rests on.
    assert_eq!(render_aggregate(), render_aggregate());
}

#[test]
fn corpus_exercises_the_whole_verdict_lattice() {
    // The golden must keep every verdict represented — an exact
    // certification (grid.c), a modulo-reassociation one (the legal
    // float reductions), an honest Unknown (pi.c's data-dependent
    // branch), and a refutation (the redflow true-positive twins, whose
    // missing reduction clauses the validator refutes independently of
    // the redflow lint) — or the diff stops guarding the lattice.
    let agg = render_aggregate();
    for needle in [
        "\"verdict\":\"certified\"",
        "\"verdict\":\"certified-modulo-reassoc\"",
        "\"verdict\":\"unknown\"",
        "\"verdict\":\"refuted\"",
    ] {
        assert!(agg.contains(needle), "missing {needle} in:\n{agg}");
    }
}
