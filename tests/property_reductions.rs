//! Property-based testing of the reduction compiler: for random reduction
//! positions, operators, data types, launch geometries (including
//! non-power-of-two and ragged shapes) and loop sizes, the simulated GPU
//! result must match the sequential CPU reference.

// proptest's config idiom spells out `..default()` for forward compat.
#![allow(clippy::needless_update)]

use accparse::ast::{CType, RedOp};
use proptest::prelude::*;
use uhacc::baselines::CpuExec;
use uhacc::prelude::*;
use uhacc::testsuite::cases::{case_source, combo_legal, extents, gen_value, Position};

fn positions() -> impl Strategy<Value = Position> {
    prop_oneof![
        Just(Position::Gang),
        Just(Position::Worker),
        Just(Position::Vector),
        Just(Position::GangWorker),
        Just(Position::WorkerVector),
        Just(Position::GangWorkerVector),
        Just(Position::SameLineGwv),
    ]
}

fn ops() -> impl Strategy<Value = RedOp> {
    prop_oneof![
        Just(RedOp::Add),
        Just(RedOp::Mul),
        Just(RedOp::Max),
        Just(RedOp::Min),
        Just(RedOp::BitAnd),
        Just(RedOp::BitOr),
        Just(RedOp::BitXor),
        Just(RedOp::LogAnd),
        Just(RedOp::LogOr),
    ]
}

fn dtypes() -> impl Strategy<Value = CType> {
    prop_oneof![
        Just(CType::Int),
        Just(CType::Long),
        Just(CType::Float),
        Just(CType::Double),
    ]
}

fn dims() -> impl Strategy<Value = LaunchDims> {
    // Gangs 1..6, workers 1..8, vector 1..160 — deliberately includes
    // non-power-of-two and non-multiple-of-warp shapes (§3.3).
    (1u32..6, 1u32..8, prop_oneof![Just(1u32), 2u32..160])
        .prop_map(|(g, w, v)| LaunchDims {
            gangs: g,
            workers: w,
            vector: v,
        })
        .prop_filter("block fits device", |d| d.threads_per_block() <= 1024)
}

fn values_close(got: gpsim::Value, want: gpsim::Value, t: CType) -> bool {
    match t {
        CType::Int | CType::Long => got.as_i64() == want.as_i64(),
        CType::Float => {
            let (g, w) = (got.as_f64(), want.as_f64());
            (g - w).abs() <= 1e-2 * w.abs().max(1.0)
        }
        CType::Double => {
            let (g, w) = (got.as_f64(), want.as_f64());
            (g - w).abs() <= 1e-7 * w.abs().max(1.0)
        }
    }
}

fn check_case(pos: Position, op: RedOp, t: CType, d: LaunchDims, red_n: usize) {
    let src = case_source(pos, op, t);
    let (nk, nj, ni) = extents(pos, red_n);
    let n = nk * nj * ni;
    let mut input = HostBuffer::new(t, n);
    for i in 0..n {
        input.set(i, gen_value(op, t, i));
    }
    // Which auxiliary arrays the source declares.
    let (temp_len, out_len) = match pos {
        Position::Gang | Position::GangWorker => (Some(n), None),
        Position::Worker => (Some(n), Some(nk)),
        Position::Vector => (None, Some(nk * nj)),
        Position::WorkerVector => (None, Some(nk)),
        _ => (None, None),
    };

    let mut gpu = AccRunner::with_options(&src, CompilerOptions::openuh(), d, Device::default())
        .expect("compile");
    let mut cpu = CpuExec::new(&src).unwrap();
    for (name, v) in [("NK", nk), ("NJ", nj), ("NI", ni)] {
        if pos != Position::SameLineGwv {
            gpu.bind_int(name, v as i64).unwrap();
            cpu.bind_int(name, v as i64).unwrap();
        }
    }
    if pos == Position::SameLineGwv {
        gpu.bind_int("N", nk as i64).unwrap();
        cpu.bind_int("N", nk as i64).unwrap();
    }
    gpu.bind_array("input", input.clone()).unwrap();
    cpu.bind_array("input", input).unwrap();
    if let Some(len) = temp_len {
        cpu.bind_array("temp", HostBuffer::new(t, len)).unwrap();
    }
    if let Some(len) = out_len {
        gpu.bind_array("out", HostBuffer::new(t, len)).unwrap();
        cpu.bind_array("out", HostBuffer::new(t, len)).unwrap();
    }
    gpu.run().expect("gpu run");
    cpu.run().expect("cpu run");

    if let Ok(want) = cpu.scalar("sum") {
        let got = gpu.scalar("sum").unwrap();
        assert!(
            values_close(got, want, t),
            "{} {} {:?} dims {:?}: sum {got} vs {want}",
            pos.label(),
            op,
            t,
            d
        );
    }
    if let Some(len) = out_len {
        let got = gpu.array("out").unwrap();
        let want = cpu.array("out").unwrap();
        for i in 0..len {
            assert!(
                values_close(got.get(i), want.get(i), t),
                "{} {} {:?} dims {:?}: out[{i}] {} vs {}",
                pos.label(),
                op,
                t,
                d,
                got.get(i),
                want.get(i)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, max_shrink_iters: 40, .. ProptestConfig::default() })]

    /// The flagship property: GPU == CPU for random shapes.
    #[test]
    fn gpu_matches_cpu_for_random_reductions(
        pos in positions(),
        op in ops(),
        t in dtypes(),
        d in dims(),
        red_n in 1usize..600,
    ) {
        prop_assume!(combo_legal(op, t));
        check_case(pos, op, t, d, red_n);
    }

    /// Sanitizer soundness on correct codegen: every OpenUH reduction,
    /// run under the full hazard sanitizer at a random geometry (including
    /// non-power-of-two and non-multiple-of-warp vector lengths), must
    /// produce zero reports — the barrier placement proof of §3.3, checked
    /// dynamically instead of by result comparison.
    #[test]
    fn openuh_reductions_are_hazard_free(
        pos in positions(),
        op in ops(),
        t in dtypes(),
        d in dims(),
        red_n in 1usize..400,
    ) {
        prop_assume!(combo_legal(op, t));
        let src = case_source(pos, op, t);
        let (nk, nj, ni) = extents(pos, red_n);
        let n = nk * nj * ni;
        let mut input = HostBuffer::new(t, n);
        for i in 0..n {
            input.set(i, gen_value(op, t, i));
        }
        let mut r = AccRunner::with_options(&src, CompilerOptions::openuh(), d, Device::default())
            .expect("compile");
        r.sanitize(uhacc::sim::SanitizerLevel::Full);
        if pos == Position::SameLineGwv {
            r.bind_int("N", nk as i64).unwrap();
        } else {
            r.bind_int("NK", nk as i64).unwrap();
            r.bind_int("NJ", nj as i64).unwrap();
            r.bind_int("NI", ni as i64).unwrap();
        }
        r.bind_array("input", input).unwrap();
        let out_len = match pos {
            Position::Worker | Position::WorkerVector => Some(nk),
            Position::Vector => Some(nk * nj),
            _ => None,
        };
        if let Some(len) = out_len {
            r.bind_array("out", HostBuffer::new(t, len)).unwrap();
        }
        r.run().expect("sanitized gpu run");
        let reports = r.take_hazards();
        prop_assert!(
            reports.is_empty(),
            "{} {} {:?} dims {:?}: {} hazard(s), first: {}",
            pos.label(), op, t, d, reports.len(), reports[0]
        );
    }

    /// Window-sliding and blocking schedules agree.
    #[test]
    fn schedules_agree(
        pos in positions(),
        d in dims(),
        red_n in 1usize..300,
    ) {
        let src = case_source(pos, RedOp::Add, CType::Long);
        let (nk, nj, ni) = extents(pos, red_n);
        let n = nk * nj * ni;
        let mut input = HostBuffer::new(CType::Long, n);
        for i in 0..n {
            input.set(i, gen_value(RedOp::Add, CType::Long, i));
        }
        let run = |sched| {
            let opts = CompilerOptions { schedule: sched, ..CompilerOptions::openuh() };
            let mut r = AccRunner::with_options(&src, opts, d, Device::default()).unwrap();
            if pos == Position::SameLineGwv {
                r.bind_int("N", nk as i64).unwrap();
            } else {
                r.bind_int("NK", nk as i64).unwrap();
                r.bind_int("NJ", nj as i64).unwrap();
                r.bind_int("NI", ni as i64).unwrap();
            }
            r.bind_array("input", input.clone()).unwrap();
            let out_len = match pos {
                Position::Worker | Position::WorkerVector => Some(nk),
                Position::Vector => Some(nk * nj),
                _ => None,
            };
            if let Some(len) = out_len {
                r.bind_array("out", HostBuffer::new(CType::Long, len)).unwrap();
            }
            r.run().unwrap();
            let scalar = r.scalar("sum").ok().map(|v| v.as_i64());
            let arr = out_len.map(|_| r.array("out").unwrap().to_i64_vec());
            (scalar, arr)
        };
        let a = run(uhacc::core::Schedule::WindowSliding);
        let b = run(uhacc::core::Schedule::Blocking);
        prop_assert_eq!(a, b);
    }
}
