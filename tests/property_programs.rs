//! Randomized program generation: build random (but well-formed) loop
//! nests with reductions in random positions, interleaved stores and
//! conditionals, and check the simulated GPU against the sequential CPU
//! interpreter. Programs the compiler legitimately rejects (diagnosed
//! unsupported shapes) are discarded; accepted programs must agree.

// proptest's config idiom spells out `..default()` for forward compat.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use uhacc::baselines::CpuExec;
use uhacc::prelude::*;

/// Parameters of one generated program.
#[derive(Debug, Clone)]
struct GenProgram {
    depth: usize,              // 2 or 3 loops
    scheds: Vec<&'static str>, // per loop: "gang", "worker", "vector", "seq", ...
    red_loop: usize,           // which loop carries the reduction clause
    update_loop: usize,        // which loop body contains the update
    op: &'static str,
    with_if: bool,
    with_store: bool,
    sizes: Vec<usize>,
}

impl GenProgram {
    /// When the reduction clause is on an inner loop, the target must be a
    /// region-local (a host scalar's value would be gang-private — the
    /// compiler diagnoses that); the local's result is stored into `out`.
    fn inner_target(&self) -> bool {
        self.red_loop > 0
    }

    fn source(&self) -> String {
        let names = ["k", "j", "i"];
        let bounds = ["NK", "NJ", "NI"];
        let inner = self.inner_target();
        let var = if inner { "t" } else { "s" };
        // The result array is indexed by every loop variable enclosing the
        // clause loop, so each element has exactly one writer.
        let mut src = String::from(
            "int NK; int NJ; int NI;\nlong s;\nint a[NK][NJ][NI];\nlong out[NK][NJ];\ns = 3;\n#pragma acc parallel copyin(a) copyout(out)\n{\n",
        );
        for d in 0..self.depth {
            let sched = self.scheds[d];
            // Declare the local target just before its clause loop.
            if inner && d == self.red_loop {
                src.push_str("long t = 1;\n");
            }
            let red = if d == self.red_loop {
                format!(" reduction({}:{})", self.op, var)
            } else {
                String::new()
            };
            let sched_clause = if sched.is_empty() {
                format!("#pragma acc loop seq{red}\n")
            } else {
                format!("#pragma acc loop {sched}{red}\n")
            };
            src.push_str(&sched_clause);
            src.push_str(&format!(
                "for (int {v} = 0; {v} < {b}; {v}++) {{\n",
                v = names[d],
                b = bounds[d]
            ));
            if d + 1 == self.update_loop && self.with_if {
                src.push_str(&format!("if ({} % 2 == 0) {{ }}\n", names[d]));
            }
        }
        let idx = match self.depth {
            2 => "a[k][j][0]",
            _ => "a[k][j][i]",
        };
        let update = match self.op {
            "+" => format!("{var} += {idx};"),
            "max" => format!("{var} = max({var}, {idx});"),
            "^" => format!("{var} ^= {idx};"),
            _ => unreachable!(),
        };
        if self.with_if {
            src.push_str(&format!(
                "if ({idx} > 0) {{ {update} }} else {{ {update} }}\n"
            ));
        } else {
            src.push_str(&update);
            src.push('\n');
        }
        // Close loops strictly deeper than the clause loop, store the local
        // result, then close the rest.
        for d in (0..self.depth).rev() {
            src.push_str("}\n");
            if inner && d == self.red_loop {
                let slot = if self.red_loop >= 2 {
                    "out[k][j]"
                } else {
                    "out[k][0]"
                };
                src.push_str(&format!("{slot} = t + k;\n"));
            }
        }
        if self.with_store {
            // Redundant uniform store inside no loop is illegal at region
            // scope for `out[k]`; only emit when the scalar case is used.
        }
        src.push_str("}\n");
        src
    }
}

fn gen_program() -> impl Strategy<Value = GenProgram> {
    (
        2usize..4,
        prop::sample::select(vec!["+", "max", "^"]),
        any::<bool>(),
        any::<bool>(),
        (1usize..20, 1usize..20, 1usize..200),
        0usize..3,
    )
        .prop_flat_map(|(depth, op, with_if, with_store, (s1, s2, s3), red_pos)| {
            // Valid schedule assignments for the nest depth.
            let scheds: Vec<Vec<&'static str>> = match depth {
                2 => vec![
                    vec!["gang", "vector"],
                    vec!["gang", "worker"],
                    vec!["gang", ""],
                    vec!["gang worker", "vector"],
                    vec!["worker", "vector"],
                    vec!["gang", "worker vector"],
                ],
                _ => vec![
                    vec!["gang", "worker", "vector"],
                    vec!["gang", "worker", ""],
                    vec!["gang", "", "vector"],
                ],
            };
            let red_loop = red_pos.min(depth - 1);
            (
                Just(depth),
                prop::sample::select(scheds),
                Just(op),
                Just(with_if),
                Just(with_store),
                Just((s1, s2, s3)),
                Just(red_loop),
            )
        })
        .prop_map(
            |(depth, scheds, op, with_if, with_store, (s1, s2, s3), red_loop)| GenProgram {
                depth,
                update_loop: depth - 1,
                scheds,
                red_loop,
                op,
                with_if,
                with_store,
                sizes: vec![s1, s2, s3],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, max_shrink_iters: 30, .. ProptestConfig::default() })]

    #[test]
    fn generated_programs_match_cpu(p in gen_program(), seed in any::<u32>()) {
        let src = p.source();
        let (nk, nj, ni) = (p.sizes[0], p.sizes[1], p.sizes[2]);
        let n = nk * nj * ni;
        let a: Vec<i32> = (0..n)
            .map(|x| ((x as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2001) as i32 - 1000)
            .collect();

        let dims = LaunchDims { gangs: 3, workers: 4, vector: 32 };
        let gpu = AccRunner::with_options(&src, CompilerOptions::openuh(), dims, Device::default());
        let mut gpu = match gpu {
            Ok(g) => g,
            // A diagnosed rejection is acceptable; a panic is not.
            Err(AccError::Compile(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}: {src}"))),
        };
        let mut cpu = CpuExec::new(&src).unwrap();
        for (name, v) in [("NK", nk), ("NJ", nj), ("NI", ni)] {
            gpu.bind_int(name, v as i64).unwrap();
            cpu.bind_int(name, v as i64).unwrap();
        }
        gpu.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        cpu.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        gpu.bind_array("out", HostBuffer::from_i64(&vec![0; nk * nj])).unwrap();
        cpu.bind_array("out", HostBuffer::from_i64(&vec![0; nk * nj])).unwrap();

        match gpu.run() {
            Ok(()) => {}
            Err(AccError::Compile(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}\n{src}"))),
        }
        cpu.run().unwrap();
        if p.inner_target() {
            prop_assert_eq!(
                gpu.array("out").unwrap().to_i64_vec(),
                cpu.array("out").unwrap().to_i64_vec(),
                "array mismatch for\n{}",
                src
            );
        } else {
            prop_assert_eq!(
                gpu.scalar("s").unwrap().as_i64(),
                cpu.scalar("s").unwrap().as_i64(),
                "scalar mismatch for\n{}",
                src
            );
        }
    }
}

// ---- expression codegen equivalence --------------------------------------

/// A random arithmetic expression over loop index `i`, scalars and
/// literals (division-free to avoid divide-by-zero).
fn gen_expr(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("i".to_string()),
        Just("C1".to_string()),
        Just("C2".to_string()),
        (0i32..100).prop_map(|v| v.to_string()),
        (0..400u32).prop_map(|v| format!("{}.{:02}", v / 100, v % 100)),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(vec!["+", "-", "*"])
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(vec!["<", ">", "==", "<=", "!="])
            )
                .prop_map(|(a, b, op)| format!("(({a}) {op} ({b}) ? 1.0 : 2.0)")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("fmax({a}, {b})")),
            inner.clone().prop_map(|a| format!("fabs({a})")),
            inner.clone().prop_map(|a| format!("(-({a}))")),
            inner.clone().prop_map(|a| format!("(float)({a})")),
            inner.prop_map(|a| format!("(int)({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, max_shrink_iters: 80, .. ProptestConfig::default() })]

    /// Device expression codegen agrees with the sequential interpreter on
    /// random expression trees (types, promotions, casts, intrinsics,
    /// ternaries).
    #[test]
    fn expression_codegen_matches_cpu(expr in gen_expr(4), c1 in -50i64..50, c2 in -3.0f64..3.0) {
        let src = format!(
            "int N; int C1; double C2;\ndouble out[N];\n#pragma acc parallel copyout(out)\n{{\n#pragma acc loop gang vector\nfor (int i = 0; i < N; i++) {{\nout[i] = {expr};\n}}\n}}"
        );
        let n = 16usize;
        let dims = LaunchDims { gangs: 2, workers: 1, vector: 32 };
        let mut gpu = match AccRunner::with_options(&src, CompilerOptions::openuh(), dims, Device::default()) {
            Ok(g) => g,
            Err(AccError::Compile(_)) => return Ok(()), // e.g. float-typed int-op
            Err(e) => return Err(TestCaseError::fail(e.to_string())),
        };
        let mut cpu = CpuExec::new(&src).unwrap();
        gpu.bind_int("N", n as i64).unwrap();
        gpu.bind_int("C1", c1).unwrap();
        gpu.bind_float("C2", c2).unwrap();
        gpu.bind_array("out", HostBuffer::from_f64(&vec![0.0; n])).unwrap();
        cpu.bind_int("N", n as i64).unwrap();
        cpu.bind_scalar("C1", gpsim::Value::I64(c1)).unwrap();
        cpu.bind_scalar("C2", gpsim::Value::F64(c2)).unwrap();
        cpu.bind_array("out", HostBuffer::from_f64(&vec![0.0; n])).unwrap();
        match gpu.run() {
            Ok(()) => {}
            Err(AccError::Compile(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{e}\n{src}"))),
        }
        cpu.run().unwrap();
        let g = gpu.array("out").unwrap().to_f64_vec();
        let c = cpu.array("out").unwrap().to_f64_vec();
        for i in 0..n {
            let (a, b) = (g[i], c[i]);
            let close = (a - b).abs() <= 1e-6 * b.abs().max(1.0) || (a.is_nan() && b.is_nan());
            prop_assert!(close, "i={i}: {a} vs {b} for\n{src}");
        }
    }
}
