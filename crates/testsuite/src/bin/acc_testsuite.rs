//! Command-line driver for the reduction testsuite (regenerates the
//! paper's Table 2 and Figure 11 with modelled device times).
//!
//! Usage: `acc-testsuite [--red-n N] [--quick] [--all-ops] [--fig11] [--sanitize] [--verify]
//! [--lint] [--profile[=json|trace]]`

use acc_baselines::Compiler;
use acc_testsuite::{
    cert_config, format_cert_sweep, format_fig11, format_lint_sweep, format_matrix,
    format_redflow_sweep, format_summary, format_table2, format_verify_sweep, profile_case,
    run_cert_sweep, run_lint_sweep, run_redflow_sweep, run_sanitize_matrix, run_suite,
    run_verify_sweep, Position, SuiteConfig,
};
use accparse::ast::{CType, RedOp};
use uhacc_core::flags::{host_threads_from_env, parse_count, parse_count_u32};

/// Reject a malformed option value: rendered diagnostic, exit code 2.
fn flag_err(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    if let Err(e) = host_threads_from_env() {
        flag_err(e);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SuiteConfig::default();
    let mut fig11 = false;
    let mut all_ops = false;
    let mut sanitize = false;
    let mut verify = false;
    let mut lint = false;
    let mut redflow = false;
    let mut certify = false;
    let mut profile: Option<&str> = None;
    let mut i = 0;
    let need_val = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i)
            .cloned()
            .unwrap_or_else(|| flag_err(format!("{flag} requires a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--red-n" => {
                i += 1;
                let v = need_val(&args, i, "--red-n");
                cfg.red_n = parse_count("--red-n", &v).unwrap_or_else(|e| flag_err(e)) as usize;
            }
            "--host-threads" => {
                i += 1;
                let v = need_val(&args, i, "--host-threads");
                cfg.host_threads =
                    parse_count_u32("--host-threads", &v).unwrap_or_else(|e| flag_err(e));
            }
            "--exec-tier" => {
                i += 1;
                let v = need_val(&args, i, "--exec-tier");
                cfg.exec_tier = v.parse().unwrap_or_else(|e| flag_err(e));
            }
            "--quick" => {
                let tier = cfg.exec_tier;
                cfg = SuiteConfig::quick();
                cfg.exec_tier = tier;
            }
            "--fig11" => fig11 = true,
            "--all-ops" => all_ops = true,
            "--sanitize" => sanitize = true,
            "--verify" => verify = true,
            "--lint" => lint = true,
            "--redflow" => redflow = true,
            "--certify" => certify = true,
            "--profile" => profile = Some("text"),
            "--profile=json" => profile = Some("json"),
            "--profile=trace" => profile = Some("trace"),
            "--help" | "-h" => {
                println!(
                    "acc-testsuite: regenerate Table 2 / Fig. 11 of the paper\n\
                     --red-n N    reduction loop size (default 16384; paper used up to 1M)\n\
                     --quick      small sizes for smoke testing\n\
                     --host-threads N  simulator host worker threads (0 = auto, 1 = sequential;\n\
                                       results are bit-identical at any setting)\n\
                     --exec-tier T  simulator execution tier: auto (default), interpret,\n\
                                    or compiled; results are bit-identical at any setting\n\
                     --all-ops    run all nine OpenACC reduction operators (not just + and *)\n\
                     --fig11      also print the Figure 11 per-position series\n\
                     --sanitize   run the hazard-sanitizer detection matrix instead\n\
                     --verify     statically verify every generated kernel of the §6\n\
                                  grid (no simulation) and exit non-zero on errors\n\
                     --lint       run the stripped-clause lint sweep over the §6 grid:\n\
                                  intact sources must lint clean and every stripped\n\
                                  reduction clause must be re-suggested exactly\n\
                     --redflow    run the redflow legality sweep: legal array/scalar\n\
                                  reduction idioms must be relaxed (L210 only), every\n\
                                  mutation must re-arm L200/L211 with zero false\n\
                                  relaxations, and fusion verdicts must hold\n\
                     --certify    run the translation-validation (redcert) sweep:\n\
                                  every legal §6 strategy must certify (exactly for\n\
                                  int, modulo FP reassociation for double) and every\n\
                                  injected miscompilation must be refuted or unknown\n\
                                  — a false Certified fails the sweep\n\
                     --profile[=json|trace]  profile the canonical gang-worker-vector\n\
                                  int `+` case under OpenUH and print per-line /\n\
                                  per-pc cycle attribution (text by default, stable\n\
                                  JSON, or a Chrome/Perfetto trace)"
                );
                return;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(fmt) = profile {
        eprintln!(
            "profiling the gang-worker-vector int `+` case under openuh (red_n = {}) ...",
            cfg.red_n
        );
        let pc = match profile_case(
            Compiler::OpenUH,
            Position::GangWorkerVector,
            RedOp::Add,
            CType::Int,
            &cfg,
        ) {
            Ok(pc) => pc,
            Err(e) => {
                eprintln!("profile failed: {e}");
                std::process::exit(1);
            }
        };
        match fmt {
            "json" => println!("{}", pc.json),
            "trace" => println!("{}", pc.trace),
            _ => print!("{}", pc.report),
        }
        return;
    }
    if lint {
        eprintln!("running stripped-clause lint sweep over the \u{00a7}6 grid (no simulation) ...");
        let rows = run_lint_sweep();
        print!("{}", format_lint_sweep(&rows));
        if rows.iter().any(|r| !r.ok()) {
            std::process::exit(1);
        }
        return;
    }
    if certify {
        eprintln!("running translation-validation sweep over the \u{00a7}6 grid ...");
        let mut ccfg = cert_config();
        ccfg.host_threads = cfg.host_threads;
        ccfg.exec_tier = cfg.exec_tier;
        let rows = run_cert_sweep(&ccfg);
        print!("{}", format_cert_sweep(&rows));
        if rows.iter().any(|r| !r.ok()) {
            std::process::exit(1);
        }
        return;
    }
    if redflow {
        eprintln!("running redflow legality sweep (no simulation) ...");
        let rows = run_redflow_sweep();
        print!("{}", format_redflow_sweep(&rows));
        if rows.iter().any(|r| !r.ok) {
            std::process::exit(1);
        }
        return;
    }
    if verify {
        eprintln!("statically verifying the §6 kernel grid (no simulation) ...");
        let rows = run_verify_sweep(&cfg);
        print!("{}", format_verify_sweep(&rows));
        if rows.iter().any(|r| !r.ok()) {
            std::process::exit(1);
        }
        return;
    }
    if sanitize {
        eprintln!(
            "running sanitizer detection matrix (red_n = {}) ...",
            cfg.red_n
        );
        let rows = run_sanitize_matrix(&cfg);
        print!("{}", format_matrix(&rows));
        if rows.iter().any(|r| !r.ok()) {
            std::process::exit(1);
        }
        return;
    }

    let ops: Vec<RedOp> = if all_ops {
        vec![
            RedOp::Add,
            RedOp::Mul,
            RedOp::Max,
            RedOp::Min,
            RedOp::BitAnd,
            RedOp::BitOr,
            RedOp::BitXor,
            RedOp::LogAnd,
            RedOp::LogOr,
        ]
    } else {
        vec![RedOp::Add, RedOp::Mul]
    };
    let dtypes = [CType::Int, CType::Float, CType::Double];
    eprintln!(
        "running {} positions x {} ops x {} types x 3 compilers (red_n = {}) ...",
        7,
        ops.len(),
        dtypes.len(),
        cfg.red_n
    );
    let results = run_suite(&Compiler::all(), &ops, &dtypes, &cfg);
    println!("{}", format_table2(&results, &ops, &dtypes));
    println!("{}", format_summary(&results));
    if fig11 {
        println!("{}", format_fig11(&results, &ops, &dtypes));
    }
}
