//! Redflow legality sweep: relaxation (L210) must be *proof-gated*.
//!
//! The sweep is the mutated-corpus pin for the reduction-aware dependence
//! analysis, in the style of the stripped-clause L100 sweep
//! ([`crate::lintsweep`]):
//!
//! 1. **Legal** — for every reduction operator, an array-accumulator
//!    loop whose carried conflict is provably commutative must be
//!    relaxed to exactly one `L210` note — no `L200`/`L201` error and
//!    no `L211`.
//! 2. **Mutated** — breaking the idiom (swapping the operator mid-loop,
//!    reading the accumulator between updates, plainly overwriting it,
//!    turning it into a genuine recurrence or a scan) must re-arm the
//!    error path (`L211` or `L200`) and must never leave a stale `L210`
//!    relaxation behind. A single false relaxation here is a
//!    miscompile-grade bug, so the sweep fails the build.
//! 3. **Fusion** — cascaded-region verdicts are pinned the same way:
//!    a legal producer→consumer reduction chain must be reported
//!    fusable, and each illegal mutation (interleaved host mutation,
//!    launch-shape mismatch, unconsumed intermediate) must be rejected
//!    with its specific reason. Plans must render byte-identically when
//!    analyzed twice (the committed golden relies on this).

use accparse::ast::RedOp;
use accparse::lint::lint_source;
use accparse::redflow::{fusion_plan, fusion_plan_json};

/// One case of the sweep.
#[derive(Debug, Clone)]
pub struct RedflowRow {
    pub label: String,
    /// What the case expects, for the report (`L210`, `L211`, ...).
    pub expect: String,
    /// What the analysis produced.
    pub got: String,
    pub ok: bool,
}

/// Lint `src` and return the sorted, deduplicated code list.
fn codes_of(src: &str) -> Result<Vec<String>, String> {
    let (_, findings) = lint_source(src).map_err(|d| d.render(src))?;
    let mut codes: Vec<String> = findings.iter().map(|f| f.code().to_string()).collect();
    codes.sort();
    codes.dedup();
    Ok(codes)
}

fn row(label: &str, expect: &str, src: &str, want: &[&str], forbid: &[&str]) -> RedflowRow {
    match codes_of(src) {
        Ok(codes) => {
            let ok = want.iter().all(|w| codes.iter().any(|c| c == w))
                && !forbid.iter().any(|f| codes.iter().any(|c| c == f));
            RedflowRow {
                label: label.to_string(),
                expect: expect.to_string(),
                got: if codes.is_empty() {
                    "clean".to_string()
                } else {
                    codes.join(",")
                },
                ok,
            }
        }
        Err(e) => RedflowRow {
            label: label.to_string(),
            expect: expect.to_string(),
            got: format!("compile-error: {}", e.lines().next().unwrap_or("")),
            ok: false,
        },
    }
}

/// The legal array-accumulator loop for `op`: every iteration folds
/// `b[i]` into `acc[0]`, a same-element carried conflict that commutes.
fn legal_source(op: RedOp) -> String {
    let (ty, update) = match op {
        RedOp::Add => ("double", "acc[0] += b[i];"),
        RedOp::Mul => ("double", "acc[0] *= b[i];"),
        RedOp::Max => ("double", "acc[0] = fmax(acc[0], b[i]);"),
        RedOp::Min => ("double", "acc[0] = fmin(acc[0], b[i]);"),
        RedOp::BitAnd => ("int", "acc[0] &= b[i];"),
        RedOp::BitOr => ("int", "acc[0] |= b[i];"),
        RedOp::BitXor => ("int", "acc[0] ^= b[i];"),
        RedOp::LogAnd => ("int", "acc[0] = acc[0] && b[i];"),
        RedOp::LogOr => ("int", "acc[0] = acc[0] || b[i];"),
    };
    format!(
        "int N;\n{ty} acc[N]; {ty} b[N];\n\
         #pragma acc parallel copy(acc) copyin(b)\n{{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) {{ {update} }}\n}}"
    )
}

const ALL_OPS: [RedOp; 9] = [
    RedOp::Add,
    RedOp::Mul,
    RedOp::Max,
    RedOp::Min,
    RedOp::BitAnd,
    RedOp::BitOr,
    RedOp::BitXor,
    RedOp::LogAnd,
    RedOp::LogOr,
];

/// A fusable two-region mean→variance chain (shared by several cases).
const CHAIN: &str = "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
     #pragma acc parallel copyin(a)\n{\n\
     #pragma acc loop gang reduction(+:s)\n\
     for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
     #pragma acc parallel copyin(a)\n{\n\
     #pragma acc loop gang reduction(+:v)\n\
     for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}";

/// Judge one fusion-plan expectation: compile, analyze, and check the
/// first pair's verdict (and reject reason, when one is expected).
fn fusion_row(label: &str, src: &str, want_fusable: bool, want_reject: Option<&str>) -> RedflowRow {
    let expect = match want_reject {
        Some(r) => format!("reject: {r}"),
        None if want_fusable => "fusable".to_string(),
        None => "not fusable".to_string(),
    };
    let prog = match accparse::compile(src) {
        Ok(p) => p,
        Err(d) => {
            return RedflowRow {
                label: label.to_string(),
                expect,
                got: format!(
                    "compile-error: {}",
                    d.render(src).lines().next().unwrap_or("")
                ),
                ok: false,
            }
        }
    };
    let plan = fusion_plan(&prog);
    let Some(pair) = plan.pairs.first() else {
        return RedflowRow {
            label: label.to_string(),
            expect,
            got: "no region pair".to_string(),
            ok: false,
        };
    };
    let got = match &pair.reject {
        Some(r) => format!("reject: {r}"),
        None => "fusable".to_string(),
    };
    let ok = pair.fusable == want_fusable
        && match want_reject {
            Some(r) => pair.reject.as_deref().is_some_and(|g| g.contains(r)),
            None => true,
        };
    RedflowRow {
        label: label.to_string(),
        expect,
        got,
        ok,
    }
}

/// Run the full legality sweep.
pub fn run_redflow_sweep() -> Vec<RedflowRow> {
    let mut rows = Vec::new();

    // 1. Legal relaxations: one L210 per operator, nothing else.
    for op in ALL_OPS {
        rows.push(row(
            &format!("legal {op} array accumulator"),
            "L210 only",
            &legal_source(op),
            &["L210"],
            &["L200", "L201", "L211"],
        ));
    }
    // Histogram: indirect subscript is unanalyzable, yet provably a
    // reduction — the exact case the paper's §6 grid cannot express.
    rows.push(row(
        "legal histogram hist[bin[i]] += 1",
        "L210 only",
        "int N; int B;\nint hist[B]; int bin[N];\n\
         #pragma acc parallel copy(hist) copyin(bin)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { hist[bin[i]] += 1; }\n}",
        &["L210"],
        &["L200", "L201", "L211"],
    ));
    // Two same-operator update sites with overlapping footprints.
    rows.push(row(
        "legal two-site same-op updates",
        "L210 only",
        "int N;\ndouble a[N]; double b[N]; double c[N];\n\
         #pragma acc parallel copy(a) copyin(b) copyin(c)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { a[i] += b[i]; a[i + 1] += c[i]; }\n}",
        &["L210"],
        &["L200", "L201", "L211"],
    ));

    // 2. Mutations: every broken idiom re-arms an error, and no L210
    //    false relaxation survives.
    rows.push(row(
        "mutated operator swapped mid-loop",
        "L211, no L210",
        "int N;\ndouble a[N]; double b[N]; double c[N];\n\
         #pragma acc parallel copy(a) copyin(b) copyin(c)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { a[0] += b[i]; a[0] *= c[i]; }\n}",
        &["L211"],
        &["L210"],
    ));
    rows.push(row(
        "mutated accumulator read between updates",
        "L211, no L210",
        "int N; int B;\nint hist[B]; int bin[N]; int last[N];\n\
         #pragma acc parallel copy(hist) copyin(bin) copyout(last)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { hist[bin[i]] += 1; last[i] = hist[bin[i]]; }\n}",
        &["L211"],
        &["L210"],
    ));
    rows.push(row(
        "mutated plain overwrite of accumulator",
        "L211, no L210",
        "int N;\ndouble a[N]; double b[N];\n\
         #pragma acc parallel copy(a) copyin(b)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { a[0] += b[i]; a[0] = 0.0; }\n}",
        &["L211"],
        &["L210"],
    ));
    rows.push(row(
        "mutated genuine recurrence a[i] = a[i-1]",
        "L200, no L210",
        "int N;\ndouble a[N]; double b[N];\n\
         #pragma acc parallel copy(a) copyin(b)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 1; i < N; i++) { a[i] = a[i - 1] + b[i]; }\n}",
        &["L200"],
        &["L210"],
    ));
    rows.push(row(
        "mutated scalar scan escapes mid-loop",
        "L211, no L210",
        "int N; double s;\ndouble a[N]; double run[N];\ns = 0;\n\
         #pragma acc parallel copyin(a) copyout(run)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { s += a[i]; run[i] = s; }\n}",
        &["L211"],
        &["L210"],
    ));
    rows.push(row(
        "mutated scalar mixing + and *",
        "L211, no L210",
        "int N; double s;\ndouble a[N]; double b[N];\ns = 1;\n\
         #pragma acc parallel copyin(a) copyin(b)\n{\n\
         #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
         s += a[i];\n\
         #pragma acc loop vector\nfor (int j = 0; j < N; j++) { s *= b[j]; }\n}\n}",
        &["L211"],
        &["L210"],
    ));
    rows.push(row(
        "mutated indirect self-subscript hist[hist[i]]",
        "L211, no L210",
        "int N;\nint hist[N];\n\
         #pragma acc parallel copy(hist)\n{\n\
         #pragma acc loop gang\n\
         for (int i = 0; i < N; i++) { hist[hist[i]] += 1; }\n}",
        &["L211"],
        &["L210"],
    ));

    // 3. Fusion-legality verdicts.
    rows.push(fusion_row(
        "fusion legal mean->variance chain",
        CHAIN,
        true,
        None,
    ));
    rows.push(fusion_row(
        "fusion rejects interleaved host mutation",
        "int N; double s; double m; double v;\ndouble a[N];\ns = 0; v = 0;\n\
         #pragma acc parallel copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:s)\n\
         for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
         m = s / N;\n\
         #pragma acc parallel copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:v)\n\
         for (int i = 0; i < N; i++) { v += (a[i] - m) * (a[i] - m); }\n}",
        false,
        Some("interleaved host mutation"),
    ));
    rows.push(fusion_row(
        "fusion rejects launch-shape mismatch",
        "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
         #pragma acc parallel num_gangs(64) copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:s)\n\
         for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
         #pragma acc parallel num_gangs(128) copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:v)\n\
         for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}",
        false,
        Some("launch shapes differ"),
    ));
    rows.push(fusion_row(
        "fusion rejects unconsumed intermediate",
        "int N; double s; double v;\ndouble a[N]; double partial[N];\ns = 0; v = 0;\n\
         #pragma acc parallel copyin(a) copyout(partial)\n{\n\
         #pragma acc loop gang reduction(+:s)\n\
         for (int i = 0; i < N; i++) { s += a[i]; partial[i] = a[i]; }\n}\n\
         #pragma acc parallel copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:v)\n\
         for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}",
        false,
        Some("not consumed"),
    ));

    // 4. Determinism: rendering the same plan twice is byte-identical.
    {
        let prog = accparse::compile(CHAIN).expect("chain compiles");
        let a = fusion_plan_json(&fusion_plan(&prog));
        let b = fusion_plan_json(&fusion_plan(&prog));
        rows.push(RedflowRow {
            label: "fusion plan JSON is byte-stable".to_string(),
            expect: "identical renders".to_string(),
            got: if a == b {
                "identical".to_string()
            } else {
                "DIFFER".to_string()
            },
            ok: a == b,
        });
    }

    rows
}

/// Format the sweep as a fixed-width table with a summary line.
pub fn format_redflow_sweep(rows: &[RedflowRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:<26} {:<26} {:>8}\n",
        "case", "expect", "got", "verdict"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<44} {:<26} {:<26} {:>8}\n",
            r.label,
            r.expect,
            r.got,
            if r.ok { "ok" } else { "FAIL" }
        ));
    }
    let failed = rows.iter().filter(|r| !r.ok).count();
    out.push_str(&format!(
        "\n{} case(s), {} failed: every relaxation is proof-gated and every \
         mutation re-arms the error path\n",
        rows.len(),
        failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_redflow_sweep_holds() {
        let rows = run_redflow_sweep();
        // 9 operators + 2 extra legal + 7 mutations + 4 fusion + 1
        // determinism case.
        assert_eq!(rows.len(), 9 + 2 + 7 + 4 + 1);
        let bad: Vec<RedflowRow> = rows.iter().filter(|r| !r.ok).cloned().collect();
        assert!(bad.is_empty(), "{}", format_redflow_sweep(&bad));
    }

    #[test]
    fn zero_false_relaxations_on_mutations() {
        // The sweep's hard guarantee, asserted directly: no mutated case
        // reports L210.
        for r in run_redflow_sweep() {
            if r.label.starts_with("mutated") {
                assert!(!r.got.contains("L210"), "false relaxation: {r:?}");
            }
        }
    }
}
