//! # acc-testsuite — the paper's reduction testsuite
//!
//! "Since there are no existing benchmarks that could cover all the
//! reduction cases, we have designed and implemented a testsuite to
//! validate all possible cases of reduction including different reduction
//! data types and reduction operations" (§4).
//!
//! This crate generates the directive sources for every reduction
//! position of Table 2 (gang / worker / vector / gang-worker /
//! worker-vector / gang-worker-vector / same-line-gwv), runs them under
//! each compiler personality on the simulated device, verifies each
//! result against the sequential CPU reference, and formats the outcomes
//! as the paper's Table 2 and Figure 11.

pub mod cases;
pub mod certsweep;
pub mod lintsweep;
pub mod redflowsweep;
pub mod report;
pub mod run;
pub mod sanitize;

pub use cases::{case_source, Position};
pub use certsweep::{cert_config, format_cert_sweep, run_cert_sweep, CertExpect, CertSweepRow};
pub use lintsweep::{format_lint_sweep, run_lint_sweep, strip_reduction_clauses, LintSweepRow};
pub use redflowsweep::{format_redflow_sweep, run_redflow_sweep, RedflowRow};
pub use report::{format_fig11, format_summary, format_table2};
pub use run::{
    bind_dims, case_data, profile_case, run_case, run_suite, time_case, CaseData, CaseResult,
    CaseStatus, ProfiledCase, SuiteConfig, TimedCase,
};
pub use sanitize::{
    format_matrix, format_verify_sweep, run_sanitize_matrix, run_verify_sweep, SanitizeRow,
    VerifySweepRow,
};
