//! The sanitizer detection matrix: every OpenUH reduction strategy of the
//! paper's §6 grid run hazard-free under `gpsim`'s sanitizer, next to
//! known-miscompiled variants that the sanitizer must flag with the right
//! hazard class — the simulator's answer to running the testsuite under
//! `compute-sanitizer`.
//!
//! A correctness suite ([`crate::run`]) can only say a result is *wrong*;
//! the sanitizer says *why*: a missing barrier is a racecheck hazard even
//! on runs where the deterministic scheduler happens to produce the right
//! answer. The matrix therefore pairs each injected codegen defect with
//! the hazard class that reveals it, and asserts the real strategies stay
//! silent.

use crate::cases::{case_source, Position};
use crate::run::{bind_dims, case_data, SuiteConfig};
use accparse::ast::{CType, RedOp};
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{
    CmpOp, Device, HazardClass, HazardReport, KernelBuilder, LaunchConfig, MemRef, SanitizerConfig,
    SanitizerLevel, SpecialReg, Ty, Value,
};
use uhacc_core::{CompilerOptions, LaunchDims, VectorLayout};

/// One row of the detection matrix: a (strategy, defect) combination with
/// per-class hazard counts and the classes the row is expected to raise
/// (empty = must be clean).
#[derive(Debug, Clone)]
pub struct SanitizeRow {
    pub label: String,
    /// Hazard classes this row is *expected* to raise; empty means the
    /// row must be hazard-free.
    pub expect: Vec<HazardClass>,
    pub racecheck: u64,
    pub synccheck: u64,
    pub initcheck: u64,
    /// First report (or run error) for context.
    pub sample: Option<String>,
}

impl SanitizeRow {
    /// Hazard count for one class.
    pub fn count(&self, c: HazardClass) -> u64 {
        match c {
            HazardClass::RaceCheck => self.racecheck,
            HazardClass::SyncCheck => self.synccheck,
            HazardClass::InitCheck => self.initcheck,
        }
    }

    /// Did the sanitizer report anything at all?
    pub fn any(&self) -> bool {
        self.racecheck + self.synccheck + self.initcheck > 0
    }

    /// Row verdict: `clean` / `detected` when the outcome matches the
    /// expectation, `FALSE POSITIVE` / `MISSED` when it does not.
    pub fn verdict(&self) -> &'static str {
        if self.expect.is_empty() {
            if self.any() {
                "FALSE POSITIVE"
            } else {
                "clean"
            }
        } else if self.expect.iter().all(|&c| self.count(c) > 0) {
            "detected"
        } else {
            "MISSED"
        }
    }

    /// True when the row behaved as expected.
    pub fn ok(&self) -> bool {
        matches!(self.verdict(), "clean" | "detected")
    }
}

fn tally(label: String, expect: Vec<HazardClass>, outcome: CaseOutcome) -> SanitizeRow {
    let (reports, err) = match outcome {
        Ok(r) => (r, None),
        Err((r, e)) => (r, Some(e)),
    };
    let count = |c| reports.iter().filter(|r| r.class == c).count() as u64;
    SanitizeRow {
        label,
        expect,
        racecheck: count(HazardClass::RaceCheck),
        synccheck: count(HazardClass::SyncCheck),
        initcheck: count(HazardClass::InitCheck),
        sample: reports.first().map(|r| r.to_string()).or(err),
    }
}

/// Reports from a run, with the run error (if any) attached alongside the
/// reports harvested before the abort.
type CaseOutcome = Result<Vec<HazardReport>, (Vec<HazardReport>, String)>;

/// Run one testsuite case under the given compiler options with the
/// sanitizer at `Full`, returning everything it reported.
fn sanitized_case(
    opts: CompilerOptions,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
) -> CaseOutcome {
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = AccRunner::with_options(&src, opts, cfg.dims, Device::default())
        .map_err(|e| (Vec::new(), e.to_string()))?;
    r.set_host_threads(cfg.host_threads);
    r.sanitize(SanitizerLevel::Full);
    let bound = (|| -> Result<(), AccError> {
        bind_dims(pos, cfg, |n, v| r.bind_int(n, v))?;
        r.bind_array("input", data.input.clone())?;
        if let Some(n) = data.out_len {
            r.bind_array("out", HostBuffer::new(t, n))?;
        }
        r.run()
    })();
    let reports = r.take_hazards();
    match bound {
        Ok(()) => Ok(reports),
        Err(e) => Err((reports, e.to_string())),
    }
}

/// A handcrafted kernel whose two warps reach *different* barrier sites:
/// the canonical synccheck hazard (it is not expressible through the
/// directive front end, which only emits structured barriers).
fn divergent_barrier_reports() -> CaseOutcome {
    let mut b = KernelBuilder::new("divergent_bar");
    let tid = b.special(SpecialReg::TidX);
    let c = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
    let els = b.new_label();
    let end = b.new_label();
    b.bra_unless(c, els);
    b.bar();
    b.bra(end);
    b.place(els);
    b.bar();
    b.place(end);
    let k = b.finish();
    let mut dev = Device::test_small();
    dev.set_sanitizer(SanitizerConfig::full());
    let run = dev.launch(&k, LaunchConfig::d1(1, 64), &[]);
    let reports = dev.take_hazards();
    match run {
        Ok(_) => Ok(reports),
        Err(e) => Err((reports, e.to_string())),
    }
}

/// A handcrafted kernel that reads shared memory nothing ever wrote: the
/// canonical initcheck hazard.
fn uninit_shared_reports() -> CaseOutcome {
    let mut b = KernelBuilder::new("uninit_read");
    let slab = b.alloc_shared(256, 8);
    let out = b.param(0);
    let tid = b.special(SpecialReg::TidX);
    let t64 = b.cvt(Ty::I64, tid);
    let v = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), t64, 4));
    b.st_global(Ty::I32, MemRef::indexed(out, t64, 4), v);
    let k = b.finish();
    let mut dev = Device::test_small();
    dev.set_sanitizer(SanitizerConfig::full());
    let buf = dev.alloc_elems(Ty::I32, 32).expect("alloc");
    let run = dev.launch(&k, LaunchConfig::d1(1, 32), &[Value::U64(buf.addr)]);
    let reports = dev.take_hazards();
    match run {
        Ok(_) => Ok(reports),
        Err(e) => Err((reports, e.to_string())),
    }
}

fn bugged(f: impl FnOnce(&mut CompilerOptions)) -> CompilerOptions {
    let mut o = CompilerOptions::openuh();
    f(&mut o);
    o
}

/// Run the full detection matrix.
///
/// The first block of rows is the paper's §6 strategy grid (every
/// reduction position under the OpenUH option set) — all must come back
/// hazard-free. The second block injects one codegen defect per row and
/// expects the named hazard class.
pub fn run_sanitize_matrix(cfg: &SuiteConfig) -> Vec<SanitizeRow> {
    use HazardClass::*;
    let mut rows = Vec::new();

    for pos in Position::all() {
        let outcome = sanitized_case(CompilerOptions::openuh(), pos, RedOp::Add, CType::Int, cfg);
        rows.push(tally(
            format!("openuh {}", pos.label()),
            Vec::new(),
            outcome,
        ));
    }

    // Defect rows. Each is a real miscompilation (wrong results under some
    // geometry), pinned to a geometry where the defect is live.
    rows.push(tally(
        "bug: missing stage barrier (worker)".into(),
        vec![RaceCheck, InitCheck],
        sanitized_case(
            bugged(|o| o.bugs.skip_stage_barrier = true),
            Position::Worker,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: missing post-broadcast barrier (vector)".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| o.bugs.skip_bcast_barrier = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: warp-sync tail with vector % 32 != 0".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| o.bugs.warp_tail_everywhere = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            &SuiteConfig {
                red_n: cfg.red_n,
                dims: LaunchDims {
                    gangs: 4,
                    workers: 2,
                    vector: 80,
                },
                ..*cfg
            },
        ),
    ));
    rows.push(tally(
        "bug: transposed slab reuse (no post-read barrier)".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| {
                o.vector_layout = VectorLayout::Transposed;
                o.bugs.skip_postread_barrier = true;
            }),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: barrier under divergent control flow".into(),
        vec![SyncCheck],
        divergent_barrier_reports(),
    ));
    rows.push(tally(
        "bug: read of uninitialized shared memory".into(),
        vec![InitCheck],
        uninit_shared_reports(),
    ));
    rows
}

/// Format the matrix as an aligned text table.
pub fn format_matrix(rows: &[SanitizeRow]) -> String {
    use std::fmt::Write;
    let wide = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<wide$}  {:>9}  {:>9}  {:>9}  verdict",
        "case", "racecheck", "synccheck", "initcheck"
    );
    let _ = writeln!(out, "{}", "-".repeat(wide + 2 + 3 * 11 + 9));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<wide$}  {:>9}  {:>9}  {:>9}  {}",
            r.label,
            r.racecheck,
            r.synccheck,
            r.initcheck,
            r.verdict()
        );
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(out, "{} case(s), {} unexpected outcome(s)", rows.len(), bad);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handcrafted_sync_and_init_hazards_fire() {
        let sync = tally(
            "s".into(),
            vec![HazardClass::SyncCheck],
            divergent_barrier_reports(),
        );
        assert_eq!(sync.verdict(), "detected", "{:?}", sync.sample);
        let init = tally(
            "i".into(),
            vec![HazardClass::InitCheck],
            uninit_shared_reports(),
        );
        assert_eq!(init.verdict(), "detected", "{:?}", init.sample);
        assert_eq!(init.synccheck, 0);
    }

    #[test]
    fn openuh_vector_case_is_clean_under_full_sanitizer() {
        let cfg = SuiteConfig::quick();
        let outcome = sanitized_case(
            CompilerOptions::openuh(),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            &cfg,
        );
        let row = tally("v".into(), Vec::new(), outcome);
        assert_eq!(row.verdict(), "clean", "{:?}", row.sample);
    }
}
