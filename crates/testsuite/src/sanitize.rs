//! The sanitizer detection matrix: every OpenUH reduction strategy of the
//! paper's §6 grid run hazard-free under `gpsim`'s sanitizer, next to
//! known-miscompiled variants that the sanitizer must flag with the right
//! hazard class — the simulator's answer to running the testsuite under
//! `compute-sanitizer`.
//!
//! A correctness suite ([`crate::run`]) can only say a result is *wrong*;
//! the sanitizer says *why*: a missing barrier is a racecheck hazard even
//! on runs where the deterministic scheduler happens to produce the right
//! answer. The matrix therefore pairs each injected codegen defect with
//! the hazard class that reveals it, and asserts the real strategies stay
//! silent.

use crate::cases::{case_source, Position};
use crate::run::{bind_dims, case_data, SuiteConfig};
use acc_baselines::Compiler;
use accparse::ast::{CType, RedOp};
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{
    verify_kernel, CmpOp, Device, HazardClass, HazardReport, KernelBuilder, LaunchConfig, MemRef,
    SanitizerConfig, SanitizerLevel, SpecialReg, Ty, Value, VerifyClass, VerifyConfig,
    VerifyReport,
};
use uhacc_core::{compile_region, CompilerOptions, LaunchDims, VectorLayout};

/// One row of the detection matrix: a (strategy, defect) combination with
/// per-class hazard counts from the *dynamic* sanitizer, the error counts
/// from the *static* verifier run as a pre-launch pass over the same
/// kernels, and the classes the row is expected to raise (empty = must be
/// clean under both).
#[derive(Debug, Clone)]
pub struct SanitizeRow {
    pub label: String,
    /// Hazard classes this row is *expected* to raise; empty means the
    /// row must be hazard-free.
    pub expect: Vec<HazardClass>,
    pub racecheck: u64,
    pub synccheck: u64,
    pub initcheck: u64,
    /// Static racecheck errors from [`gpsim::verify`].
    pub static_race: u64,
    /// Static synccheck errors.
    pub static_sync: u64,
    /// Static initcheck errors.
    pub static_init: u64,
    /// Static out-of-bounds shared accesses (no dynamic counterpart in
    /// the matrix; must stay zero everywhere).
    pub static_bounds: u64,
    /// Shared accesses the static analysis could not prove (warn-only).
    pub static_unproven: u64,
    /// First report (or run error) for context.
    pub sample: Option<String>,
}

impl SanitizeRow {
    /// Dynamic hazard count for one class.
    pub fn count(&self, c: HazardClass) -> u64 {
        match c {
            HazardClass::RaceCheck => self.racecheck,
            HazardClass::SyncCheck => self.synccheck,
            HazardClass::InitCheck => self.initcheck,
        }
    }

    /// Did the dynamic sanitizer report anything at all?
    pub fn any(&self) -> bool {
        self.racecheck + self.synccheck + self.initcheck > 0
    }

    /// Did the static verifier report any error-severity finding?
    pub fn static_any(&self) -> bool {
        self.static_race + self.static_sync + self.static_init + self.static_bounds > 0
    }

    /// Dynamic verdict: `clean` / `detected` when the outcome matches the
    /// expectation, `FALSE POSITIVE` / `MISSED` when it does not.
    pub fn verdict(&self) -> &'static str {
        if self.expect.is_empty() {
            if self.any() {
                "FALSE POSITIVE"
            } else {
                "clean"
            }
        } else if self.expect.iter().all(|&c| self.count(c) > 0) {
            "detected"
        } else {
            "MISSED"
        }
    }

    /// Static verdict, cross-validated against the same expectation: a
    /// clean row must produce zero static errors (no false positives); a
    /// defect row must be flagged. Class-exact agreement is not required
    /// — e.g. a missing stage barrier shows up dynamically as race+init
    /// but statically as a race alone — the static column must *subsume*
    /// the dynamic one at row granularity.
    pub fn static_verdict(&self) -> &'static str {
        if self.expect.is_empty() {
            if self.static_any() {
                "FALSE POSITIVE"
            } else {
                "clean"
            }
        } else if self.static_any() {
            "detected"
        } else {
            "MISSED"
        }
    }

    /// True when the row behaved as expected under both the dynamic
    /// sanitizer and the static verifier.
    pub fn ok(&self) -> bool {
        matches!(self.verdict(), "clean" | "detected")
            && matches!(self.static_verdict(), "clean" | "detected")
    }
}

/// Everything one matrix case produced: dynamic hazard reports, static
/// verification reports (one per launched kernel), and the run error (if
/// any) — reports are harvested before an abort propagates.
struct CaseOutcome {
    reports: Vec<HazardReport>,
    verify: Vec<VerifyReport>,
    err: Option<String>,
}

fn tally(label: String, expect: Vec<HazardClass>, outcome: CaseOutcome) -> SanitizeRow {
    let count = |c| {
        outcome
            .reports
            .iter()
            .filter(|r: &&HazardReport| r.class == c)
            .count() as u64
    };
    let vcount = |c: VerifyClass| {
        outcome
            .verify
            .iter()
            .flat_map(|r| &r.findings)
            .filter(|f| f.class == c && !f.warning)
            .count() as u64
    };
    let static_sample = outcome
        .verify
        .iter()
        .flat_map(|r| r.findings.iter().filter(|f| !f.warning))
        .next()
        .map(|f| f.to_string());
    SanitizeRow {
        label,
        expect,
        racecheck: count(HazardClass::RaceCheck),
        synccheck: count(HazardClass::SyncCheck),
        initcheck: count(HazardClass::InitCheck),
        static_race: vcount(VerifyClass::RaceCheck),
        static_sync: vcount(VerifyClass::SyncCheck),
        static_init: vcount(VerifyClass::InitCheck),
        static_bounds: vcount(VerifyClass::BoundsCheck),
        static_unproven: outcome.verify.iter().map(|r| r.unproven as u64).sum(),
        sample: outcome
            .reports
            .first()
            .map(|r| r.to_string())
            .or(static_sample)
            .or(outcome.err),
    }
}

/// Run one testsuite case under the given compiler options with the
/// sanitizer at `Full` *and* the static verifier enabled, returning
/// everything both reported.
fn sanitized_case(
    opts: CompilerOptions,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
) -> CaseOutcome {
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = match AccRunner::with_options(&src, opts, cfg.dims, Device::default()) {
        Ok(r) => r,
        Err(e) => {
            return CaseOutcome {
                reports: Vec::new(),
                verify: Vec::new(),
                err: Some(e.to_string()),
            }
        }
    };
    r.set_host_threads(cfg.host_threads);
    r.sanitize(SanitizerLevel::Full);
    r.verify(true);
    let bound = (|| -> Result<(), AccError> {
        bind_dims(pos, cfg, |n, v| r.bind_int(n, v))?;
        r.bind_array("input", data.input.clone())?;
        if let Some(n) = data.out_len {
            r.bind_array("out", HostBuffer::new(t, n))?;
        }
        r.run()
    })();
    CaseOutcome {
        reports: r.take_hazards(),
        verify: r.take_verify_reports(),
        err: bound.err().map(|e| e.to_string()),
    }
}

/// A handcrafted kernel whose two warps reach *different* barrier sites:
/// the canonical synccheck hazard (it is not expressible through the
/// directive front end, which only emits structured barriers).
fn divergent_barrier_reports() -> CaseOutcome {
    let mut b = KernelBuilder::new("divergent_bar");
    let tid = b.special(SpecialReg::TidX);
    let c = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
    let els = b.new_label();
    let end = b.new_label();
    b.bra_unless(c, els);
    b.bar();
    b.bra(end);
    b.place(els);
    b.bar();
    b.place(end);
    let k = b.finish();
    let mut dev = Device::test_small();
    dev.set_sanitizer(SanitizerConfig::full());
    dev.set_verifier(Some(VerifyConfig::default()));
    let run = dev.launch(&k, LaunchConfig::d1(1, 64), &[]);
    CaseOutcome {
        reports: dev.take_hazards(),
        verify: dev.take_verify_reports(),
        err: run.err().map(|e| e.to_string()),
    }
}

/// A handcrafted kernel that reads shared memory nothing ever wrote: the
/// canonical initcheck hazard.
fn uninit_shared_reports() -> CaseOutcome {
    let mut b = KernelBuilder::new("uninit_read");
    let slab = b.alloc_shared(256, 8);
    let out = b.param(0);
    let tid = b.special(SpecialReg::TidX);
    let t64 = b.cvt(Ty::I64, tid);
    let v = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), t64, 4));
    b.st_global(Ty::I32, MemRef::indexed(out, t64, 4), v);
    let k = b.finish();
    let mut dev = Device::test_small();
    dev.set_sanitizer(SanitizerConfig::full());
    dev.set_verifier(Some(VerifyConfig::default()));
    let buf = dev.alloc_elems(Ty::I32, 32).expect("alloc");
    let run = dev.launch(&k, LaunchConfig::d1(1, 32), &[Value::U64(buf.addr)]);
    CaseOutcome {
        reports: dev.take_hazards(),
        verify: dev.take_verify_reports(),
        err: run.err().map(|e| e.to_string()),
    }
}

fn bugged(f: impl FnOnce(&mut CompilerOptions)) -> CompilerOptions {
    let mut o = CompilerOptions::openuh();
    f(&mut o);
    o
}

/// Run the full detection matrix.
///
/// The first block of rows is the paper's §6 strategy grid (every
/// reduction position under the OpenUH option set) — all must come back
/// hazard-free. The second block injects one codegen defect per row and
/// expects the named hazard class.
pub fn run_sanitize_matrix(cfg: &SuiteConfig) -> Vec<SanitizeRow> {
    use HazardClass::*;
    let mut rows = Vec::new();

    for pos in Position::all() {
        let outcome = sanitized_case(CompilerOptions::openuh(), pos, RedOp::Add, CType::Int, cfg);
        rows.push(tally(
            format!("openuh {}", pos.label()),
            Vec::new(),
            outcome,
        ));
    }

    // Defect rows. Each is a real miscompilation (wrong results under some
    // geometry), pinned to a geometry where the defect is live.
    rows.push(tally(
        "bug: missing stage barrier (worker)".into(),
        vec![RaceCheck, InitCheck],
        sanitized_case(
            bugged(|o| o.bugs.skip_stage_barrier = true),
            Position::Worker,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: missing post-broadcast barrier (vector)".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| o.bugs.skip_bcast_barrier = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: warp-sync tail with vector % 32 != 0".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| o.bugs.warp_tail_everywhere = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            &SuiteConfig {
                red_n: cfg.red_n,
                dims: LaunchDims {
                    gangs: 4,
                    workers: 2,
                    vector: 80,
                },
                ..*cfg
            },
        ),
    ));
    rows.push(tally(
        "bug: transposed slab reuse (no post-read barrier)".into(),
        vec![RaceCheck],
        sanitized_case(
            bugged(|o| {
                o.vector_layout = VectorLayout::Transposed;
                o.bugs.skip_postread_barrier = true;
            }),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: barrier under divergent control flow".into(),
        vec![SyncCheck],
        divergent_barrier_reports(),
    ));
    rows.push(tally(
        "bug: read of uninitialized shared memory".into(),
        vec![InitCheck],
        uninit_shared_reports(),
    ));
    rows
}

/// Format the matrix as an aligned text table: the dynamic sanitizer's
/// per-class counts and verdict next to the static verifier's.
pub fn format_matrix(rows: &[SanitizeRow]) -> String {
    use std::fmt::Write;
    let wide = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<wide$}  {:>9}  {:>9}  {:>9}  {:>8}  {:>6}  {:>6}  {:>6}  {:>8}  {:>14}  verdict",
        "case",
        "racecheck",
        "synccheck",
        "initcheck",
        "dynamic",
        "s.race",
        "s.sync",
        "s.init",
        "static",
        "(unproven)"
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(wide + 2 + 3 * 11 + 10 + 3 * 8 + 10 + 16 + 9)
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<wide$}  {:>9}  {:>9}  {:>9}  {:>8}  {:>6}  {:>6}  {:>6}  {:>8}  {:>14}  {}",
            r.label,
            r.racecheck,
            r.synccheck,
            r.initcheck,
            r.verdict(),
            r.static_race,
            r.static_sync,
            r.static_init,
            r.static_verdict(),
            r.static_unproven,
            if r.ok() { "ok" } else { "FAIL" }
        );
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(out, "{} case(s), {} unexpected outcome(s)", rows.len(), bad);
    out
}

/// One row of the *static-only* verification sweep: a (compiler,
/// position, type) combination compiled — never simulated — with the
/// verifier's totals over the main and finalize kernels.
#[derive(Debug, Clone)]
pub struct VerifySweepRow {
    pub label: String,
    pub kernels: u64,
    pub errors: u64,
    pub warnings: u64,
    pub unproven: u64,
    /// First error-level finding, for context.
    pub sample: Option<String>,
}

impl VerifySweepRow {
    /// A sweep row passes when no error-level finding was produced.
    /// Warnings (unproven accesses, bank conflicts) are informational:
    /// the PGI-like looped tree carries its stride in a register the
    /// affine analysis cannot bound, so its accesses stay unproven and
    /// the dynamic sanitizer remains the backstop there.
    pub fn ok(&self) -> bool {
        self.errors == 0
    }
}

/// Statically verify every generated kernel of the §6 grid — all seven
/// reduction positions under each compiler personality, at two element
/// widths — without running any of them. This is the `--verify` mode of
/// `acc-testsuite`: a fast pre-launch pass suitable for CI.
pub fn run_verify_sweep(cfg: &SuiteConfig) -> Vec<VerifySweepRow> {
    let vc = VerifyConfig::default();
    let mut rows = Vec::new();
    for comp in Compiler::all() {
        for pos in Position::all() {
            for t in [CType::Int, CType::Double] {
                let label = format!(
                    "{} {} {}",
                    comp.name(),
                    pos.label(),
                    crate::cases::ctype_name(t)
                );
                let src = case_source(pos, RedOp::Add, t);
                let hir = match accparse::compile(&src) {
                    Ok(h) => h,
                    Err(d) => {
                        rows.push(VerifySweepRow {
                            label,
                            kernels: 0,
                            errors: 1,
                            warnings: 0,
                            unproven: 0,
                            sample: Some(format!("parse error: {}", d.message)),
                        });
                        continue;
                    }
                };
                let c = match compile_region(&hir, 0, cfg.dims, &comp.base_options()) {
                    Ok(c) => c,
                    Err(d) => {
                        rows.push(VerifySweepRow {
                            label,
                            kernels: 0,
                            errors: 1,
                            warnings: 0,
                            unproven: 0,
                            sample: Some(format!("compile error: {}", d.message)),
                        });
                        continue;
                    }
                };
                let launch = LaunchConfig::gwv(cfg.dims.gangs, cfg.dims.workers, cfg.dims.vector);
                let mut reports = vec![verify_kernel(&c.main, launch, &vc)];
                for f in &c.finalize {
                    reports.push(verify_kernel(
                        &f.kernel,
                        LaunchConfig::d1(1, f.threads),
                        &vc,
                    ));
                }
                let errors: u64 = reports.iter().map(|r| r.errors()).sum();
                let warnings: u64 = reports
                    .iter()
                    .map(|r| r.findings.len() as u64 - r.errors())
                    .sum();
                rows.push(VerifySweepRow {
                    label,
                    kernels: reports.len() as u64,
                    errors,
                    warnings,
                    unproven: reports.iter().map(|r| r.unproven as u64).sum(),
                    sample: reports
                        .iter()
                        .flat_map(|r| r.findings.iter().filter(|f| !f.warning))
                        .next()
                        .map(|f| f.to_string()),
                });
            }
        }
    }
    rows
}

/// Format the sweep as an aligned text table.
pub fn format_verify_sweep(rows: &[VerifySweepRow]) -> String {
    use std::fmt::Write;
    let wide = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<wide$}  {:>7}  {:>6}  {:>8}  {:>8}  verdict",
        "case", "kernels", "errors", "warnings", "unproven"
    );
    let _ = writeln!(out, "{}", "-".repeat(wide + 2 + 9 + 8 + 2 * 10 + 9));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<wide$}  {:>7}  {:>6}  {:>8}  {:>8}  {}",
            r.label,
            r.kernels,
            r.errors,
            r.warnings,
            r.unproven,
            if r.ok() { "ok" } else { "FAIL" }
        );
        if let (false, Some(s)) = (r.ok(), &r.sample) {
            let _ = writeln!(out, "{:<wide$}    {}", "", s);
        }
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    let _ = writeln!(out, "{} case(s), {} with static errors", rows.len(), bad);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handcrafted_sync_and_init_hazards_fire() {
        let sync = tally(
            "s".into(),
            vec![HazardClass::SyncCheck],
            divergent_barrier_reports(),
        );
        assert_eq!(sync.verdict(), "detected", "{:?}", sync.sample);
        // The static verifier sees the same divergent barrier without
        // running a cycle.
        assert!(sync.static_sync > 0, "{:?}", sync.sample);
        assert_eq!(sync.static_verdict(), "detected");
        let init = tally(
            "i".into(),
            vec![HazardClass::InitCheck],
            uninit_shared_reports(),
        );
        assert_eq!(init.verdict(), "detected", "{:?}", init.sample);
        assert_eq!(init.synccheck, 0);
        assert!(init.static_init > 0, "{:?}", init.sample);
        assert!(init.ok());
    }

    #[test]
    fn openuh_vector_case_is_clean_under_full_sanitizer() {
        let cfg = SuiteConfig::quick();
        let outcome = sanitized_case(
            CompilerOptions::openuh(),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            &cfg,
        );
        let row = tally("v".into(), Vec::new(), outcome);
        assert_eq!(row.verdict(), "clean", "{:?}", row.sample);
        // Static column: no false positives, and the OpenUH unrolled tree
        // is fully provable by the affine analysis.
        assert_eq!(row.static_verdict(), "clean", "{:?}", row.sample);
        assert_eq!(row.static_unproven, 0, "{:?}", row.sample);
    }

    /// The three barrier knobs named by the paper's Fig. 7/8 discussion
    /// must each be caught *statically* as a race, on every geometry the
    /// matrix pins them to.
    #[test]
    fn named_barrier_knobs_are_statically_caught() {
        let cfg = SuiteConfig::quick();
        let bcast = tally(
            "bcast".into(),
            vec![HazardClass::RaceCheck],
            sanitized_case(
                bugged(|o| o.bugs.skip_bcast_barrier = true),
                Position::Vector,
                RedOp::Add,
                CType::Int,
                &cfg,
            ),
        );
        assert!(bcast.static_race > 0, "{:?}", bcast.sample);
        let postread = tally(
            "postread".into(),
            vec![HazardClass::RaceCheck],
            sanitized_case(
                bugged(|o| {
                    o.vector_layout = VectorLayout::Transposed;
                    o.bugs.skip_postread_barrier = true;
                }),
                Position::Vector,
                RedOp::Add,
                CType::Int,
                &cfg,
            ),
        );
        assert!(postread.static_race > 0, "{:?}", postread.sample);
        let tail = tally(
            "tail".into(),
            vec![HazardClass::RaceCheck],
            sanitized_case(
                bugged(|o| o.bugs.warp_tail_everywhere = true),
                Position::Vector,
                RedOp::Add,
                CType::Int,
                &SuiteConfig {
                    dims: LaunchDims {
                        gangs: 4,
                        workers: 2,
                        vector: 80,
                    },
                    ..cfg
                },
            ),
        );
        assert!(tail.static_race > 0, "{:?}", tail.sample);
    }
}
