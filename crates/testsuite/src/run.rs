//! Case execution and verification.
//!
//! Each case runs on the simulated device under one compiler personality
//! and is verified against the sequential CPU reference — exactly the
//! paper's methodology ("the testsuite will check if a given reduction
//! implementation passed or failed by verifying the OpenACC result with
//! the CPU result").

use crate::cases::{case_source, combo_legal, extents, gen_value, Position};
use acc_baselines::{Compiler, CpuExec, ReductionCase};
use accparse::ast::{CType, RedOp};
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{Device, Value};
use uhacc_core::LaunchDims;

/// Suite configuration: reduction loop size and launch geometry.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Iterations of the reduction loop (the paper used up to 1M on a
    /// K20c; the simulator default is scaled down).
    pub red_n: usize,
    /// Launch geometry (the paper: 192 gangs, 8 workers, vector 128).
    pub dims: LaunchDims,
    /// Host worker threads for block execution (0 = auto, 1 = sequential;
    /// see [`gpsim::DeviceConfig::host_threads`]). Results are bit-identical
    /// at any setting.
    pub host_threads: u32,
    /// Simulator execution tier (see [`gpsim::ExecTier`]). Results are
    /// bit-identical at any setting.
    pub exec_tier: gpsim::ExecTier,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            red_n: 16 * 1024,
            dims: LaunchDims::paper(),
            host_threads: 0,
            exec_tier: gpsim::ExecTier::Auto,
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for unit tests.
    pub fn quick() -> Self {
        SuiteConfig {
            red_n: 1024,
            dims: LaunchDims {
                gangs: 8,
                workers: 4,
                vector: 64,
            },
            host_threads: 0,
            exec_tier: gpsim::ExecTier::Auto,
        }
    }
}

/// Outcome of one case under one compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseStatus {
    /// Verified correct; modelled kernel time in milliseconds.
    Pass { ms: f64 },
    /// Ran but produced a wrong result (a Table 2 "F").
    Fail { detail: String },
    /// Rejected at compile time (a Table 2 "CE").
    CompileError { msg: String },
}

impl CaseStatus {
    /// The milliseconds if the case passed.
    pub fn ms(&self) -> Option<f64> {
        match self {
            CaseStatus::Pass { ms } => Some(*ms),
            _ => None,
        }
    }
}

/// A fully identified result row.
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub compiler: Compiler,
    pub position: Position,
    pub op: RedOp,
    pub dtype: CType,
    pub status: CaseStatus,
}

/// Reference outputs for a case, computed once by the CPU executor and
/// shared by all compilers.
#[derive(Debug, Clone)]
pub struct Expected {
    /// Expected value of `sum`, for scalar-verified positions.
    pub scalar: Option<Value>,
    /// Expected contents of `out`, for array-verified positions.
    pub out: Option<Vec<Value>>,
}

/// Arrays bound for a case: `(input, optional temp, optional out-shape)`.
pub struct CaseData {
    pub input: HostBuffer,
    pub temp_len: Option<usize>,
    pub out_len: Option<usize>,
}

pub fn case_data(pos: Position, op: RedOp, t: CType, cfg: &SuiteConfig) -> CaseData {
    let (nk, nj, ni) = extents(pos, cfg.red_n);
    let n = nk * nj * ni;
    let mut input = HostBuffer::new(t, n);
    for i in 0..n {
        input.set(i, gen_value(op, t, i));
    }
    let (temp_len, out_len) = match pos {
        Position::Gang | Position::GangWorker => (Some(n), None),
        Position::Worker => (Some(n), Some(nk)),
        Position::Vector => (None, Some(nk * nj)),
        Position::WorkerVector => (None, Some(nk)),
        Position::GangWorkerVector | Position::SameLineGwv => (None, None),
    };
    CaseData {
        input,
        temp_len,
        out_len,
    }
}

pub fn bind_dims(
    pos: Position,
    cfg: &SuiteConfig,
    mut bind: impl FnMut(&str, i64) -> Result<(), AccError>,
) -> Result<(), AccError> {
    let (nk, nj, ni) = extents(pos, cfg.red_n);
    if pos == Position::SameLineGwv {
        bind("N", nk as i64)
    } else {
        bind("NK", nk as i64)?;
        bind("NJ", nj as i64)?;
        bind("NI", ni as i64)
    }
}

/// Compute the CPU reference for a case.
pub fn reference(pos: Position, op: RedOp, t: CType, cfg: &SuiteConfig) -> Expected {
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut cpu = CpuExec::new(&src).expect("testsuite sources always compile");
    bind_dims(pos, cfg, |n, v| cpu.bind_int(n, v)).unwrap();
    cpu.bind_array("input", data.input.clone()).unwrap();
    if let Some(n) = data.temp_len {
        cpu.bind_array("temp", HostBuffer::new(t, n)).unwrap();
    }
    if let Some(n) = data.out_len {
        cpu.bind_array("out", HostBuffer::new(t, n)).unwrap();
    }
    cpu.run().expect("CPU reference execution");
    let scalar = cpu.scalar("sum").ok();
    let out = data
        .out_len
        .map(|n| (0..n).map(|i| cpu.array("out").unwrap().get(i)).collect());
    Expected { scalar, out }
}

/// Tolerant value comparison: exact for integers, relative tolerance for
/// floats (parallel trees reassociate rounding).
pub fn values_match(got: Value, want: Value, t: CType) -> bool {
    match t {
        CType::Int | CType::Long => got.as_i64() == want.as_i64(),
        CType::Float => {
            let (g, w) = (got.as_f64(), want.as_f64());
            (g - w).abs() <= 1e-2 * w.abs().max(1.0)
        }
        CType::Double => {
            let (g, w) = (got.as_f64(), want.as_f64());
            (g - w).abs() <= 1e-8 * w.abs().max(1.0)
        }
    }
}

/// Run one case under one compiler personality and verify it.
pub fn run_case(
    compiler: Compiler,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
    expected: &Expected,
) -> CaseResult {
    let status = run_case_inner(compiler, pos, op, t, cfg, expected);
    CaseResult {
        compiler,
        position: pos,
        op,
        dtype: t,
        status,
    }
}

fn run_case_inner(
    compiler: Compiler,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
    expected: &Expected,
) -> CaseStatus {
    let case = ReductionCase::new(pos.levels(), pos.same_loop(), op, t);
    let opts = match compiler.options_for_case(&case) {
        Ok(o) => o,
        Err(msg) => return CaseStatus::CompileError { msg },
    };
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = match AccRunner::with_options(&src, opts, cfg.dims, Device::default()) {
        Ok(r) => r,
        Err(AccError::Compile(d)) => return CaseStatus::CompileError { msg: d.to_string() },
        Err(e) => {
            return CaseStatus::Fail {
                detail: e.to_string(),
            }
        }
    };
    r.set_host_threads(cfg.host_threads);
    r.set_exec_tier(cfg.exec_tier);
    if let Err(e) = (|| -> Result<(), AccError> {
        bind_dims(pos, cfg, |n, v| r.bind_int(n, v))?;
        r.bind_array("input", data.input.clone())?;
        if let Some(n) = data.out_len {
            r.bind_array("out", HostBuffer::new(t, n))?;
        }
        r.run()
    })() {
        return match e {
            AccError::Compile(d) => CaseStatus::CompileError { msg: d.to_string() },
            other => CaseStatus::Fail {
                detail: other.to_string(),
            },
        };
    }
    // Verify.
    if let Some(want) = expected.scalar {
        if let Ok(got) = r.scalar("sum") {
            if !values_match(got, want, t) {
                return CaseStatus::Fail {
                    detail: format!("sum: got {got}, want {want}"),
                };
            }
        }
    }
    if let Some(want_out) = &expected.out {
        let out = r.array("out").expect("out bound above");
        for (i, want) in want_out.iter().enumerate() {
            let got = out.get(i);
            if !values_match(got, *want, t) {
                return CaseStatus::Fail {
                    detail: format!("out[{i}]: got {got}, want {want}"),
                };
            }
        }
    }
    let st = r.device().stats();
    let ms = r
        .device()
        .cost_model()
        .cycles_to_ms(st.kernel_cycles, r.device().config().clock_hz);
    CaseStatus::Pass { ms }
}

/// Run the full suite: every position for the given operators and types
/// under every compiler. References are computed once per case.
pub fn run_suite(
    compilers: &[Compiler],
    ops: &[RedOp],
    dtypes: &[CType],
    cfg: &SuiteConfig,
) -> Vec<CaseResult> {
    let mut results = Vec::new();
    for pos in Position::all() {
        for &op in ops {
            for &t in dtypes {
                if !combo_legal(op, t) {
                    continue;
                }
                let expected = reference(pos, op, t, cfg);
                for &c in compilers {
                    results.push(run_case(c, pos, op, t, cfg, &expected));
                }
            }
        }
    }
    results
}

/// Rendered profile exports for one testsuite case.
#[derive(Debug, Clone)]
pub struct ProfiledCase {
    /// Human-readable report (per-line / per-pc stall attribution).
    pub report: String,
    /// Stable machine-readable JSON.
    pub json: String,
    /// Chrome/Perfetto trace of the modelled timeline.
    pub trace: String,
}

/// Run one case under one compiler personality with the profiler on and
/// return the rendered session profile. The result is not verified — use
/// [`run_case`] for that; this exists so `acc-testsuite --profile` can
/// show where the modelled cycles of a Table 2 case go.
pub fn profile_case(
    compiler: Compiler,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
) -> Result<ProfiledCase, String> {
    let case = ReductionCase::new(pos.levels(), pos.same_loop(), op, t);
    let opts = compiler.options_for_case(&case)?;
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = AccRunner::with_options(&src, opts, cfg.dims, Device::default())
        .map_err(|e| e.to_string())?;
    r.set_host_threads(cfg.host_threads);
    r.set_exec_tier(cfg.exec_tier);
    r.profile(true);
    bind_dims(pos, cfg, |n, v| r.bind_int(n, v)).map_err(|e| e.to_string())?;
    r.bind_array("input", data.input.clone())
        .map_err(|e| e.to_string())?;
    if let Some(n) = data.out_len {
        r.bind_array("out", HostBuffer::new(t, n))
            .map_err(|e| e.to_string())?;
    }
    r.run().map_err(|e| e.to_string())?;
    Ok(ProfiledCase {
        report: r.profile_report(),
        json: r.profile_json(),
        trace: r.profile_chrome_trace(),
    })
}

/// Wall-clock timing of one case (see [`time_case`]).
#[derive(Debug, Clone, Copy)]
pub struct TimedCase {
    /// Wall-clock seconds spent inside `run()` (setup and input binding
    /// excluded).
    pub secs: f64,
    /// Simulated lane-instructions executed, for instruction-throughput
    /// rates.
    pub lane_insts: u64,
}

/// Wall-clock one case under one compiler personality: build a fresh
/// session (untimed), bind the deterministic inputs (untimed), then time
/// `run()` alone. `cfg.exec_tier` and `cfg.host_threads` select the
/// simulator configuration being measured, so `make-figures
/// sim-throughput` can race the execution tiers on identical workloads.
pub fn time_case(
    compiler: Compiler,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
) -> Result<TimedCase, String> {
    let case = ReductionCase::new(pos.levels(), pos.same_loop(), op, t);
    let opts = compiler.options_for_case(&case)?;
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = AccRunner::with_options(&src, opts, cfg.dims, Device::default())
        .map_err(|e| e.to_string())?;
    r.set_host_threads(cfg.host_threads);
    r.set_exec_tier(cfg.exec_tier);
    bind_dims(pos, cfg, |n, v| r.bind_int(n, v)).map_err(|e| e.to_string())?;
    r.bind_array("input", data.input.clone())
        .map_err(|e| e.to_string())?;
    if let Some(n) = data.out_len {
        r.bind_array("out", HostBuffer::new(t, n))
            .map_err(|e| e.to_string())?;
    }
    let start = std::time::Instant::now();
    r.run().map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    Ok(TimedCase {
        secs,
        lane_insts: r.device().stats().totals.lane_insts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openuh_passes_every_position_quick() {
        let cfg = SuiteConfig::quick();
        for pos in Position::all() {
            let exp = reference(pos, RedOp::Add, CType::Int, &cfg);
            let r = run_case(Compiler::OpenUH, pos, RedOp::Add, CType::Int, &cfg, &exp);
            assert!(
                matches!(r.status, CaseStatus::Pass { .. }),
                "{}: {:?}",
                pos.label(),
                r.status
            );
        }
    }

    #[test]
    fn pgi_fails_worker_add_but_passes_worker_mul() {
        let cfg = SuiteConfig::quick();
        let exp = reference(Position::Worker, RedOp::Add, CType::Int, &cfg);
        let r = run_case(
            Compiler::PgiLike,
            Position::Worker,
            RedOp::Add,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::Fail { .. }),
            "{:?}",
            r.status
        );
        let exp = reference(Position::Worker, RedOp::Mul, CType::Int, &cfg);
        let r = run_case(
            Compiler::PgiLike,
            Position::Worker,
            RedOp::Mul,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::Pass { .. }),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn pgi_compile_errors_on_gwv_different_loops() {
        let cfg = SuiteConfig::quick();
        let exp = reference(Position::GangWorkerVector, RedOp::Add, CType::Int, &cfg);
        let r = run_case(
            Compiler::PgiLike,
            Position::GangWorkerVector,
            RedOp::Add,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::CompileError { .. }),
            "{:?}",
            r.status
        );
        // ... but not on the same-line variant.
        let exp = reference(Position::SameLineGwv, RedOp::Add, CType::Int, &cfg);
        let r = run_case(
            Compiler::PgiLike,
            Position::SameLineGwv,
            RedOp::Add,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::Pass { .. }),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn caps_fails_wv_add_but_passes_wv_mul() {
        let cfg = SuiteConfig::quick();
        let exp = reference(Position::WorkerVector, RedOp::Add, CType::Int, &cfg);
        let r = run_case(
            Compiler::CapsLike,
            Position::WorkerVector,
            RedOp::Add,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::Fail { .. }),
            "{:?}",
            r.status
        );
        let exp = reference(Position::WorkerVector, RedOp::Mul, CType::Int, &cfg);
        let r = run_case(
            Compiler::CapsLike,
            Position::WorkerVector,
            RedOp::Mul,
            CType::Int,
            &cfg,
            &exp,
        );
        assert!(
            matches!(r.status, CaseStatus::Pass { .. }),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn values_match_tolerances() {
        assert!(values_match(Value::I32(5), Value::I32(5), CType::Int));
        assert!(!values_match(Value::I32(5), Value::I32(6), CType::Int));
        assert!(values_match(
            Value::F32(100.001),
            Value::F32(100.0),
            CType::Float
        ));
        assert!(!values_match(
            Value::F64(100.1),
            Value::F64(100.0),
            CType::Double
        ));
    }
}

#[cfg(test)]
mod all_ops_tests {
    use super::*;
    use crate::cases::combo_legal;

    /// The paper's §1 claim: "our algorithms cover all possible cases of
    /// reduction operations in three levels of parallelism, all reduction
    /// operator types and operand data types." Every legal (position, op,
    /// dtype) combination must pass under OpenUH.
    #[test]
    fn openuh_covers_every_operator_and_type() {
        let cfg = SuiteConfig::quick();
        let ops = [
            RedOp::Add,
            RedOp::Mul,
            RedOp::Max,
            RedOp::Min,
            RedOp::BitAnd,
            RedOp::BitOr,
            RedOp::BitXor,
            RedOp::LogAnd,
            RedOp::LogOr,
        ];
        let dtypes = [CType::Int, CType::Long, CType::Float, CType::Double];
        let mut ran = 0;
        for pos in Position::all() {
            for op in ops {
                for t in dtypes {
                    if !combo_legal(op, t) {
                        continue;
                    }
                    let exp = reference(pos, op, t, &cfg);
                    let r = run_case(Compiler::OpenUH, pos, op, t, &cfg, &exp);
                    assert!(
                        matches!(r.status, CaseStatus::Pass { .. }),
                        "{} {} {:?}: {:?}",
                        pos.label(),
                        op,
                        t,
                        r.status
                    );
                    ran += 1;
                }
            }
        }
        // 7 positions x (4 ops x 4 types + 5 int-only ops x 2 types).
        assert_eq!(ran, 7 * (4 * 4 + 5 * 2));
    }
}
