//! Result formatting: the paper's Table 2 and the Fig. 11 series.

use crate::cases::{ctype_name, Position};
use crate::run::{CaseResult, CaseStatus};
use acc_baselines::Compiler;
use accparse::ast::{CType, RedOp};

/// Find a result in a result set.
pub fn find(
    results: &[CaseResult],
    compiler: Compiler,
    pos: Position,
    op: RedOp,
    t: CType,
) -> Option<&CaseResult> {
    results
        .iter()
        .find(|r| r.compiler == compiler && r.position == pos && r.op == op && r.dtype == t)
}

fn cell(results: &[CaseResult], c: Compiler, pos: Position, op: RedOp, t: CType) -> String {
    match find(results, c, pos, op, t) {
        None => "-".to_string(),
        Some(r) => match &r.status {
            CaseStatus::Pass { ms } => format!("{ms:.2}"),
            CaseStatus::Fail { .. } => "F".to_string(),
            CaseStatus::CompileError { .. } => "CE".to_string(),
        },
    }
}

/// Render the paper's Table 2 layout: rows are (position, operator), column
/// groups are data types, columns within a group are compilers.
pub fn format_table2(results: &[CaseResult], ops: &[RedOp], dtypes: &[CType]) -> String {
    use std::fmt::Write;
    let compilers = [Compiler::OpenUH, Compiler::PgiLike, Compiler::CapsLike];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Performance results of OpenACC compilers using the reduction testsuite."
    );
    let _ = writeln!(
        out,
        "Time in milliseconds (modelled device time). F = wrong result, CE = compile error.\n"
    );
    let _ = write!(out, "{:<30} {:<4}", "Reduction Position", "Op");
    for t in dtypes {
        for c in compilers {
            let _ = write!(out, " {:>10}", format!("{}[{}]", c.name(), ctype_name(*t)));
        }
    }
    let _ = writeln!(out);
    let width = 30 + 1 + 4 + dtypes.len() * compilers.len() * 11;
    let _ = writeln!(out, "{}", "-".repeat(width));
    for pos in Position::all() {
        for &op in ops {
            let _ = write!(out, "{:<30} {:<4}", pos.label(), op.clause_token());
            for &t in dtypes {
                for c in compilers {
                    let _ = write!(out, " {:>10}", cell(results, c, pos, op, t));
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Render the Fig. 11 view: for each reduction position, one line per
/// (operator, type) with all compiler times side by side — the data behind
/// the paper's bar charts.
pub fn format_fig11(results: &[CaseResult], ops: &[RedOp], dtypes: &[CType]) -> String {
    use std::fmt::Write;
    let compilers = [Compiler::OpenUH, Compiler::PgiLike, Compiler::CapsLike];
    let mut out = String::new();
    for pos in Position::all() {
        let _ = writeln!(
            out,
            "Figure 11 ({}): time in ms, missing bar = failed",
            pos.label()
        );
        for &op in ops {
            for &t in dtypes {
                if find(results, Compiler::OpenUH, pos, op, t).is_none() {
                    continue;
                }
                let _ = write!(out, "  [{}] {:<7}", op.clause_token(), ctype_name(t));
                for c in compilers {
                    let _ = write!(out, " {}={:<10}", c.name(), cell(results, c, pos, op, t));
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Summarize pass/fail counts per compiler (the paper's robustness claim:
/// "only OpenUH passed all of the reduction tests").
pub fn format_summary(results: &[CaseResult]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for c in [Compiler::OpenUH, Compiler::PgiLike, Compiler::CapsLike] {
        let (mut pass, mut fail, mut ce) = (0, 0, 0);
        for r in results.iter().filter(|r| r.compiler == c) {
            match r.status {
                CaseStatus::Pass { .. } => pass += 1,
                CaseStatus::Fail { .. } => fail += 1,
                CaseStatus::CompileError { .. } => ce += 1,
            }
        }
        let _ = writeln!(
            out,
            "{:<10} passed {pass:>3}  wrong {fail:>3}  compile-error {ce:>3}",
            c.name()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(c: Compiler, pos: Position, op: RedOp, t: CType, status: CaseStatus) -> CaseResult {
        CaseResult {
            compiler: c,
            position: pos,
            op,
            dtype: t,
            status,
        }
    }

    #[test]
    fn table_renders_all_statuses() {
        let results = vec![
            mk(
                Compiler::OpenUH,
                Position::Gang,
                RedOp::Add,
                CType::Int,
                CaseStatus::Pass { ms: 1.23 },
            ),
            mk(
                Compiler::PgiLike,
                Position::Gang,
                RedOp::Add,
                CType::Int,
                CaseStatus::Fail { detail: "x".into() },
            ),
            mk(
                Compiler::CapsLike,
                Position::Gang,
                RedOp::Add,
                CType::Int,
                CaseStatus::CompileError { msg: "y".into() },
            ),
        ];
        let t = format_table2(&results, &[RedOp::Add], &[CType::Int]);
        assert!(t.contains("1.23"));
        assert!(t.contains(" F"));
        assert!(t.contains("CE"));
        assert!(t.contains("gang"));
        let s = format_summary(&results);
        assert!(s.contains("OpenUH"));
        assert!(s.contains("passed   1"));
    }

    #[test]
    fn fig11_lists_rows() {
        let results = vec![mk(
            Compiler::OpenUH,
            Position::Vector,
            RedOp::Mul,
            CType::Double,
            CaseStatus::Pass { ms: 4.0 },
        )];
        let f = format_fig11(&results, &[RedOp::Mul], &[CType::Double]);
        assert!(f.contains("vector"));
        assert!(f.contains("[*] double"));
    }
}
