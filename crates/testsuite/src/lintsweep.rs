//! Stripped-clause lint sweep over the §6 reduction grid.
//!
//! For every legal (position, operator, type) case of the testsuite, two
//! properties tie the lint layer to the paper's semantics:
//!
//! 1. **Stripped** — removing the `reduction` clause from the generated
//!    source must produce exactly one `L100` missing-reduction finding
//!    whose suggested clause (operator, variable) and detected span match
//!    the clause that was removed (the span is the position's levels,
//!    Table 2).
//! 2. **Intact** — the unmodified source must lint completely clean: the
//!    checks add no false positives on the very codes they exist to
//!    protect.

use crate::cases::{case_source, combo_legal, ctype_name, Position};
use accparse::ast::{CType, RedOp};
use accparse::lint::{lint_source, FindingKind};

/// One (position, op, type) outcome of the sweep.
#[derive(Debug, Clone)]
pub struct LintSweepRow {
    pub label: String,
    /// Codes reported on the intact source (must be empty).
    pub intact_codes: Vec<String>,
    /// Codes reported on the stripped source.
    pub stripped_codes: Vec<String>,
    /// Did the stripped source produce exactly one `L100` whose suggested
    /// clause matches the stripped one (operator, variable and span)?
    pub suggestion_matches: bool,
    /// Failure detail when something did not hold.
    pub detail: Option<String>,
}

impl LintSweepRow {
    /// Both properties held.
    pub fn ok(&self) -> bool {
        self.intact_codes.is_empty() && self.suggestion_matches
    }
}

/// Remove every `reduction(...)` clause from a directive source.
pub fn strip_reduction_clauses(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut rest = src;
    while let Some(pos) = rest.find("reduction(") {
        let (before, after) = rest.split_at(pos);
        out.push_str(before.trim_end_matches(' '));
        let close = after.find(')').map(|c| c + 1).unwrap_or(after.len());
        rest = &after[close..];
    }
    out.push_str(rest);
    out
}

/// The variable each position's clause names (see [`case_source`]).
fn clause_var(pos: Position) -> &'static str {
    match pos {
        Position::Worker | Position::WorkerVector => "j_sum",
        Position::Vector => "i_sum",
        _ => "sum",
    }
}

/// Run the sweep for one case.
pub fn lint_case(pos: Position, op: RedOp, t: CType) -> LintSweepRow {
    let label = format!("{} {} {}", pos.label(), op, ctype_name(t));
    let src = case_source(pos, op, t);

    let intact_codes = match lint_source(&src) {
        Ok((_, findings)) => findings.iter().map(|f| f.code().to_string()).collect(),
        Err(d) => {
            return LintSweepRow {
                label,
                intact_codes: vec!["compile-error".into()],
                stripped_codes: Vec::new(),
                suggestion_matches: false,
                detail: Some(d.render(&src)),
            }
        }
    };

    let stripped = strip_reduction_clauses(&src);
    let (stripped_codes, suggestion_matches, detail) = match lint_source(&stripped) {
        Ok((_, findings)) => {
            let codes: Vec<String> = findings.iter().map(|f| f.code().to_string()).collect();
            let missing: Vec<&FindingKind> = findings
                .iter()
                .filter(|f| matches!(f.kind, FindingKind::MissingReduction { .. }))
                .map(|f| &f.kind)
                .collect();
            match missing.as_slice() {
                [FindingKind::MissingReduction {
                    var,
                    op: found_op,
                    span_levels,
                    ..
                }] => {
                    let ok =
                        var == clause_var(pos) && *found_op == op && *span_levels == pos.levels();
                    let detail = (!ok).then(|| {
                        format!(
                            "suggested reduction({}:{}) span {:?}, stripped \
                             reduction({}:{}) span {:?}",
                            found_op,
                            var,
                            span_levels,
                            op,
                            clause_var(pos),
                            pos.levels()
                        )
                    });
                    (codes, ok, detail)
                }
                other => (
                    codes,
                    false,
                    Some(format!("expected exactly one L100, got {other:?}")),
                ),
            }
        }
        Err(d) => (
            vec!["compile-error".into()],
            false,
            Some(d.render(&stripped)),
        ),
    };

    LintSweepRow {
        label,
        intact_codes,
        stripped_codes,
        suggestion_matches,
        detail,
    }
}

/// Run the full sweep: every position × all nine operators × all four
/// types, skipping illegal combinations.
pub fn run_lint_sweep() -> Vec<LintSweepRow> {
    let ops = [
        RedOp::Add,
        RedOp::Mul,
        RedOp::Max,
        RedOp::Min,
        RedOp::BitAnd,
        RedOp::BitOr,
        RedOp::BitXor,
        RedOp::LogAnd,
        RedOp::LogOr,
    ];
    let types = [CType::Int, CType::Long, CType::Float, CType::Double];
    let mut rows = Vec::new();
    for pos in Position::all() {
        for op in ops {
            for t in types {
                if combo_legal(op, t) {
                    rows.push(lint_case(pos, op, t));
                }
            }
        }
    }
    rows
}

/// Format the sweep as a fixed-width table with a summary line.
pub fn format_lint_sweep(rows: &[LintSweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>8} {:>10} {:>8}\n",
        "case", "intact", "stripped", "verdict"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<42} {:>8} {:>10} {:>8}\n",
            r.label,
            if r.intact_codes.is_empty() {
                "clean".to_string()
            } else {
                r.intact_codes.join(",")
            },
            r.stripped_codes.join(","),
            if r.ok() { "ok" } else { "FAIL" }
        ));
        if let Some(d) = &r.detail {
            for line in d.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
    }
    let failed = rows.iter().filter(|r| !r.ok()).count();
    out.push_str(&format!(
        "\n{} case(s), {} failed: intact sources lint clean and every \
         stripped clause is re-suggested exactly\n",
        rows.len(),
        failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_only_the_clause() {
        let src = "#pragma acc loop gang reduction(+:sum)\nfor (int i = 0; i < N; i++) {}";
        let s = strip_reduction_clauses(src);
        assert_eq!(s, "#pragma acc loop gang\nfor (int i = 0; i < N; i++) {}");
        // No clause: unchanged.
        assert_eq!(strip_reduction_clauses("x + y"), "x + y");
        // Multiple clauses all removed.
        let two = "reduction(+:a) mid reduction(max:b) end";
        assert_eq!(strip_reduction_clauses(two), " mid end");
    }

    #[test]
    fn full_sweep_holds() {
        let rows = run_lint_sweep();
        // 7 positions x (4 ops x 4 types + 5 int-only ops x 2 types).
        assert_eq!(rows.len(), 7 * (4 * 4 + 5 * 2));
        let bad: Vec<&LintSweepRow> = rows.iter().filter(|r| !r.ok()).collect();
        assert!(
            bad.is_empty(),
            "{}",
            format_lint_sweep(&bad.into_iter().cloned().collect::<Vec<_>>())
        );
    }
}
