//! The certification sweep: translation validation (`redcert`) over the
//! paper's §6 strategy grid, next to the injected-miscompilation knobs of
//! the sanitize matrix.
//!
//! Two invariants, checked from opposite directions:
//!
//! * **Completeness over legal strategies** — every lowering the compiler
//!   may legitimately pick (row-wise vs transposed slabs × first-row vs
//!   duplicate-rows worker combining × unrolled vs looped trees × shared
//!   vs global staging, across all seven reduction positions) must come
//!   back `certified` for integer reductions and
//!   `certified-modulo-reassoc` for floating-point ones.
//! * **Soundness against miscompilations** — every injected codegen
//!   defect, pinned to a geometry where it is live, must come back
//!   `refuted` or `unknown`. A defect row that certifies is a *false
//!   Certified*: the one outcome a translation validator must never
//!   produce, and the sweep's hard failure.

use crate::cases::{case_source, Position};
use crate::run::{bind_dims, case_data, SuiteConfig};
use accparse::ast::{CType, RedOp};
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{CertReport, CertVerdict, Device};
use uhacc_core::{
    CombineSpace, CompilerOptions, GangStrategy, LaunchDims, Schedule, TreeStyle, VectorLayout,
    WorkerStrategy,
};

/// What a sweep row must come back as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertExpect {
    /// Integer folds: bit-exact, must be `certified`.
    Exact,
    /// Floating-point folds: `certified-modulo-reassoc` (value-equal up
    /// to reassociation of the parallel tree).
    Reassoc,
    /// Injected miscompilation: must NOT certify — `refuted` or
    /// `unknown` both count, `certified*` is the sweep failure.
    NotCertified,
}

impl CertExpect {
    pub fn label(&self) -> &'static str {
        match self {
            CertExpect::Exact => "certified",
            CertExpect::Reassoc => "modulo-reassoc",
            CertExpect::NotCertified => "not-certified",
        }
    }
}

/// One row of the sweep: a (strategy-or-defect, position, type)
/// combination with the worst verdict across its region reports.
#[derive(Debug, Clone)]
pub struct CertSweepRow {
    pub label: String,
    pub expect: CertExpect,
    /// Worst verdict label (`certified` / `certified-modulo-reassoc` /
    /// `unknown` / `refuted`), or `error` when the run produced no
    /// report at all.
    pub verdict: String,
    /// Did the case certify (exactly or modulo reassociation)?
    pub certified: bool,
    /// Unknown reason / refutation witness / run error, for context.
    pub sample: Option<String>,
}

impl CertSweepRow {
    pub fn ok(&self) -> bool {
        match self.expect {
            CertExpect::Exact => self.verdict == "certified",
            CertExpect::Reassoc => self.verdict == "certified-modulo-reassoc",
            CertExpect::NotCertified => !self.certified,
        }
    }

    /// The hard failure: an injected defect the validator certified.
    pub fn false_certified(&self) -> bool {
        self.expect == CertExpect::NotCertified && self.certified
    }
}

/// The sweep's launch geometry: 2 gangs × 2 workers × 64 lanes keeps the
/// gang/worker/vector combining paths all live while symbolic execution
/// of every thread stays instant; `red_n` is sized so every thread of
/// the window-sliding schedule gets at least one iteration.
pub fn cert_config() -> SuiteConfig {
    SuiteConfig {
        red_n: 24,
        dims: LaunchDims {
            gangs: 2,
            workers: 2,
            vector: 64,
        },
        host_threads: 0,
        exec_tier: gpsim::ExecTier::Auto,
    }
}

/// Run one testsuite case under the translation validator, returning its
/// region reports and the run error (if any; certification happens
/// pre-launch, so reports survive an aborted launch).
fn cert_case(
    opts: CompilerOptions,
    pos: Position,
    op: RedOp,
    t: CType,
    cfg: &SuiteConfig,
) -> (Vec<CertReport>, Option<String>) {
    let src = case_source(pos, op, t);
    let data = case_data(pos, op, t, cfg);
    let mut r = match AccRunner::with_options(&src, opts, cfg.dims, Device::default()) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Some(e.to_string())),
    };
    r.set_host_threads(cfg.host_threads);
    r.set_exec_tier(cfg.exec_tier);
    r.certify(true);
    let bound = (|| -> Result<(), AccError> {
        bind_dims(pos, cfg, |n, v| r.bind_int(n, v))?;
        r.bind_array("input", data.input.clone())?;
        if let Some(n) = data.out_len {
            r.bind_array("out", HostBuffer::new(t, n))?;
        }
        r.run()
    })();
    (r.take_cert_reports(), bound.err().map(|e| e.to_string()))
}

fn tally(
    label: String,
    expect: CertExpect,
    outcome: (Vec<CertReport>, Option<String>),
) -> CertSweepRow {
    let (reports, err) = outcome;
    let mut worst = CertVerdict::Certified;
    for rep in &reports {
        worst = worst.merge(rep.verdict.clone());
    }
    let sample = reports
        .iter()
        .find_map(|r| match &r.verdict {
            CertVerdict::Unknown { reason } => Some(reason.clone()),
            CertVerdict::Refuted { witness } => Some(witness.clone()),
            _ => None,
        })
        .or(err.clone());
    let (verdict, certified) = if reports.is_empty() {
        ("error".to_string(), false)
    } else {
        (worst.label().to_string(), worst.is_certified())
    };
    CertSweepRow {
        label,
        expect,
        verdict,
        certified,
        sample,
    }
}

fn with(f: impl FnOnce(&mut CompilerOptions)) -> CompilerOptions {
    let mut o = CompilerOptions::openuh();
    f(&mut o);
    o
}

/// Run the full certification sweep.
///
/// Block 1: the OpenUH strategy at every reduction position of Table 2,
/// integer and double. Block 2: the full legal strategy grid (layout ×
/// worker × tree × staging, plus the blocking schedule and the atomic
/// gang fallback). Block 3: the sanitize matrix's injected defects, each
/// pinned to the geometry where it is live — none may certify.
pub fn run_cert_sweep(cfg: &SuiteConfig) -> Vec<CertSweepRow> {
    let mut rows = Vec::new();

    for pos in Position::all() {
        rows.push(tally(
            format!("openuh {} int +", pos.label()),
            CertExpect::Exact,
            cert_case(CompilerOptions::openuh(), pos, RedOp::Add, CType::Int, cfg),
        ));
        rows.push(tally(
            format!("openuh {} double +", pos.label()),
            CertExpect::Reassoc,
            cert_case(
                CompilerOptions::openuh(),
                pos,
                RedOp::Add,
                CType::Double,
                cfg,
            ),
        ));
    }

    // The legal §6 grid, at the position that exercises every combining
    // path (gang, worker and vector reductions in one nest).
    for layout in [VectorLayout::RowWise, VectorLayout::Transposed] {
        for worker in [WorkerStrategy::FirstRow, WorkerStrategy::DuplicateRows] {
            for tree in [TreeStyle::Unrolled, TreeStyle::Looped] {
                for combine in [CombineSpace::Shared, CombineSpace::Global] {
                    let label = format!(
                        "grid {}/{}/{}/{} gwv int +",
                        match layout {
                            VectorLayout::RowWise => "rowwise",
                            VectorLayout::Transposed => "transposed",
                        },
                        match worker {
                            WorkerStrategy::FirstRow => "firstrow",
                            WorkerStrategy::DuplicateRows => "duprows",
                        },
                        match tree {
                            TreeStyle::Unrolled => "unrolled",
                            TreeStyle::Looped => "looped",
                        },
                        match combine {
                            CombineSpace::Shared => "shared",
                            CombineSpace::Global => "global",
                        }
                    );
                    rows.push(tally(
                        label,
                        CertExpect::Exact,
                        cert_case(
                            with(|o| {
                                o.vector_layout = layout;
                                o.worker_strategy = worker;
                                o.tree = tree;
                                o.combine_space = combine;
                            }),
                            Position::GangWorkerVector,
                            RedOp::Add,
                            CType::Int,
                            cfg,
                        ),
                    ));
                }
            }
        }
    }
    rows.push(tally(
        "blocking schedule gwv int +".into(),
        CertExpect::Exact,
        cert_case(
            with(|o| o.schedule = Schedule::Blocking),
            Position::GangWorkerVector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "atomic gang fallback int +".into(),
        CertExpect::Exact,
        cert_case(
            with(|o| o.gang_strategy = GangStrategy::Atomic),
            Position::Gang,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));

    // Injected defects — the sanitize matrix's knobs, pinned to the
    // geometries where each defect is live. None may certify.
    rows.push(tally(
        "bug: missing stage barrier (worker)".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| o.bugs.skip_stage_barrier = true),
            Position::Worker,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: missing post-broadcast barrier (vector)".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| o.bugs.skip_bcast_barrier = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: warp-sync tail with vector % 32 != 0".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| o.bugs.warp_tail_everywhere = true),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            &SuiteConfig {
                dims: LaunchDims {
                    gangs: 4,
                    workers: 2,
                    vector: 80,
                },
                ..*cfg
            },
        ),
    ));
    rows.push(tally(
        "bug: transposed slab reuse (no post-read barrier)".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| {
                o.vector_layout = VectorLayout::Transposed;
                o.bugs.skip_postread_barrier = true;
            }),
            Position::Vector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    // The span bug is live only where the reduction *spans* levels
    // beyond the clause's own (the Fig. 9 shape): at worker-vector the
    // clause sits on the worker loop and auto-span must pull in the
    // vector level; honouring clause levels only loses the vector
    // contributions. (At plain worker position the defect is benign —
    // nothing spans — and the validator rightly still certifies.)
    rows.push(tally(
        "bug: clause levels only (vector span dropped)".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| o.bugs.clause_levels_only = true),
            Position::WorkerVector,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug(benign): clause levels only, nothing spans".into(),
        CertExpect::Exact,
        cert_case(
            with(|o| o.bugs.clause_levels_only = true),
            Position::Worker,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    rows.push(tally(
        "bug: initial value not folded (+, init 3)".into(),
        CertExpect::NotCertified,
        cert_case(
            with(|o| o.bugs.skip_init_fold = true),
            Position::SameLineGwv,
            RedOp::Add,
            CType::Int,
            cfg,
        ),
    ));
    // The same knob is benign for `*`: the testsuite's initial value for
    // products is 1 — the operator's identity — so skipping the fold
    // changes nothing and the validator rightly still certifies.
    rows.push(tally(
        "bug(benign): initial value not folded (*, init 1)".into(),
        CertExpect::Exact,
        cert_case(
            with(|o| o.bugs.skip_init_fold = true),
            Position::SameLineGwv,
            RedOp::Mul,
            CType::Int,
            cfg,
        ),
    ));

    rows
}

/// Format the sweep as an aligned text table.
pub fn format_cert_sweep(rows: &[CertSweepRow]) -> String {
    use std::fmt::Write;
    let wide = rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<wide$}  {:>14}  {:>24}  verdict",
        "case", "expect", "got"
    );
    let _ = writeln!(out, "{}", "-".repeat(wide + 2 + 16 + 26 + 9));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<wide$}  {:>14}  {:>24}  {}",
            r.label,
            r.expect.label(),
            r.verdict,
            if r.ok() {
                "ok"
            } else if r.false_certified() {
                "FALSE CERTIFIED"
            } else {
                "FAIL"
            }
        );
        if let (false, Some(s)) = (r.ok(), &r.sample) {
            let _ = writeln!(out, "{:<wide$}    {}", "", s);
        }
    }
    let bad = rows.iter().filter(|r| !r.ok()).count();
    let false_cert = rows.iter().filter(|r| r.false_certified()).count();
    let _ = writeln!(
        out,
        "{} case(s), {} unexpected outcome(s), {} false certification(s)",
        rows.len(),
        bad,
        false_cert
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openuh_gwv_certifies_and_stage_bug_does_not() {
        let cfg = cert_config();
        let pos_row = tally(
            "gwv".into(),
            CertExpect::Exact,
            cert_case(
                CompilerOptions::openuh(),
                Position::GangWorkerVector,
                RedOp::Add,
                CType::Int,
                &cfg,
            ),
        );
        assert!(pos_row.ok(), "{} — {:?}", pos_row.verdict, pos_row.sample);
        let bug_row = tally(
            "stage".into(),
            CertExpect::NotCertified,
            cert_case(
                with(|o| o.bugs.skip_stage_barrier = true),
                Position::Worker,
                RedOp::Add,
                CType::Int,
                &cfg,
            ),
        );
        assert!(bug_row.ok(), "{} — {:?}", bug_row.verdict, bug_row.sample);
        assert!(!bug_row.false_certified());
    }
}
