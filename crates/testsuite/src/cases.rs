//! Testsuite case definitions: reduction positions, generated directive
//! sources, and operator/type-appropriate input data.
//!
//! The paper: "Since there are no existing benchmarks that could cover all
//! the reduction cases, we have designed and implemented a testsuite to
//! validate all possible cases of reduction including different reduction
//! data types and reduction operations." The sources below follow the
//! shapes of Fig. 4 (single level), Fig. 9 (RMP in different loops) and
//! Fig. 10 (RMP in the same loop). Except for the same-line case, every
//! test is a triple nested loop; the reduction loop has `red_n` iterations
//! and the other two have 2 and 32 (the paper's proportions, scaled).

use accparse::ast::{CType, Level, RedOp};
use gpsim::Value;

/// The reduction positions of Table 2, in presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Position {
    Gang,
    Worker,
    Vector,
    GangWorker,
    WorkerVector,
    GangWorkerVector,
    /// "same line gang worker vector": one loop carrying all three levels.
    SameLineGwv,
}

impl Position {
    /// All positions, Table 2 order.
    pub fn all() -> [Position; 7] {
        [
            Position::Gang,
            Position::Worker,
            Position::Vector,
            Position::GangWorker,
            Position::WorkerVector,
            Position::GangWorkerVector,
            Position::SameLineGwv,
        ]
    }

    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            Position::Gang => "gang",
            Position::Worker => "worker",
            Position::Vector => "vector",
            Position::GangWorker => "gang worker",
            Position::WorkerVector => "worker vector",
            Position::GangWorkerVector => "gang worker vector",
            Position::SameLineGwv => "same line gang worker vector",
        }
    }

    /// The parallelism levels the reduction spans.
    pub fn levels(&self) -> Vec<Level> {
        match self {
            Position::Gang => vec![Level::Gang],
            Position::Worker => vec![Level::Worker],
            Position::Vector => vec![Level::Vector],
            Position::GangWorker => vec![Level::Gang, Level::Worker],
            Position::WorkerVector => vec![Level::Worker, Level::Vector],
            Position::GangWorkerVector | Position::SameLineGwv => {
                vec![Level::Gang, Level::Worker, Level::Vector]
            }
        }
    }

    /// True for the single-loop RMP case.
    pub fn same_loop(&self) -> bool {
        matches!(self, Position::SameLineGwv)
    }
}

/// Spelling of a C type in generated source.
pub fn ctype_name(t: CType) -> &'static str {
    match t {
        CType::Int => "int",
        CType::Long => "long",
        CType::Float => "float",
        CType::Double => "double",
    }
}

/// The reduction-update statement for `var <op>= expr`.
pub fn update_stmt(op: RedOp, is_float: bool, var: &str, expr: &str) -> String {
    match op {
        RedOp::Add => format!("{var} += {expr};"),
        RedOp::Mul => format!("{var} *= {expr};"),
        RedOp::Max => {
            if is_float {
                format!("{var} = fmax({var}, {expr});")
            } else {
                format!("{var} = max({var}, {expr});")
            }
        }
        RedOp::Min => {
            if is_float {
                format!("{var} = fmin({var}, {expr});")
            } else {
                format!("{var} = min({var}, {expr});")
            }
        }
        RedOp::BitAnd => format!("{var} &= {expr};"),
        RedOp::BitOr => format!("{var} |= {expr};"),
        RedOp::BitXor => format!("{var} ^= {expr};"),
        RedOp::LogAnd => format!("{var} = {var} && {expr};"),
        RedOp::LogOr => format!("{var} = {var} || {expr};"),
    }
}

/// Host-side initial value of the reduction variable (chosen so that a
/// wrong initial-value fold is visible, without overflowing products).
pub fn initial_value(op: RedOp, t: CType) -> &'static str {
    let float = t.is_float();
    match op {
        RedOp::Add => {
            if float {
                "2.5"
            } else {
                "3"
            }
        }
        RedOp::Mul => "1",
        RedOp::Max => {
            if float {
                "-1.0e30"
            } else {
                "-1000000"
            }
        }
        RedOp::Min => {
            if float {
                "1.0e30"
            } else {
                "1000000"
            }
        }
        RedOp::BitAnd => "-1",
        RedOp::BitOr | RedOp::BitXor | RedOp::LogOr => "0",
        RedOp::LogAnd => "1",
    }
}

/// Is (op, type) a legal combination? (Bitwise and logical reductions are
/// integer-only in C.)
pub fn combo_legal(op: RedOp, t: CType) -> bool {
    match op {
        RedOp::BitAnd | RedOp::BitOr | RedOp::BitXor | RedOp::LogAnd | RedOp::LogOr => {
            !t.is_float()
        }
        _ => true,
    }
}

/// Deterministic input element `idx` for (op, type): values chosen so the
/// reduction stays informative (products bounded for floats, logical data
/// mostly-true/mostly-false, ...). Integer products may wrap; wrapping is
/// C semantics and matches the CPU reference exactly.
pub fn gen_value(op: RedOp, t: CType, idx: usize) -> Value {
    let h = idx.wrapping_mul(2654435761) >> 7;
    let v: f64 = match op {
        RedOp::Add => ((h % 13) as f64) - 4.0,
        RedOp::Mul => {
            if t.is_float() {
                1.0 + (((h % 7) as f64) - 3.0) * 1e-8
            } else {
                1.0 + ((h % 2) as f64)
            }
        }
        RedOp::Max | RedOp::Min => ((h % 100_000) as f64) - 50_000.0,
        RedOp::BitAnd | RedOp::BitOr | RedOp::BitXor => (h & 0xffff_ffff) as f64,
        RedOp::LogAnd => {
            if h % 50_000 == 17 {
                0.0
            } else {
                1.0
            }
        }
        RedOp::LogOr => {
            if h % 50_000 == 17 {
                1.0
            } else {
                0.0
            }
        }
    };
    match t {
        CType::Int => Value::I32(v as i32),
        CType::Long => Value::I64(v as i64),
        CType::Float => Value::F32(v as f32),
        CType::Double => Value::F64(v),
    }
}

/// Loop extents `(NK, NJ, NI)` for a position given the reduction size.
pub fn extents(pos: Position, red_n: usize) -> (usize, usize, usize) {
    match pos {
        Position::Gang | Position::GangWorker | Position::GangWorkerVector => (red_n, 2, 32),
        Position::Worker | Position::WorkerVector => (2, red_n, 32),
        Position::Vector => (2, 32, red_n),
        // One loop; NJ/NI unused.
        Position::SameLineGwv => (red_n, 1, 1),
    }
}

/// Generate the directive source for a testsuite case.
///
/// `sum` is always a host scalar so every case is verified the same way;
/// positions whose reduction is naturally per-gang (worker/vector/wv)
/// store per-iteration results into `temp`/`out`, which are also compared.
pub fn case_source(pos: Position, op: RedOp, t: CType) -> String {
    let ty = ctype_name(t);
    let float = t.is_float();
    let init = initial_value(op, t);
    match pos {
        Position::Gang => format!(
            r#"
int NK; int NJ; int NI;
{ty} sum;
{ty} input[NK][NJ][NI];
{ty} temp[NK][NJ][NI];
sum = {init};
#pragma acc parallel copyin(input) create(temp)
{{
    #pragma acc loop gang reduction({op}:sum)
    for (int k = 0; k < NK; k++) {{
        #pragma acc loop worker
        for (int j = 0; j < NJ; j++) {{
            #pragma acc loop vector
            for (int i = 0; i < NI; i++) {{
                temp[k][j][i] = input[k][j][i];
            }}
        }}
        {update}
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "sum", "temp[k][0][0]"),
        ),
        Position::Worker => format!(
            r#"
int NK; int NJ; int NI;
{ty} input[NK][NJ][NI];
{ty} temp[NK][NJ][NI];
{ty} out[NK];
#pragma acc parallel copyin(input) create(temp) copyout(out)
{{
    #pragma acc loop gang
    for (int k = 0; k < NK; k++) {{
        {ty} j_sum = {init};
        #pragma acc loop worker reduction({op}:j_sum)
        for (int j = 0; j < NJ; j++) {{
            #pragma acc loop vector
            for (int i = 0; i < NI; i++) {{
                temp[k][j][i] = input[k][j][i];
            }}
            {update}
        }}
        out[k] = j_sum;
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "j_sum", "temp[k][j][0]"),
        ),
        Position::Vector => format!(
            r#"
int NK; int NJ; int NI;
{ty} input[NK][NJ][NI];
{ty} out[NK][NJ];
#pragma acc parallel copyin(input) copyout(out)
{{
    #pragma acc loop gang
    for (int k = 0; k < NK; k++) {{
        #pragma acc loop worker
        for (int j = 0; j < NJ; j++) {{
            {ty} i_sum = {init};
            #pragma acc loop vector reduction({op}:i_sum)
            for (int i = 0; i < NI; i++) {{
                {update}
            }}
            out[k][j] = i_sum;
        }}
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "i_sum", "input[k][j][i]"),
        ),
        Position::GangWorker => format!(
            r#"
int NK; int NJ; int NI;
{ty} sum;
{ty} input[NK][NJ][NI];
{ty} temp[NK][NJ][NI];
sum = {init};
#pragma acc parallel copyin(input) create(temp)
{{
    #pragma acc loop gang reduction({op}:sum)
    for (int k = 0; k < NK; k++) {{
        #pragma acc loop worker
        for (int j = 0; j < NJ; j++) {{
            #pragma acc loop vector
            for (int i = 0; i < NI; i++) {{
                temp[k][j][i] = input[k][j][i];
            }}
            {update}
        }}
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "sum", "temp[k][j][0]"),
        ),
        Position::WorkerVector => format!(
            r#"
int NK; int NJ; int NI;
{ty} input[NK][NJ][NI];
{ty} out[NK];
#pragma acc parallel copyin(input) copyout(out)
{{
    #pragma acc loop gang
    for (int k = 0; k < NK; k++) {{
        {ty} j_sum = {init};
        #pragma acc loop worker reduction({op}:j_sum)
        for (int j = 0; j < NJ; j++) {{
            #pragma acc loop vector
            for (int i = 0; i < NI; i++) {{
                {update}
            }}
        }}
        out[k] = j_sum;
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "j_sum", "input[k][j][i]"),
        ),
        Position::GangWorkerVector => format!(
            r#"
int NK; int NJ; int NI;
{ty} sum;
{ty} input[NK][NJ][NI];
sum = {init};
#pragma acc parallel copyin(input)
{{
    #pragma acc loop gang reduction({op}:sum)
    for (int k = 0; k < NK; k++) {{
        #pragma acc loop worker
        for (int j = 0; j < NJ; j++) {{
            #pragma acc loop vector
            for (int i = 0; i < NI; i++) {{
                {update}
            }}
        }}
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "sum", "input[k][j][i]"),
        ),
        Position::SameLineGwv => format!(
            r#"
int N;
{ty} sum;
{ty} input[N];
sum = {init};
#pragma acc parallel copyin(input)
{{
    #pragma acc loop gang worker vector reduction({op}:sum)
    for (int i = 0; i < N; i++) {{
        {update}
    }}
}}
"#,
            op = op.clause_token(),
            update = update_stmt(op, float, "sum", "input[i]"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_analyze() {
        for pos in Position::all() {
            for op in [
                RedOp::Add,
                RedOp::Mul,
                RedOp::Max,
                RedOp::BitXor,
                RedOp::LogAnd,
            ] {
                for t in [CType::Int, CType::Long, CType::Float, CType::Double] {
                    if !combo_legal(op, t) {
                        continue;
                    }
                    let src = case_source(pos, op, t);
                    let r = accparse::compile(&src);
                    assert!(
                        r.is_ok(),
                        "{} {} {}: {}",
                        pos.label(),
                        op,
                        ctype_name(t),
                        r.err().map(|e| e.render(&src)).unwrap_or_default()
                    );
                }
            }
        }
    }

    #[test]
    fn detected_spans_match_position() {
        use accparse::hir::visit_loops;
        for pos in Position::all() {
            let src = case_source(pos, RedOp::Add, CType::Int);
            let prog = accparse::compile(&src).unwrap();
            let mut spans = Vec::new();
            visit_loops(&prog.regions[0].body, &mut |l| {
                for r in &l.reductions {
                    spans.push(r.span_levels.clone());
                }
            });
            assert_eq!(spans.len(), 1, "{}", pos.label());
            assert_eq!(spans[0], pos.levels(), "{}", pos.label());
        }
    }

    #[test]
    fn data_generator_properties() {
        // Mul float data stays near 1.
        for i in 0..1000 {
            let v = gen_value(RedOp::Mul, CType::Double, i).as_f64();
            assert!((v - 1.0).abs() < 1e-6);
        }
        // LogAnd data is mostly ones with at least one zero in a big range.
        let zeros = (0..200_000)
            .filter(|&i| gen_value(RedOp::LogAnd, CType::Int, i).as_i64() == 0)
            .count();
        assert!(zeros > 0);
        // Types match.
        assert!(matches!(
            gen_value(RedOp::Add, CType::Float, 3),
            Value::F32(_)
        ));
        assert!(matches!(
            gen_value(RedOp::Add, CType::Long, 3),
            Value::I64(_)
        ));
    }

    #[test]
    fn extents_follow_paper_proportions() {
        assert_eq!(extents(Position::Gang, 100), (100, 2, 32));
        assert_eq!(extents(Position::Worker, 100), (2, 100, 32));
        assert_eq!(extents(Position::Vector, 100), (2, 32, 100));
        assert_eq!(extents(Position::SameLineGwv, 100), (100, 1, 1));
    }

    #[test]
    fn combo_legality() {
        assert!(!combo_legal(RedOp::BitAnd, CType::Float));
        assert!(!combo_legal(RedOp::LogOr, CType::Double));
        assert!(combo_legal(RedOp::Max, CType::Float));
        assert!(combo_legal(RedOp::BitXor, CType::Long));
    }
}
