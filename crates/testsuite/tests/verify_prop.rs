//! Property tests for the static verifier (`gpsim::verify`) against real
//! codegen output: knob-free kernels must verify with zero error-level
//! findings over random geometries — non-power-of-two vectors included —
//! while each statically-catchable barrier knob must be flagged as a
//! racecheck error on every geometry where the defect is live.
//!
//! Two of the injected bugs are *value* bugs, not hazard bugs:
//! `skip_init_fold` (drops the initial-value fold) and
//! `clause_levels_only` (reduces over the wrong span). Both produce
//! wrong numbers through perfectly synchronized, in-bounds memory
//! traffic, so no hazard analysis — static or dynamic — can see them;
//! the correctness suite ([`acc_testsuite::run_suite`]) is what catches
//! those. A deterministic test below pins that boundary down.

use acc_testsuite::{case_source, Position};
use accparse::ast::{CType, RedOp};
use gpsim::{verify_kernel, LaunchConfig, VerifyClass, VerifyConfig, VerifyReport};
use proptest::prelude::*;
use uhacc_core::{compile_region, CompilerOptions, LaunchDims, VectorLayout, WorkerStrategy};

/// Compile one testsuite case and statically verify the main kernel and
/// every finalize kernel at the launch geometry the runtime would use.
fn verify_case(
    pos: Position,
    op: RedOp,
    t: CType,
    dims: LaunchDims,
    opts: &CompilerOptions,
) -> Vec<VerifyReport> {
    let src = case_source(pos, op, t);
    let hir = accparse::compile(&src).expect("testsuite case parses");
    let c = compile_region(&hir, 0, dims, opts).expect("testsuite case compiles");
    let vc = VerifyConfig::default();
    let launch = LaunchConfig::gwv(dims.gangs, dims.workers, dims.vector);
    let mut reports = vec![verify_kernel(&c.main, launch, &vc)];
    for f in &c.finalize {
        reports.push(verify_kernel(
            &f.kernel,
            LaunchConfig::d1(1, f.threads),
            &vc,
        ));
    }
    reports
}

fn errors(reports: &[VerifyReport]) -> u64 {
    reports.iter().map(|r| r.errors()).sum()
}

fn race_errors(reports: &[VerifyReport]) -> u64 {
    reports
        .iter()
        .flat_map(|r| &r.findings)
        .filter(|f| f.class == VerifyClass::RaceCheck && !f.warning)
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Knob-free kernels are statically hazard-free at any geometry, for
    /// every layout x worker-strategy combination of the paper's design
    /// space. Warnings (unproven accesses, bank conflicts) are allowed;
    /// error-level findings are not.
    #[test]
    fn knob_free_kernels_verify_clean(
        gangs in 1u32..6,
        workers in 1u32..5,
        vector in prop::sample::select(vec![1u32, 7, 16, 24, 33, 48, 64, 80, 100, 128]),
        transposed in any::<bool>(),
        duplicate_rows in any::<bool>(),
        pos in prop::sample::select(vec![Position::Vector, Position::Worker, Position::WorkerVector]),
    ) {
        let mut opts = CompilerOptions::openuh();
        if transposed {
            opts.vector_layout = VectorLayout::Transposed;
        }
        if duplicate_rows {
            opts.worker_strategy = WorkerStrategy::DuplicateRows;
        }
        let dims = LaunchDims { gangs, workers, vector };
        let reports = verify_case(pos, RedOp::Add, CType::Int, dims, &opts);
        prop_assert_eq!(errors(&reports), 0, "reports: {:?}",
            reports.iter().map(|r| r.to_string()).collect::<Vec<_>>());
    }

    /// A missing post-broadcast barrier is a static race wherever the
    /// broadcast crosses warps (more than one warp per block).
    #[test]
    fn skip_bcast_barrier_is_flagged(
        gangs in 1u32..6,
        workers in 1u32..5,
        vector in prop::sample::select(vec![64u32, 96, 128]),
    ) {
        let mut opts = CompilerOptions::openuh();
        opts.bugs.skip_bcast_barrier = true;
        let dims = LaunchDims { gangs, workers, vector };
        let reports = verify_case(Position::Vector, RedOp::Add, CType::Int, dims, &opts);
        prop_assert!(race_errors(&reports) > 0, "reports: {:?}",
            reports.iter().map(|r| r.to_string()).collect::<Vec<_>>());
    }

    /// A missing post-read barrier lets the next combine's staging stores
    /// overwrite the transposed slab while other warps still read it.
    #[test]
    fn skip_postread_barrier_is_flagged(
        gangs in 1u32..6,
        workers in 2u32..5,
        vector in prop::sample::select(vec![64u32, 96, 128]),
    ) {
        let mut opts = CompilerOptions::openuh();
        opts.vector_layout = VectorLayout::Transposed;
        opts.bugs.skip_postread_barrier = true;
        let dims = LaunchDims { gangs, workers, vector };
        let reports = verify_case(Position::Vector, RedOp::Add, CType::Int, dims, &opts);
        prop_assert!(race_errors(&reports) > 0, "reports: {:?}",
            reports.iter().map(|r| r.to_string()).collect::<Vec<_>>());
    }

    /// Dropping the `s > warp_size` barrier guard ("it worked on one
    /// warp") races when some row's post-barrier tree writes straddle a
    /// warp boundary. Row 0 is always lane-aligned, so at least two
    /// workers are needed, and the row stride (= vector) must both
    /// exceed a warp and misalign later rows *with a wide enough tree*:
    /// v = 80 or 112 (rounded-down-pow2 64, step-32 writes cross lane
    /// 32·k). v = 48 is a near-miss that stays safe — its 16-wide tree
    /// writes never cross a boundary — and the verifier proves that.
    #[test]
    fn warp_tail_everywhere_is_flagged(
        gangs in 1u32..6,
        workers in 2u32..5,
        vector in prop::sample::select(vec![80u32, 112]),
    ) {
        let mut opts = CompilerOptions::openuh();
        opts.bugs.warp_tail_everywhere = true;
        let dims = LaunchDims { gangs, workers, vector };
        let reports = verify_case(Position::Vector, RedOp::Add, CType::Int, dims, &opts);
        prop_assert!(race_errors(&reports) > 0, "reports: {:?}",
            reports.iter().map(|r| r.to_string()).collect::<Vec<_>>());
    }
}

/// The two *value* bugs are invisible to hazard analysis by design:
/// memory traffic is fully synchronized and in bounds, only the numbers
/// are wrong. The static verifier must stay silent — flagging them would
/// be a false positive, and detecting them is the correctness suite's
/// job, not kverify's.
#[test]
fn value_bugs_are_invisible_to_hazard_analysis() {
    let dims = LaunchDims {
        gangs: 8,
        workers: 4,
        vector: 64,
    };
    for knob in [
        |o: &mut CompilerOptions| o.bugs.skip_init_fold = true,
        |o: &mut CompilerOptions| o.bugs.clause_levels_only = true,
    ] {
        let mut opts = CompilerOptions::openuh();
        knob(&mut opts);
        let reports = verify_case(Position::Vector, RedOp::Add, CType::Int, dims, &opts);
        assert_eq!(errors(&reports), 0);
    }
}

/// The bank-conflict diagnostic (satellite of §3.3's layout discussion):
/// the row-wise slab keeps a warp's staging stores on distinct banks,
/// while the transposed slab strides them by the worker count — at 4
/// workers every 32-thread store hits only 8 of the 32 banks.
#[test]
fn transposed_layout_bank_conflicts_are_warned_row_wise_not() {
    let dims = LaunchDims {
        gangs: 8,
        workers: 4,
        vector: 64,
    };
    let row_wise = verify_case(
        Position::Vector,
        RedOp::Add,
        CType::Int,
        dims,
        &CompilerOptions::openuh(),
    );
    let mut opts = CompilerOptions::openuh();
    opts.vector_layout = VectorLayout::Transposed;
    let transposed = verify_case(Position::Vector, RedOp::Add, CType::Int, dims, &opts);
    let conflicts = |rs: &[VerifyReport]| -> u64 {
        rs.iter().map(|r| r.count(VerifyClass::BankConflict)).sum()
    };
    assert_eq!(
        conflicts(&row_wise),
        0,
        "row-wise int slab is conflict-free"
    );
    assert!(
        conflicts(&transposed) > 0,
        "transposed slab must warn about bank conflicts"
    );
    // Both remain *errors-free*: the diagnostic is warn-only.
    assert_eq!(errors(&row_wise), 0);
    assert_eq!(errors(&transposed), 0);
}
