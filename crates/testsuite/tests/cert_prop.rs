//! Property tests for the translation validator (`redcert`): the
//! verdict is a *static* fact about (source region, compiled kernel,
//! launch geometry, problem size) — it must not depend on how the
//! simulator happens to execute the launch. Host thread count, execution
//! tier, and whether the profiler or the hazard sanitizer ride along are
//! all execution-side knobs; toggling them must reproduce byte-identical
//! certification reports.

use acc_testsuite::{case_source, cert_config, Position};
use accparse::ast::{CType, RedOp};
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{Device, SanitizerLevel};
use proptest::prelude::*;
use uhacc_core::CompilerOptions;

/// Execution-side knobs that must not influence the verdict.
#[derive(Debug, Clone, Copy)]
struct ExecKnobs {
    host_threads: u32,
    exec_tier: gpsim::ExecTier,
    profiler: bool,
    sanitizer: bool,
}

/// Run one testsuite case under the validator with the given execution
/// knobs and return the canonical JSON of its reports.
fn cert_json(pos: Position, op: RedOp, t: CType, knobs: ExecKnobs) -> String {
    let cfg = cert_config();
    let src = case_source(pos, op, t);
    let data = acc_testsuite::run::case_data(pos, op, t, &cfg);
    let mut r =
        AccRunner::with_options(&src, CompilerOptions::openuh(), cfg.dims, Device::default())
            .expect("testsuite case compiles");
    r.set_host_threads(knobs.host_threads);
    r.set_exec_tier(knobs.exec_tier);
    if knobs.profiler {
        r.profile(true);
    }
    if knobs.sanitizer {
        r.sanitize(SanitizerLevel::Full);
    }
    r.certify(true);
    (|| -> Result<(), AccError> {
        acc_testsuite::run::bind_dims(pos, &cfg, |n, v| r.bind_int(n, v))?;
        r.bind_array("input", data.input.clone())?;
        if let Some(n) = data.out_len {
            r.bind_array("out", HostBuffer::new(t, n))?;
        }
        r.run()
    })()
    .expect("testsuite case runs");
    r.take_cert_reports()
        .iter()
        .map(|rep| rep.to_json())
        .collect::<Vec<_>>()
        .join(",")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Same case, any execution-side configuration → byte-identical
    /// certification reports.
    #[test]
    fn verdict_is_execution_invariant(
        pos in prop::sample::select(vec![
            Position::Vector,
            Position::WorkerVector,
            Position::GangWorkerVector,
            Position::SameLineGwv,
        ]),
        op in prop::sample::select(vec![RedOp::Add, RedOp::Mul, RedOp::Max]),
        t in prop::sample::select(vec![CType::Int, CType::Double]),
        host_threads in 0u32..4,
        tier in prop::sample::select(vec![
            gpsim::ExecTier::Auto,
            gpsim::ExecTier::Interpret,
            gpsim::ExecTier::Compiled,
        ]),
        profiler in any::<bool>(),
        sanitizer in any::<bool>(),
    ) {
        let baseline = cert_json(pos, op, t, ExecKnobs {
            host_threads: 0,
            exec_tier: gpsim::ExecTier::Auto,
            profiler: false,
            sanitizer: false,
        });
        let varied = cert_json(pos, op, t, ExecKnobs {
            host_threads,
            exec_tier: tier,
            profiler,
            sanitizer,
        });
        prop_assert_eq!(&varied, &baseline, "reports drifted under execution knobs");
        prop_assert!(!baseline.is_empty(), "case produced no report");
    }
}
