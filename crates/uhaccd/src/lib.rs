//! # uhaccd — the concurrent compile-and-run service
//!
//! A long-lived daemon exposing the uhacc compiler, static verifier,
//! linter, simulator, and profiler over a dependency-free HTTP/1.1 +
//! JSON API (`std::net` only; the workspace builds offline).
//!
//! ```console
//! $ uhaccd --port 8090 --workers 4 &
//! $ curl -s localhost:8090/health
//! $ curl -s -X POST localhost:8090/run -d '{"source":"...","n":65536}'
//! ```
//!
//! Three design rules:
//!
//! 1. **One renderer per output.** Every response body with a
//!    single-shot CLI equivalent is produced by the same
//!    `uhacc::driver` function `uhacc-cc` calls, so daemon and CLI
//!    agree byte for byte by construction.
//! 2. **Content-addressed caching.** Analyzed programs and compiled
//!    kernel artifacts are keyed on `program_key(source, options)` — a
//!    stable FNV-1a hash over the source text and the canonical
//!    serialized [`uhacc_core::CompilerOptions`] — with hit / miss /
//!    eviction / compile accounting surfaced at `/health`.
//! 3. **A shared device-worker pool.** A fixed set of worker threads
//!    drains one FIFO queue of requests; at most `--workers` simulator
//!    sessions execute concurrently and arrival order is service order.
//!    Sessions share immutable artifacts (`Arc<AnalyzedProgram>`,
//!    `Arc<CompiledRegion>`) and own all mutable state, so concurrent
//!    results are bit-identical to sequential ones.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod pool;
pub mod service;

pub use loadgen::{BenchReport, LoadgenConfig};
pub use pool::{PoolStats, WorkerPool};
pub use service::{serve, spawn, Daemon, DaemonConfig};
