//! Deterministic load generator for the daemon.
//!
//! Replays a fixed matrix of requests (sources x endpoints x problem
//! sizes) for a configurable number of rounds at a configurable client
//! concurrency, then reports throughput, latency percentiles, the
//! cold-vs-warm split, and cache hit rates as `BENCH_uhaccd.json`.
//!
//! Round 0 touches every unique `(source, options)` pair for the first
//! time — the **cold** phase (parse + codegen). Rounds 1.. replay the
//! identical requests — the **warm** phase (cache hits only). Every
//! response for the same request spec must be byte-identical across all
//! rounds and interleavings; any divergence is a determinism failure and
//! the run reports it (CI fails on it).
//!
//! After the matrix, the run scrapes `GET /metrics`, parses the
//! Prometheus exposition with `uhobs`, and fails if any expected series
//! is missing or the text is malformed — so the benchmark doubles as a
//! contract test of the daemon's observability surface. Server-side
//! queue-wait p50/p99 (from the `uhaccd_queue_wait_us` histogram) land
//! in the report next to the client-side latency percentiles.

use crate::http;
use crate::json::{obj, parse, Json};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use uhobs::metrics::{histogram_quantile, parse_exposition};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    pub addr: SocketAddr,
    /// Client-side concurrency (threads issuing requests).
    pub concurrency: usize,
    /// Full replays of the request matrix. Round 0 is cold.
    pub rounds: usize,
}

impl LoadgenConfig {
    pub fn new(addr: SocketAddr) -> Self {
        LoadgenConfig {
            addr,
            concurrency: 4,
            rounds: 3,
        }
    }
}

/// One request spec in the matrix.
#[derive(Debug, Clone)]
struct Spec {
    label: &'static str,
    path: &'static str,
    body: String,
}

const SUM_INT: &str = "int N; int s;\nint a[N];\ns = 0;\n#pragma acc parallel loop gang \
                       vector reduction(+:s) copyin(a)\nfor (int i = 0; i < N; i++) { s += \
                       a[i]; }\n";
const SUM_DOUBLE: &str = "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel \
                          loop gang worker vector reduction(+:s) copyin(a)\nfor (int i = 0; \
                          i < N; i++) { s += a[i]; }\n";
const MINMAX: &str = "int N; int lo; int hi;\nint a[N];\nlo = 2147483647;\nhi = \
                      -2147483648;\n#pragma acc parallel loop gang vector reduction(min:lo) \
                      reduction(max:hi) copyin(a)\nfor (int i = 0; i < N; i++) { lo = \
                      min(lo, a[i]); hi = max(hi, a[i]); }\n";

/// The fixed request matrix: three reduction programs, three compilers
/// spread across endpoints, two problem sizes.
fn build_matrix() -> Vec<Spec> {
    let mut specs = Vec::new();
    let esc = |s: &str| Json::Str(s.into()).to_string();
    for (name, src) in [
        ("sum_int", SUM_INT),
        ("sum_double", SUM_DOUBLE),
        ("minmax", MINMAX),
    ] {
        for compiler in ["openuh", "pgi", "caps"] {
            specs.push(Spec {
                label: name,
                path: "/compile",
                body: format!(
                    "{{\"source\":{},\"compiler\":\"{compiler}\",\"verify\":true}}",
                    esc(src)
                ),
            });
        }
        for n in [4096u64, 65536] {
            specs.push(Spec {
                label: name,
                path: "/run",
                body: format!("{{\"source\":{},\"n\":{n}}}", esc(src)),
            });
        }
        specs.push(Spec {
            label: name,
            path: "/profile",
            body: format!("{{\"source\":{},\"n\":4096}}", esc(src)),
        });
        specs.push(Spec {
            label: name,
            path: "/lint",
            body: format!("{{\"source\":{}}}", esc(src)),
        });
        specs.push(Spec {
            label: name,
            path: "/verify",
            body: format!("{{\"source\":{}}}", esc(src)),
        });
    }
    specs
}

struct Sample {
    spec: usize,
    round: usize,
    status: u16,
    millis: f64,
    body: String,
}

/// Counter/gauge series the `/metrics` scrape must expose.
const REQUIRED_SERIES: &[&str] = &[
    "uhaccd_requests_total",
    "uhaccd_program_cache_hits_total",
    "uhaccd_program_cache_misses_total",
    "uhaccd_program_parses_total",
    "uhaccd_region_cache_hits_total",
    "uhaccd_region_compiles_total",
    "uhaccd_sim_instructions_total",
    "uhaccd_pool_workers",
    "uhaccd_queue_depth",
];

/// Histograms the scrape must expose (checked via their `_count` series).
const REQUIRED_HISTOGRAMS: &[&str] = &[
    "uhaccd_request_duration_us",
    "uhaccd_queue_wait_us",
    "uhaccd_compile_duration_us",
];

/// Server-side queue-wait percentiles recovered from the scrape.
struct QueueWait {
    count: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Scrape and validate `/metrics`: the exposition must parse, every
/// expected series must be present, and the queue-wait histogram must
/// have observed at least one dequeue.
fn scrape_metrics(addr: SocketAddr) -> Result<QueueWait, String> {
    let (status, text) =
        http::get(addr, "/metrics").map_err(|e| format!("metrics scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("metrics scrape returned {status}"));
    }
    let samples = parse_exposition(&text).map_err(|e| format!("metrics unparsable: {e}"))?;
    let present = |name: &str| samples.iter().any(|s| s.name == name);
    for name in REQUIRED_SERIES {
        if !present(name) {
            return Err(format!("metrics missing series {name}"));
        }
    }
    for name in REQUIRED_HISTOGRAMS {
        let count = format!("{name}_count");
        if !present(&count) || !present(&format!("{name}_bucket")) {
            return Err(format!("metrics missing histogram {name}"));
        }
    }
    let count = samples
        .iter()
        .find(|s| s.name == "uhaccd_queue_wait_us_count")
        .map(|s| s.value)
        .unwrap_or(0.0);
    if count <= 0.0 {
        return Err("uhaccd_queue_wait_us observed no dequeues".into());
    }
    let q = |p: f64| {
        histogram_quantile(&samples, "uhaccd_queue_wait_us", &[], p).unwrap_or(0.0) / 1000.0
    };
    Ok(QueueWait {
        count,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
    })
}

/// The benchmark report (also serialized as `BENCH_uhaccd.json`).
#[derive(Debug)]
pub struct BenchReport {
    pub requests: usize,
    pub failures: usize,
    pub determinism_mismatches: usize,
    pub throughput_rps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub cold_mean_ms: f64,
    pub warm_mean_ms: f64,
    pub warm_speedup: f64,
    /// Server-side queue-wait percentiles from the `/metrics` scrape.
    pub queue_wait_p50_ms: f64,
    pub queue_wait_p99_ms: f64,
    pub json: String,
}

impl BenchReport {
    pub fn ok(&self) -> bool {
        self.failures == 0 && self.determinism_mismatches == 0
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn ms3(v: f64) -> Json {
    Json::Num((v * 1000.0).round() / 1000.0)
}

/// Drive the full matrix against a running daemon and build the report.
pub fn run(cfg: &LoadgenConfig) -> Result<BenchReport, String> {
    let specs = build_matrix();
    let health_before = fetch_health(cfg.addr)?;

    // Work queue: (spec, round), strictly round-by-round so round 0 is
    // genuinely cold, but concurrent *within* each round.
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::new());
    let started = Instant::now();
    for round in 0..cfg.rounds.max(1) {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..cfg.concurrency.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        return;
                    }
                    let spec = &specs[i];
                    let t0 = Instant::now();
                    let (status, body) = match http::post(cfg.addr, spec.path, &spec.body) {
                        Ok(r) => r,
                        Err(e) => (0, format!("transport error: {e}")),
                    };
                    let millis = t0.elapsed().as_secs_f64() * 1000.0;
                    samples.lock().unwrap().push(Sample {
                        spec: i,
                        round,
                        status,
                        millis,
                        body,
                    });
                });
            }
        });
    }
    let wall = started.elapsed().as_secs_f64();
    let samples = samples.into_inner().unwrap();
    let health_after = fetch_health(cfg.addr)?;
    let queue_wait = scrape_metrics(cfg.addr)?;

    // Determinism: all responses for a spec must be byte-identical.
    // Cache-visibility fields legitimately differ between cold and warm
    // (`"program_hit":false` vs `true`), so compare with those masked.
    let mut canonical: Vec<Option<String>> = vec![None; specs.len()];
    let mut determinism_mismatches = 0;
    let mut failures = 0;
    for s in &samples {
        let spec = &specs[s.spec];
        if !(200..300).contains(&s.status) {
            failures += 1;
            eprintln!(
                "loadgen: {} {} ({}) round {} -> status {}: {}",
                spec.path,
                spec.label,
                s.spec,
                s.round,
                s.status,
                s.body.lines().next().unwrap_or("")
            );
            continue;
        }
        let masked = mask_cache_fields(&s.body);
        match &canonical[s.spec] {
            None => canonical[s.spec] = Some(masked),
            Some(c) if *c == masked => {}
            Some(_) => {
                determinism_mismatches += 1;
                eprintln!(
                    "loadgen: DETERMINISM MISMATCH at {} {} round {}",
                    spec.path, spec.label, s.round
                );
            }
        }
    }

    let mut all: Vec<f64> = samples.iter().map(|s| s.millis).collect();
    all.sort_by(f64::total_cmp);
    let cold: Vec<f64> = samples
        .iter()
        .filter(|s| s.round == 0)
        .map(|s| s.millis)
        .collect();
    let warm: Vec<f64> = samples
        .iter()
        .filter(|s| s.round > 0)
        .map(|s| s.millis)
        .collect();
    let mut cold_sorted = cold.clone();
    cold_sorted.sort_by(f64::total_cmp);
    let mut warm_sorted = warm.clone();
    warm_sorted.sort_by(f64::total_cmp);

    let cold_mean = mean(&cold);
    let warm_mean = mean(&warm);
    let warm_speedup = if warm_mean > 0.0 {
        cold_mean / warm_mean
    } else {
        0.0
    };
    let throughput = if wall > 0.0 {
        samples.len() as f64 / wall
    } else {
        0.0
    };
    let p50 = percentile(&all, 0.50);
    let p99 = percentile(&all, 0.99);

    // Per-endpoint cold/warm split. Overall warm speedup is diluted by
    // the simulation-dominated endpoints (execution is never cached —
    // only parse and codegen are), so the per-endpoint numbers are the
    // ones that show the cache: /compile warm skips everything.
    let mut per_endpoint = Vec::new();
    for ep in ["/compile", "/lint", "/verify", "/run", "/profile"] {
        let of = |warm: bool| -> Vec<f64> {
            samples
                .iter()
                .filter(|s| specs[s.spec].path == ep && (s.round > 0) == warm)
                .map(|s| s.millis)
                .collect()
        };
        let (c, w) = (of(false), of(true));
        let (cm, wm) = (mean(&c), mean(&w));
        per_endpoint.push((
            ep,
            obj(vec![
                ("cold_mean_ms", ms3(cm)),
                ("warm_mean_ms", ms3(wm)),
                ("warm_speedup", ms3(if wm > 0.0 { cm / wm } else { 0.0 })),
            ]),
        ));
    }

    let cache_delta = |section: &str, field: &str| -> f64 {
        let read = |h: &Json| {
            h.get(section)
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        read(&health_after) - read(&health_before)
    };
    let prog_hits = cache_delta("programs", "hits");
    let prog_misses = cache_delta("programs", "misses");
    let region_hits = cache_delta("regions", "hits");
    let region_compiles = cache_delta("regions", "compiles");
    let hit_rate = |h: f64, m: f64| if h + m > 0.0 { h / (h + m) } else { 0.0 };

    let json = obj(vec![
        (
            "config",
            obj(vec![
                ("unique_specs", Json::Num(specs.len() as f64)),
                ("rounds", Json::Num(cfg.rounds.max(1) as f64)),
                ("concurrency", Json::Num(cfg.concurrency.max(1) as f64)),
                (
                    "daemon_workers",
                    health_after.get("workers").cloned().unwrap_or(Json::Null),
                ),
            ]),
        ),
        ("requests", Json::Num(samples.len() as f64)),
        ("failures", Json::Num(failures as f64)),
        (
            "determinism",
            if determinism_mismatches == 0 {
                Json::Str("ok".into())
            } else {
                Json::Str(format!("{determinism_mismatches} mismatches"))
            },
        ),
        ("throughput_rps", ms3(throughput)),
        (
            "latency_ms",
            obj(vec![
                ("p50", ms3(p50)),
                ("p99", ms3(p99)),
                ("mean", ms3(mean(&all))),
            ]),
        ),
        (
            "cold",
            obj(vec![
                ("count", Json::Num(cold.len() as f64)),
                ("mean_ms", ms3(cold_mean)),
                ("p50_ms", ms3(percentile(&cold_sorted, 0.5))),
            ]),
        ),
        (
            "warm",
            obj(vec![
                ("count", Json::Num(warm.len() as f64)),
                ("mean_ms", ms3(warm_mean)),
                ("p50_ms", ms3(percentile(&warm_sorted, 0.5))),
            ]),
        ),
        ("warm_speedup", ms3(warm_speedup)),
        (
            "queue_wait",
            obj(vec![
                ("count", Json::Num(queue_wait.count)),
                ("p50_ms", ms3(queue_wait.p50_ms)),
                ("p99_ms", ms3(queue_wait.p99_ms)),
            ]),
        ),
        (
            "endpoints",
            Json::Obj(
                per_endpoint
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        (
            "cache",
            obj(vec![
                ("program_hits", Json::Num(prog_hits)),
                ("program_misses", Json::Num(prog_misses)),
                ("program_hit_rate", ms3(hit_rate(prog_hits, prog_misses))),
                ("region_hits", Json::Num(region_hits)),
                ("region_compiles", Json::Num(region_compiles)),
                (
                    "region_hit_rate",
                    ms3(hit_rate(region_hits, region_compiles)),
                ),
            ]),
        ),
    ])
    .to_string();

    Ok(BenchReport {
        requests: samples.len(),
        failures,
        determinism_mismatches,
        throughput_rps: throughput,
        p50_ms: p50,
        p99_ms: p99,
        cold_mean_ms: cold_mean,
        warm_mean_ms: warm_mean,
        warm_speedup,
        queue_wait_p50_ms: queue_wait.p50_ms,
        queue_wait_p99_ms: queue_wait.p99_ms,
        json,
    })
}

fn fetch_health(addr: SocketAddr) -> Result<Json, String> {
    let (status, body) =
        http::get(addr, "/health").map_err(|e| format!("health probe failed: {e}"))?;
    if status != 200 {
        return Err(format!("health probe returned {status}"));
    }
    parse(&body).map_err(|e| format!("health body unparsable: {e}"))
}

/// Mask the cache-visibility fields that legitimately differ between a
/// cold and a warm response to the same request.
fn mask_cache_fields(body: &str) -> String {
    match parse(body) {
        Ok(Json::Obj(fields)) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k == "cache" {
                        (k, Json::Null)
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        )
        .to_string(),
        _ => body.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_nonempty_and_deterministic() {
        let a = build_matrix();
        let b = build_matrix();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.body, y.body);
        }
        // Every endpoint is exercised.
        for ep in ["/compile", "/lint", "/verify", "/run", "/profile"] {
            assert!(a.iter().any(|s| s.path == ep), "missing {ep}");
        }
    }

    #[test]
    fn percentile_and_mask() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        let masked = mask_cache_fields("{\"results\":{\"a\":1},\"cache\":{\"hit\":true}}");
        assert_eq!(masked, "{\"results\":{\"a\":1},\"cache\":null}");
    }
}
