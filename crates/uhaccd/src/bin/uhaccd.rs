//! `uhaccd` — serve the compile-and-run API, or drive it as a client.
//!
//! ```console
//! $ uhaccd --port 8090 --workers 4          # serve (foreground)
//! $ uhaccd --loadgen --addr 127.0.0.1:8090  # benchmark a running daemon
//! $ uhaccd --loadgen --spawn                # spawn one and benchmark it
//! ```

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use uhacc_core::flags::{host_threads_from_env, parse_count};
use uhaccd::{loadgen, service, DaemonConfig, LoadgenConfig, WorkerPool};

fn usage() -> ! {
    eprintln!(
        "usage: uhaccd [--port P] [options]           serve the API (foreground)\n\
         \n\
         serve options:\n\
           --port P            TCP port (0 = ephemeral; default 8090)\n\
           --host H            bind address (default 127.0.0.1)\n\
           --workers N         device-worker threads = max concurrent\n\
                               sessions (default 4)\n\
           --cache-cap N       program-cache capacity (default 64);\n\
                               region-artifact cache gets 4x this\n\
           --slow-ms N         log a structured JSON line on stderr for\n\
                               any request slower than N ms\n\
           --virtual-clock     deterministic observability clock (also\n\
                               honoured via UHOBS_VIRTUAL_CLOCK=1)\n\
         \n\
         client modes:\n\
           --loadgen           run the deterministic benchmark matrix\n\
             --addr HOST:PORT  target daemon (omit with --spawn)\n\
             --spawn           spawn an in-process daemon on an ephemeral\n\
                               port and benchmark that\n\
             --rounds N        matrix replays; round 0 is cold (default 3)\n\
             --concurrency N   client threads (default 4)\n\
             --out FILE        write BENCH_uhaccd.json here (default\n\
                               stdout only)\n\
             --trace-out FILE  fetch the daemon's unified Chrome trace\n\
                               after the run and write it here\n\
           -h, --help          this message"
    );
    std::process::exit(2);
}

fn flag_err(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

struct Args {
    host: String,
    port: u16,
    workers: usize,
    cache_cap: usize,
    loadgen: bool,
    spawn: bool,
    addr: Option<String>,
    rounds: usize,
    concurrency: usize,
    out: Option<String>,
    trace_out: Option<String>,
    virtual_clock: bool,
    slow_ms: Option<u64>,
}

fn parse_args() -> Args {
    if let Err(e) = host_threads_from_env() {
        flag_err(e);
    }
    let mut args = Args {
        host: "127.0.0.1".into(),
        port: 8090,
        workers: 4,
        cache_cap: 64,
        loadgen: false,
        spawn: false,
        addr: None,
        rounds: 3,
        concurrency: 4,
        out: None,
        trace_out: None,
        virtual_clock: uhobs::clock::env_wants_virtual(),
        slow_ms: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let need_val = |argv: &[String], i: usize, flag: &str| -> String {
        argv.get(i)
            .cloned()
            .unwrap_or_else(|| flag_err(format!("{flag} requires a value")))
    };
    let count =
        |flag: &str, v: &str| -> u64 { parse_count(flag, v).unwrap_or_else(|e| flag_err(e)) };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => usage(),
            "--port" => {
                i += 1;
                let v = need_val(&argv, i, "--port");
                let p = count("--port", &v);
                if p > u16::MAX as u64 {
                    flag_err(format!("invalid value for --port: {p} exceeds 65535"));
                }
                args.port = p as u16;
            }
            "--host" => {
                i += 1;
                args.host = need_val(&argv, i, "--host");
            }
            "--workers" => {
                i += 1;
                let v = need_val(&argv, i, "--workers");
                args.workers = count("--workers", &v).max(1) as usize;
            }
            "--cache-cap" => {
                i += 1;
                let v = need_val(&argv, i, "--cache-cap");
                args.cache_cap = count("--cache-cap", &v).max(1) as usize;
            }
            "--loadgen" => args.loadgen = true,
            "--spawn" => args.spawn = true,
            "--addr" => {
                i += 1;
                args.addr = Some(need_val(&argv, i, "--addr"));
            }
            "--rounds" => {
                i += 1;
                let v = need_val(&argv, i, "--rounds");
                args.rounds = count("--rounds", &v).max(1) as usize;
            }
            "--concurrency" => {
                i += 1;
                let v = need_val(&argv, i, "--concurrency");
                args.concurrency = count("--concurrency", &v).max(1) as usize;
            }
            "--out" => {
                i += 1;
                args.out = Some(need_val(&argv, i, "--out"));
            }
            "--trace-out" => {
                i += 1;
                args.trace_out = Some(need_val(&argv, i, "--trace-out"));
            }
            "--virtual-clock" => args.virtual_clock = true,
            "--slow-ms" => {
                i += 1;
                let v = need_val(&argv, i, "--slow-ms");
                args.slow_ms = Some(count("--slow-ms", &v));
            }
            _ => usage(),
        }
        i += 1;
    }
    if args.spawn && !args.loadgen {
        flag_err("--spawn only makes sense with --loadgen".into());
    }
    if args.loadgen && !args.spawn && args.addr.is_none() {
        flag_err("--loadgen needs --addr HOST:PORT (or --spawn)".into());
    }
    args
}

fn daemon_config(args: &Args) -> DaemonConfig {
    DaemonConfig {
        workers: args.workers,
        program_cache_cap: args.cache_cap,
        region_cache_cap: args.cache_cap * 4,
        virtual_clock: args.virtual_clock,
        slow_ms: args.slow_ms,
    }
}

fn main() {
    let args = parse_args();

    if args.loadgen {
        let addr: SocketAddr = if args.spawn {
            let (addr, _daemon) = service::spawn(daemon_config(&args), "127.0.0.1:0")
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot spawn daemon: {e}");
                    std::process::exit(1);
                });
            eprintln!("uhaccd: spawned in-process daemon on {addr}");
            addr
        } else {
            let spec = args.addr.as_deref().unwrap();
            spec.parse().unwrap_or_else(|_| {
                flag_err(format!(
                    "invalid value for --addr: expected HOST:PORT, got `{spec}`"
                ))
            })
        };
        let mut cfg = LoadgenConfig::new(addr);
        cfg.rounds = args.rounds;
        cfg.concurrency = args.concurrency;
        eprintln!(
            "uhaccd: loadgen against {addr} ({} rounds, {} client threads) ...",
            cfg.rounds, cfg.concurrency
        );
        let report = loadgen::run(&cfg).unwrap_or_else(|e| {
            eprintln!("error: loadgen failed: {e}");
            std::process::exit(1);
        });
        println!("{}", report.json);
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, format!("{}\n", report.json)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("uhaccd: wrote {path}");
        }
        if let Some(path) = &args.trace_out {
            match uhaccd::http::get(addr, "/trace") {
                Ok((200, trace)) => {
                    if let Err(e) = std::fs::write(path, trace) {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("uhaccd: wrote {path}");
                }
                Ok((status, body)) => {
                    eprintln!("error: GET /trace returned {status}: {body}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("error: cannot fetch /trace: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "uhaccd: {} requests, {} failures, determinism {}, {:.1} req/s, p50 {:.2} ms, \
             p99 {:.2} ms, warm speedup {:.2}x, queue wait p50 {:.2} ms / p99 {:.2} ms",
            report.requests,
            report.failures,
            if report.determinism_mismatches == 0 {
                "ok".to_string()
            } else {
                format!("{} MISMATCHES", report.determinism_mismatches)
            },
            report.throughput_rps,
            report.p50_ms,
            report.p99_ms,
            report.warm_speedup,
            report.queue_wait_p50_ms,
            report.queue_wait_p99_ms
        );
        std::process::exit(if report.ok() { 0 } else { 1 });
    }

    // Serve mode (foreground).
    let bind = format!("{}:{}", args.host, args.port);
    let listener = TcpListener::bind(&bind).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {bind}: {e}");
        std::process::exit(1);
    });
    let local = listener.local_addr().expect("local addr");
    let cfg = daemon_config(&args);
    eprintln!(
        "uhaccd: serving on {local} ({} workers, program cache {}, region cache {})",
        cfg.workers, cfg.program_cache_cap, cfg.region_cache_cap
    );
    let daemon = uhaccd::Daemon::new(cfg.clone());
    let pool = Arc::new(WorkerPool::with_obs(
        cfg.workers,
        Arc::clone(&daemon.obs().clock),
        Some(daemon.obs().queue_wait.clone()),
    ));
    service::serve(daemon, listener, pool);
}
