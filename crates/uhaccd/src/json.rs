//! Dependency-free JSON: a small recursive-descent parser and a
//! deterministic serializer.
//!
//! The workspace builds offline (no registry crates), so the daemon
//! carries its own JSON layer. Two deliberate properties:
//!
//! - **Object key order is preserved**, both parsing and serializing, so
//!   responses are byte-stable.
//! - [`Json::Raw`] splices a pre-serialized document verbatim. The
//!   drivers in `uhacc::driver` already render stable JSON bodies
//!   (results, profiles, diagnostics); re-parsing and re-printing them
//!   would risk byte drift, so the service embeds them untouched.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse as f64 (JSON has one number type); integral
    /// values serialize without a decimal point.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order preserved.
    Obj(Vec<(String, Json)>),
    /// A pre-serialized JSON document, spliced verbatim on output.
    /// Never produced by the parser.
    Raw(String),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render this value's source-level literal form — what a user wrote
    /// for a scalar field. Used to route numeric request fields through
    /// the same strict validation as CLI flags (`uhacc_core::flags`).
    pub fn literal(&self) -> String {
        match self {
            Json::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(doc) => out.push_str(doc),
        }
    }
}

/// Serialization (deterministic; preserves object key order). `Display`
/// also powers `.to_string()`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: build an object literal.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parse a complete JSON document. Trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs: accept and combine; lone
                            // surrogates map to the replacement char.
                            if (0xD800..0xDC00).contains(&code) {
                                let rest = &self.bytes[self.pos + 5..];
                                if rest.starts_with(b"\\u") && rest.len() >= 6 {
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(&rest[2..6])
                                            .map_err(|_| "bad \\u escape")?,
                                        16,
                                    )
                                    .map_err(|_| "bad \\u escape")?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                        self.pos += 10;
                                        self.pos += 1; // the closing step below
                                        continue;
                                    }
                                }
                                out.push('\u{FFFD}');
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                            self.pos += 4;
                        }
                        _ => return Err("invalid escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_string(), doc);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.5));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""Aé \" \\ €""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé \" \\ €"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = obj(vec![("results", Json::Raw("{\"s\":500.0}".into()))]);
        assert_eq!(v.to_string(), "{\"results\":{\"s\":500.0}}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1}x").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn integral_numbers_have_no_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
    }

    #[test]
    fn literal_matches_source_form() {
        assert_eq!(parse("12").unwrap().literal(), "12");
        assert_eq!(parse("-3.5").unwrap().literal(), "-3.5");
        assert_eq!(parse("\"abc\"").unwrap().literal(), "abc");
        assert_eq!(parse("true").unwrap().literal(), "true");
    }
}
