//! The shared device-worker pool: a fixed set of OS threads draining one
//! FIFO queue.
//!
//! Every accepted connection becomes one job; a job parses the request,
//! runs the (possibly device-executing) handler, and writes the
//! response. Bounded parallelism falls out of the worker count — at most
//! `workers` simulator sessions execute at once — and fairness falls out
//! of the queue discipline: jobs run in strict arrival order
//! (`pop_front`), so a burst of heavy `/profile` requests cannot
//! starve a later `/health`-probe beyond the queue it stands in.
//!
//! Queue *time* is first-class: every job is stamped at submit and at
//! dequeue (via a shared [`uhobs::Clock`], so the measurements are
//! deterministic under the virtual clock), the wait feeds an optional
//! histogram plus aggregate counters in [`PoolStats`], and the job
//! itself receives its [`QueueSlip`] so the service can turn the wait
//! into a per-request trace span.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce(QueueSlip) + Send + 'static>;

/// When a job entered and left the queue (microseconds on the pool's
/// clock). Handed to the job itself so the wait can become a trace span.
#[derive(Debug, Clone, Copy)]
pub struct QueueSlip {
    pub submit_us: u64,
    pub dequeue_us: u64,
}

impl QueueSlip {
    /// Time spent queued (submit → dequeue).
    pub fn wait_us(&self) -> u64 {
        self.dequeue_us.saturating_sub(self.submit_us)
    }
}

struct State {
    queue: VecDeque<(u64, Job)>,
    shutdown: bool,
    /// Jobs fully executed.
    executed: u64,
    /// Jobs currently running on a worker.
    busy: u32,
    /// High-water mark of queue depth (observed at submit).
    peak_depth: usize,
    /// Aggregate queued-duration (submit → dequeue) accounting.
    wait_count: u64,
    wait_total_us: u64,
    wait_max_us: u64,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    clock: Arc<uhobs::Clock>,
    wait_hist: Option<uhobs::Histogram>,
}

/// Counters snapshot for `/health` and `/metrics`.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    pub workers: u32,
    pub executed: u64,
    pub busy: u32,
    pub queued: usize,
    pub peak_depth: usize,
    /// Dequeued jobs whose queued-duration was measured.
    pub wait_count: u64,
    /// Sum of queued-durations in microseconds.
    pub wait_total_us: u64,
    /// Worst queued-duration in microseconds.
    pub wait_max_us: u64,
}

impl PoolStats {
    /// Mean queued-duration in microseconds (0 when nothing dequeued).
    pub fn wait_mean_us(&self) -> u64 {
        self.wait_total_us.checked_div(self.wait_count).unwrap_or(0)
    }
}

pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: u32,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1) with a private
    /// monotonic clock and no histogram.
    pub fn new(workers: usize) -> Self {
        Self::with_obs(workers, Arc::new(uhobs::Clock::monotonic()), None)
    }

    /// Spawn `workers` threads stamping queue times on `clock` and
    /// feeding each job's queued-duration into `wait_hist`.
    pub fn with_obs(
        workers: usize,
        clock: Arc<uhobs::Clock>,
        wait_hist: Option<uhobs::Histogram>,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                executed: 0,
                busy: 0,
                peak_depth: 0,
                wait_count: 0,
                wait_total_us: 0,
                wait_max_us: 0,
            }),
            cv: Condvar::new(),
            clock,
            wait_hist,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("uhaccd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: workers as u32,
            handles,
        }
    }

    /// Enqueue a job (FIFO). Panics if the pool is shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.submit_timed(move |_slip| job());
    }

    /// Enqueue a job that receives its own [`QueueSlip`] (FIFO).
    /// Panics if the pool is shut down.
    pub fn submit_timed(&self, job: impl FnOnce(QueueSlip) + Send + 'static) {
        let submit_us = self.shared.clock.now_us();
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.shutdown, "submit after shutdown");
        st.queue.push_back((submit_us, Box::new(job)));
        let depth = st.queue.len();
        st.peak_depth = st.peak_depth.max(depth);
        drop(st);
        self.shared.cv.notify_one();
    }

    pub fn stats(&self) -> PoolStats {
        let st = self.shared.state.lock().unwrap();
        PoolStats {
            workers: self.workers,
            executed: st.executed,
            busy: st.busy,
            queued: st.queue.len(),
            peak_depth: st.peak_depth,
            wait_count: st.wait_count,
            wait_total_us: st.wait_total_us,
            wait_max_us: st.wait_max_us,
        }
    }

    pub fn workers(&self) -> u32 {
        self.workers
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (slip, job) = {
            let mut st = shared.state.lock().unwrap();
            let (submit_us, job) = loop {
                if let Some(entry) = st.queue.pop_front() {
                    st.busy += 1;
                    break entry;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).unwrap();
            };
            // Stamp the dequeue while still holding the lock so the
            // aggregate counters and the slip agree.
            let slip = QueueSlip {
                submit_us,
                dequeue_us: shared.clock.now_us(),
            };
            let wait = slip.wait_us();
            st.wait_count += 1;
            st.wait_total_us += wait;
            st.wait_max_us = st.wait_max_us.max(wait);
            (slip, job)
        };
        if let Some(h) = &shared.wait_hist {
            h.observe(slip.wait_us());
        }
        job(slip);
        let mut st = shared.state.lock().unwrap();
        st.busy -= 1;
        st.executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new(4);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn single_worker_is_fifo() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let order = Arc::clone(&order);
            pool.submit(move || order.lock().unwrap().push(i));
        }
        drop(pool);
        let order = order.lock().unwrap();
        assert_eq!(*order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_executions() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.submit(|| {});
        }
        // Drain by polling; drop() would also work but we want a live
        // stats read.
        for _ in 0..500 {
            if pool.stats().executed == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = pool.stats();
        assert_eq!(s.executed, 10);
        assert_eq!(s.workers, 2);
        assert!(s.peak_depth >= 1);
        assert_eq!(s.wait_count, 10);
        assert!(s.wait_max_us >= s.wait_mean_us());
    }

    #[test]
    fn queue_wait_is_measured_on_the_shared_clock() {
        // Virtual clock: submit stamps tick 1, dequeue tick 2, etc. Every
        // job's slip shows a positive deterministic wait.
        let clock = Arc::new(uhobs::Clock::virtual_clock(100));
        let reg = uhobs::Registry::new();
        let hist = reg.histogram("wait_us", "queue wait", &[], &[1000]);
        let pool = WorkerPool::with_obs(1, clock, Some(hist.clone()));
        let waits = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..5 {
            let waits = Arc::clone(&waits);
            pool.submit_timed(move |slip| {
                assert!(slip.dequeue_us > slip.submit_us);
                waits.lock().unwrap().push(slip.wait_us());
            });
        }
        drop(pool);
        assert_eq!(waits.lock().unwrap().len(), 5);
        assert_eq!(hist.count(), 5);
        let s = WorkerPool::new(1).stats();
        assert_eq!(s.wait_count, 0);
        assert_eq!(s.wait_mean_us(), 0);
    }
}
