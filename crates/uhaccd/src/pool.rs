//! The shared device-worker pool: a fixed set of OS threads draining one
//! FIFO queue.
//!
//! Every accepted connection becomes one job; a job parses the request,
//! runs the (possibly device-executing) handler, and writes the
//! response. Bounded parallelism falls out of the worker count — at most
//! `workers` simulator sessions execute at once — and fairness falls out
//! of the queue discipline: jobs run in strict arrival order
//! (`pop_front`), so a burst of heavy `/profile` requests cannot
//! starve a later `/health`-probe beyond the queue it stands in.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    /// Jobs fully executed.
    executed: u64,
    /// Jobs currently running on a worker.
    busy: u32,
    /// High-water mark of queue depth (observed at submit).
    peak_depth: usize,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// Counters snapshot for `/health`.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    pub workers: u32,
    pub executed: u64,
    pub busy: u32,
    pub queued: usize,
    pub peak_depth: usize,
}

pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: u32,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                executed: 0,
                busy: 0,
                peak_depth: 0,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("uhaccd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: workers as u32,
            handles,
        }
    }

    /// Enqueue a job (FIFO). Panics if the pool is shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.shutdown, "submit after shutdown");
        st.queue.push_back(Box::new(job));
        let depth = st.queue.len();
        st.peak_depth = st.peak_depth.max(depth);
        drop(st);
        self.shared.cv.notify_one();
    }

    pub fn stats(&self) -> PoolStats {
        let st = self.shared.state.lock().unwrap();
        PoolStats {
            workers: self.workers,
            executed: st.executed,
            busy: st.busy,
            queued: st.queue.len(),
            peak_depth: st.peak_depth,
        }
    }

    pub fn workers(&self) -> u32 {
        self.workers
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.busy += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        job();
        let mut st = shared.state.lock().unwrap();
        st.busy -= 1;
        st.executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = WorkerPool::new(4);
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn single_worker_is_fifo() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let order = Arc::clone(&order);
            pool.submit(move || order.lock().unwrap().push(i));
        }
        drop(pool);
        let order = order.lock().unwrap();
        assert_eq!(*order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_executions() {
        let pool = WorkerPool::new(2);
        for _ in 0..10 {
            pool.submit(|| {});
        }
        // Drain by polling; drop() would also work but we want a live
        // stats read.
        for _ in 0..500 {
            if pool.stats().executed == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = pool.stats();
        assert_eq!(s.executed, 10);
        assert_eq!(s.workers, 2);
        assert!(s.peak_depth >= 1);
    }
}
