//! Minimal HTTP/1.1 over `std::net::TcpStream` — just enough protocol
//! for a JSON service and its load generator: request line, headers,
//! `Content-Length` bodies, `Connection: close` responses.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Reject unreasonable requests before allocating for them.
const MAX_HEADER_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Read one request from the stream. `Ok(None)` means the peer closed
/// before sending anything (a clean no-op).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(bad("malformed request line"));
    }

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &[u8]) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One-shot client request (used by the load generator, the client CLI
/// modes, and the end-to-end tests). Returns `(status, body)`.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: uhaccd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| bad("non-UTF-8 response body"))
}

/// POST JSON to `path`.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// GET `path`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}
