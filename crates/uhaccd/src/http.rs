//! Minimal HTTP/1.1 over `std::net::TcpStream` — just enough protocol
//! for a JSON service and its load generator: request line, headers,
//! `Content-Length` bodies, `Connection: close` responses.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Reject unreasonable requests before allocating for them.
const MAX_HEADER_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A protocol-level request rejection carrying the HTTP status it
/// should be answered with, so the service can send a proper diagnostic
/// response (`431` for oversized headers, `413` for oversized bodies,
/// `400` for malformed framing) instead of dropping the connection with
/// a generic io error.
#[derive(Debug, PartialEq, Eq)]
pub struct HttpError {
    pub status: u16,
    pub msg: String,
}

impl HttpError {
    fn new(status: u16, msg: &str) -> Self {
        HttpError {
            status,
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            status_text(self.status),
            self.msg
        )
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::new(400, &format!("io error reading request: {e}"))
    }
}

/// Read one request from the stream. `Ok(None)` means the peer closed
/// before sending anything (a clean no-op); `Err` carries the status the
/// rejection should be served with.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, HttpError> {
    read_request_from(&mut BufReader::new(stream))
}

/// [`read_request`] over any buffered reader (unit-testable without a
/// socket).
pub fn read_request_from(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::new(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(HttpError::new(400, "connection closed mid-headers"));
        }
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(431, "headers too large"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::new(400, &format!("invalid Content-Length: {}", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new(413, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` JSON response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &[u8]) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", body)
}

/// Write a complete `Connection: close` response with an explicit
/// content type (`/metrics` serves Prometheus text, not JSON).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One-shot client request (used by the load generator, the client CLI
/// modes, and the end-to-end tests). Returns `(status, body)`.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: uhaccd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            // Responses are `Connection: close`: wait for the server to
            // actually close before returning, so the server has fully
            // finished the request (spans recorded, counters updated)
            // once the client moves on. Sequential clients therefore
            // observe a deterministic server-side event order — the
            // virtual-clock goldens depend on this.
            let mut drain = Vec::new();
            let _ = reader.read_to_end(&mut drain);
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| bad("non-UTF-8 response body"))
}

/// POST JSON to `path`.
pub fn post(addr: impl ToSocketAddrs, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// GET `path`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request_from(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_well_formed_request() {
        let r = read("POST /run HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.body, b"{}");
    }

    #[test]
    fn empty_stream_is_a_clean_noop() {
        assert!(read("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_400() {
        let e = read("garbage\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.msg.contains("malformed request line"), "{e}");
    }

    #[test]
    fn invalid_content_length_is_400() {
        let e = read("POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.msg.contains("invalid Content-Length: banana"), "{e}");
    }

    #[test]
    fn oversized_headers_are_431() {
        let mut raw = String::from("GET /health HTTP/1.1\r\n");
        while raw.len() <= MAX_HEADER_BYTES {
            raw.push_str(&format!("X-Pad: {}\r\n", "y".repeat(1000)));
        }
        raw.push_str("\r\n");
        let e = read(&raw).unwrap_err();
        assert_eq!(e.status, 431);
        assert!(e.msg.contains("headers too large"), "{e}");
    }

    #[test]
    fn oversized_body_is_413() {
        let e = read(&format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ))
        .unwrap_err();
        assert_eq!(e.status, 413);
        assert!(e.msg.contains("body too large"), "{e}");
    }

    #[test]
    fn truncated_headers_are_400() {
        let e = read("POST /run HTTP/1.1\r\nContent-Length: 2\r\n").unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.msg.contains("mid-headers"), "{e}");
    }
}
