//! The daemon: request decoding, the content-addressed program cache,
//! and the endpoint handlers.
//!
//! Every response body that has a single-shot CLI equivalent is built by
//! the same `uhacc::driver` function the CLI calls, so the two surfaces
//! agree byte for byte by construction:
//!
//! | endpoint   | CLI equivalent                         |
//! |------------|----------------------------------------|
//! | `/compile` | `uhacc-cc <src> [--emit ...]` (text)   |
//! | `/lint`    | `uhacc-cc <src> --lint --json`         |
//! | `/analyze` | `uhacc-cc <src> --fusion-plan=json`    |
//! | `/verify`  | `uhacc-cc <src> --verify` (section)    |
//! | `/run`     | `uhacc-cc <src> --run`                 |
//! | `/profile` | `uhacc-cc <src> --profile=json`        |
//! | `/certify` | `uhacc-cc <src> --certify=json`        |
//!
//! Caching is two-layer and content-addressed on
//! `program_key(source, options)` (stable FNV-1a, see
//! `uhacc_core::stablehash`): analyzed programs (`Arc<AnalyzedProgram>`,
//! daemon-side LRU) and compiled region artifacts
//! (`accrt::RegionCache`, shared by every session via
//! `AccRunner::set_region_cache`). A warm request re-parses nothing and
//! re-compiles nothing — the end-to-end tests pin that with the compile
//! counters.

use crate::http::{read_request, write_response, write_response_typed, Request};
use crate::json::{obj, parse, Json};
use crate::pool::{QueueSlip, WorkerPool};
use acc_baselines::Compiler;
use accparse::hir::AnalyzedProgram;
use accrt::{AccRunner, RegionCache};
use gpsim::Device;
use std::cell::Cell;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uhacc::driver::{self, EmitFlags, RunRequest};
use uhacc_core::flags::parse_count_u32;
use uhacc_core::{program_key, LaunchDims};
use uhobs::metrics::LATENCY_BUCKETS_US;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Device-worker threads (bounded parallelism of sessions).
    pub workers: usize,
    /// Program-cache capacity (analyzed programs).
    pub program_cache_cap: usize,
    /// Region-artifact cache capacity (compiled kernels).
    pub region_cache_cap: usize,
    /// Deterministic virtual observability clock (byte-stable `/metrics`
    /// and trace output; used by goldens and determinism tests).
    pub virtual_clock: bool,
    /// Slow-request log threshold in milliseconds: requests slower than
    /// this emit one structured JSON line on stderr. `None` disables.
    pub slow_ms: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            program_cache_cap: 64,
            region_cache_cap: 256,
            virtual_clock: false,
            slow_ms: None,
        }
    }
}

/// A POST handler: decoded request JSON in (plus the request's trace
/// id), response JSON out, or a `(status, message)` error.
type Endpoint = fn(&Daemon, &Json, u64) -> Result<Json, (u16, String)>;

/// The daemon's observability bundle: one clock, one tracer, one metric
/// registry, shared by the accept loop, the worker pool, every endpoint
/// handler, and (via `accrt::RunnerObs`) the runtime underneath them.
pub struct Obs {
    pub clock: Arc<uhobs::Clock>,
    pub tracer: Arc<uhobs::Tracer>,
    pub registry: Arc<uhobs::Registry>,
    /// Queue-wait histogram, fed by the worker pool at dequeue.
    pub queue_wait: uhobs::Histogram,
    /// Region codegen durations, fed by the runtime hook.
    compile_hist: uhobs::Histogram,
    slow_total: uhobs::Counter,
    slow_threshold_us: Option<u64>,
}

impl Obs {
    fn new(cfg: &DaemonConfig) -> Self {
        let clock = Arc::new(if cfg.virtual_clock {
            uhobs::Clock::virtual_clock(uhobs::clock::VIRTUAL_STEP_US)
        } else {
            uhobs::Clock::monotonic()
        });
        let tracer = Arc::new(uhobs::Tracer::new(Arc::clone(&clock), "uhaccd requests"));
        let registry = Arc::new(uhobs::Registry::new());
        let queue_wait = registry.histogram(
            "uhaccd_queue_wait_us",
            "Time jobs spend queued before a worker dequeues them (us)",
            &[],
            LATENCY_BUCKETS_US,
        );
        let compile_hist = registry.histogram(
            "uhaccd_compile_duration_us",
            "Region codegen time observed by the runtime hook (us)",
            &[],
            LATENCY_BUCKETS_US,
        );
        let slow_total = registry.counter(
            "uhaccd_slow_requests_total",
            "Requests slower than the slow-request threshold",
            &[],
        );
        Obs {
            clock,
            tracer,
            registry,
            queue_wait,
            compile_hist,
            slow_total,
            slow_threshold_us: cfg.slow_ms.map(|ms| ms * 1000),
        }
    }
}

/// Label for the per-endpoint metric series: known paths verbatim,
/// everything else collapsed to `other` to bound series cardinality.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/compile" => "/compile",
        "/lint" => "/lint",
        "/analyze" => "/analyze",
        "/verify" => "/verify",
        "/run" => "/run",
        "/profile" => "/profile",
        "/certify" => "/certify",
        "/health" => "/health",
        "/metrics" => "/metrics",
        "/trace" => "/trace",
        _ => "other",
    }
}

/// Daemon-side LRU of analyzed programs, keyed by
/// `program_key(source, options)`.
struct ProgramCache {
    cap: usize,
    map: HashMap<u64, Arc<AnalyzedProgram>>,
    lru: Vec<u64>,
}

impl ProgramCache {
    fn touch(&mut self, key: u64) {
        self.lru.retain(|&k| k != key);
        self.lru.push(key);
    }
}

/// Shared daemon state. Cheap to clone via `Arc`; every worker thread
/// handles requests against the same caches.
pub struct Daemon {
    cfg: DaemonConfig,
    programs: Mutex<ProgramCache>,
    prog_hits: AtomicU64,
    prog_misses: AtomicU64,
    prog_evictions: AtomicU64,
    /// Full front-end parses actually performed (miss path).
    parses: AtomicU64,
    /// Shared compiled-artifact cache, injected into every session.
    pub regions: Arc<RegionCache>,
    /// Requests served, by status class.
    served_2xx: AtomicU64,
    served_4xx: AtomicU64,
    served_5xx: AtomicU64,
    /// Observability bundle (clock, tracer, metric registry).
    obs: Obs,
    /// Simulated work accumulated across every `/run`-`/profile`
    /// execution (warp instructions, modelled cycles) — the service-side
    /// mirror of uhprof's per-launch numbers.
    sim_insts: AtomicU64,
    sim_cycles: AtomicU64,
    /// Process start, for `/health` uptime.
    started: std::time::Instant,
    /// The worker pool serving this daemon, attached by [`serve`] so
    /// `/health` and `/metrics` can report queue depth and wait times.
    pool: Mutex<Option<Arc<WorkerPool>>>,
}

impl Daemon {
    pub fn new(cfg: DaemonConfig) -> Arc<Self> {
        let region_cap = cfg.region_cache_cap;
        let obs = Obs::new(&cfg);
        Arc::new(Daemon {
            programs: Mutex::new(ProgramCache {
                cap: cfg.program_cache_cap.max(1),
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            cfg,
            prog_hits: AtomicU64::new(0),
            prog_misses: AtomicU64::new(0),
            prog_evictions: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            regions: Arc::new(RegionCache::new(region_cap)),
            served_2xx: AtomicU64::new(0),
            served_4xx: AtomicU64::new(0),
            served_5xx: AtomicU64::new(0),
            obs,
            sim_insts: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            started: std::time::Instant::now(),
            pool: Mutex::new(None),
        })
    }

    /// The daemon's observability bundle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Attach the worker pool serving this daemon (done by [`serve`]) so
    /// `/health` and `/metrics` can report queue statistics.
    pub fn attach_pool(&self, pool: &Arc<WorkerPool>) {
        *self.pool.lock().unwrap() = Some(Arc::clone(pool));
    }

    /// Content-addressed program lookup: parse on miss, share on hit.
    /// Returns `(program, key, was_hit)`. Records one `cache.lookup`
    /// span under `trace_id` covering the lookup plus any parse (same
    /// two clock reads on the hit and miss paths, so virtual-clock
    /// sequences stay deterministic).
    fn get_or_parse(
        &self,
        source: &str,
        opts: &uhacc_core::CompilerOptions,
        trace_id: u64,
    ) -> Result<(Arc<AnalyzedProgram>, u64, bool), accparse::Diag> {
        let t0 = self.obs.clock.now_us();
        let result = self.get_or_parse_inner(source, opts);
        let t1 = self.obs.clock.now_us();
        let hit = matches!(&result, Ok((_, _, true)));
        self.obs.tracer.record(
            trace_id,
            "cache.lookup",
            t0,
            t1,
            &[("hit", if hit { "true" } else { "false" })],
        );
        result
    }

    fn get_or_parse_inner(
        &self,
        source: &str,
        opts: &uhacc_core::CompilerOptions,
    ) -> Result<(Arc<AnalyzedProgram>, u64, bool), accparse::Diag> {
        let key = program_key(source, opts);
        {
            let mut cache = self.programs.lock().unwrap();
            if let Some(p) = cache.map.get(&key).cloned() {
                cache.touch(key);
                self.prog_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((p, key, true));
            }
        }
        // Parse outside the lock; concurrent first requests may both
        // parse, first insert wins (same content → identical result).
        self.prog_misses.fetch_add(1, Ordering::Relaxed);
        self.parses.fetch_add(1, Ordering::Relaxed);
        let prog = Arc::new(accparse::compile(source)?);
        let mut cache = self.programs.lock().unwrap();
        let p = cache.map.entry(key).or_insert_with(|| prog).clone();
        cache.touch(key);
        if cache.map.len() > cache.cap {
            let victim = cache.lru.remove(0);
            cache.map.remove(&victim);
            self.prog_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((p, key, false))
    }

    /// Dispatch one request to its handler; returns `(status, body)`.
    /// (Untraced convenience used by tests; the serving path goes
    /// through [`Self::handle_traced`] with a minted trace id.)
    pub fn handle(&self, req: &Request) -> (u16, String) {
        self.handle_traced(req, 0)
    }

    /// Dispatch one request under `trace_id`; returns `(status, body)`.
    pub fn handle_traced(&self, req: &Request, trace_id: u64) -> (u16, String) {
        let (status, body) = self.route(req, trace_id);
        let class = match status {
            200..=299 => &self.served_2xx,
            400..=499 => &self.served_4xx,
            _ => &self.served_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        (status, body)
    }

    /// [`Self::handle_traced`] plus the response content type
    /// (`/metrics` serves Prometheus text, everything else JSON).
    pub fn handle_typed(&self, req: &Request, trace_id: u64) -> (u16, &'static str, String) {
        let (status, body) = self.handle_traced(req, trace_id);
        let content_type = if req.method == "GET" && req.path == "/metrics" && status == 200 {
            "text/plain; version=0.0.4"
        } else {
            "application/json"
        };
        (status, content_type, body)
    }

    fn route(&self, req: &Request, trace_id: u64) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => (200, self.health()),
            ("GET", "/metrics") => (200, self.metrics()),
            ("GET", "/trace") => (200, self.obs.tracer.to_chrome_trace()),
            ("POST", "/compile") => self.json_endpoint(req, trace_id, Self::ep_compile),
            ("POST", "/lint") => self.json_endpoint(req, trace_id, Self::ep_lint),
            ("POST", "/analyze") => self.json_endpoint(req, trace_id, Self::ep_analyze),
            ("POST", "/verify") => self.json_endpoint(req, trace_id, Self::ep_verify),
            ("POST", "/run") => self.json_endpoint(req, trace_id, Self::ep_run),
            ("POST", "/profile") => self.json_endpoint(req, trace_id, Self::ep_profile),
            ("POST", "/certify") => self.json_endpoint(req, trace_id, Self::ep_certify),
            ("POST", _) | ("GET", _) => (404, err_body(&format!("no such endpoint: {}", req.path))),
            _ => (405, err_body(&format!("method {} not allowed", req.method))),
        }
    }

    fn json_endpoint(&self, req: &Request, trace_id: u64, ep: Endpoint) -> (u16, String) {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return (400, err_body("request body is not UTF-8")),
        };
        let v = match parse(text) {
            Ok(v) => v,
            Err(e) => return (400, err_body(&format!("invalid JSON: {e}"))),
        };
        match ep(self, &v, trace_id) {
            Ok(body) => (200, body.to_string()),
            Err((status, msg)) => (status, err_body(&msg)),
        }
    }

    /// Render the Prometheus text exposition. Mirrored counters (cache
    /// hit/miss, pool queue stats, simulated work, span drops) are
    /// snapshot into the registry here, at scrape time; request/latency
    /// series are recorded live as requests finish.
    fn metrics(&self) -> String {
        let reg = &self.obs.registry;
        let snap_ctr = |name: &str, help: &str, v: u64| {
            reg.counter(name, help, &[]).set(v);
        };
        snap_ctr(
            "uhaccd_program_cache_hits_total",
            "Analyzed-program cache hits",
            self.prog_hits.load(Ordering::Relaxed),
        );
        snap_ctr(
            "uhaccd_program_cache_misses_total",
            "Analyzed-program cache misses",
            self.prog_misses.load(Ordering::Relaxed),
        );
        snap_ctr(
            "uhaccd_program_cache_evictions_total",
            "Analyzed-program cache evictions",
            self.prog_evictions.load(Ordering::Relaxed),
        );
        snap_ctr(
            "uhaccd_program_parses_total",
            "Full front-end parses performed",
            self.parses.load(Ordering::Relaxed),
        );
        let rc = self.regions.counters();
        snap_ctr(
            "uhaccd_region_cache_hits_total",
            "Compiled-region artifact cache hits",
            rc.hits,
        );
        snap_ctr(
            "uhaccd_region_cache_misses_total",
            "Compiled-region artifact cache misses",
            rc.misses,
        );
        snap_ctr(
            "uhaccd_region_cache_evictions_total",
            "Compiled-region artifact cache evictions",
            rc.evictions,
        );
        snap_ctr(
            "uhaccd_region_compiles_total",
            "Region codegen runs actually performed",
            rc.compiles,
        );
        snap_ctr(
            "uhaccd_sim_instructions_total",
            "Simulated warp instructions across all executions",
            self.sim_insts.load(Ordering::Relaxed),
        );
        snap_ctr(
            "uhaccd_sim_cycles_total",
            "Simulated modelled cycles across all executions",
            self.sim_cycles.load(Ordering::Relaxed),
        );
        snap_ctr(
            "uhaccd_trace_spans_dropped_total",
            "Trace spans dropped on buffer overflow",
            self.obs.tracer.dropped(),
        );
        if let Some(pool) = self.pool.lock().unwrap().as_ref() {
            let s = pool.stats();
            let gauge = |name: &str, help: &str, v: u64| {
                reg.gauge(name, help, &[]).set(v);
            };
            gauge(
                "uhaccd_queue_depth",
                "Jobs currently queued",
                s.queued as u64,
            );
            gauge(
                "uhaccd_queue_peak_depth",
                "High-water mark of queue depth",
                s.peak_depth as u64,
            );
            gauge(
                "uhaccd_pool_busy",
                "Jobs currently running on workers",
                s.busy as u64,
            );
            gauge("uhaccd_pool_workers", "Worker threads", s.workers as u64);
        }
        reg.render()
    }

    /// Record one finished request into the metric families and, when it
    /// crossed the slow threshold, emit a structured JSON log line.
    pub fn finish_request(&self, endpoint: &str, status: u16, dur_us: u64, trace_id: u64) {
        let code = status.to_string();
        self.obs
            .registry
            .counter(
                "uhaccd_requests_total",
                "Requests served, by endpoint and status code",
                &[("endpoint", endpoint), ("code", &code)],
            )
            .inc();
        self.obs
            .registry
            .histogram(
                "uhaccd_request_duration_us",
                "End-to-end request latency, submit to response written (us)",
                &[("endpoint", endpoint)],
                LATENCY_BUCKETS_US,
            )
            .observe(dur_us);
        if let Some(threshold) = self.obs.slow_threshold_us {
            if dur_us > threshold {
                self.obs.slow_total.inc();
                eprintln!(
                    "{{\"slow_request\":true,\"endpoint\":\"{}\",\"status\":{status},\
                     \"duration_us\":{dur_us},\"threshold_us\":{threshold},\"trace_id\":{trace_id}}}",
                    uhobs::json_escape(endpoint)
                );
            }
        }
    }

    fn health(&self) -> String {
        let rc = self.regions.counters();
        let pool = self.pool.lock().unwrap().as_ref().map(|p| p.stats());
        let pool_json = match pool {
            Some(s) => obj(vec![
                ("workers", Json::Num(s.workers as f64)),
                ("executed", Json::Num(s.executed as f64)),
                ("busy", Json::Num(s.busy as f64)),
                ("queued", Json::Num(s.queued as f64)),
                ("peak_depth", Json::Num(s.peak_depth as f64)),
                ("wait_count", Json::Num(s.wait_count as f64)),
                ("wait_mean_us", Json::Num(s.wait_mean_us() as f64)),
                ("wait_max_us", Json::Num(s.wait_max_us as f64)),
            ]),
            None => Json::Null,
        };
        obj(vec![
            ("status", Json::Str("ok".into())),
            ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
            (
                "uptime_secs",
                Json::Num(self.started.elapsed().as_secs() as f64),
            ),
            ("workers", Json::Num(self.cfg.workers as f64)),
            (
                "config",
                obj(vec![
                    ("workers", Json::Num(self.cfg.workers as f64)),
                    (
                        "program_cache_cap",
                        Json::Num(self.cfg.program_cache_cap as f64),
                    ),
                    (
                        "region_cache_cap",
                        Json::Num(self.cfg.region_cache_cap as f64),
                    ),
                    ("exec_tier", Json::Str(gpsim::ExecTier::Auto.to_string())),
                    (
                        "host_threads",
                        Json::Num(
                            uhacc_core::flags::host_threads_from_env()
                                .ok()
                                .flatten()
                                .unwrap_or(0) as f64,
                        ),
                    ),
                    ("virtual_clock", Json::Bool(self.cfg.virtual_clock)),
                    (
                        "slow_ms",
                        match self.cfg.slow_ms {
                            Some(ms) => Json::Num(ms as f64),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("pool", pool_json),
            (
                "programs",
                obj(vec![
                    (
                        "hits",
                        Json::Num(self.prog_hits.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "misses",
                        Json::Num(self.prog_misses.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "evictions",
                        Json::Num(self.prog_evictions.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "parses",
                        Json::Num(self.parses.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "entries",
                        Json::Num(self.programs.lock().unwrap().map.len() as f64),
                    ),
                ]),
            ),
            (
                "regions",
                obj(vec![
                    ("hits", Json::Num(rc.hits as f64)),
                    ("misses", Json::Num(rc.misses as f64)),
                    ("evictions", Json::Num(rc.evictions as f64)),
                    ("compiles", Json::Num(rc.compiles as f64)),
                    ("entries", Json::Num(rc.entries as f64)),
                ]),
            ),
            (
                "served",
                obj(vec![
                    (
                        "ok",
                        Json::Num(self.served_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "client_error",
                        Json::Num(self.served_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "server_error",
                        Json::Num(self.served_5xx.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
        .to_string()
    }

    /// `/compile` — body of `uhacc-cc <src> [--emit ...] [--verify]`.
    fn ep_compile(&self, v: &Json, trace_id: u64) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let dims = req_dims(v)?;
        let emit = req_emit(v)?;
        let opts = compiler.base_options();
        let (prog, key, program_hit) = self
            .get_or_parse(source, &opts, trace_id)
            .map_err(|d| (422, d.render(source)))?;

        // Per-request artifact accounting (the global counters are
        // shared across concurrent requests and can't be diffed safely).
        let region_hits = Cell::new(0u64);
        let region_compiles = Cell::new(0u64);
        let regions = &self.regions;
        let compile = |region: usize, dims: LaunchDims| {
            let compiled = Cell::new(false);
            let r = regions.get_or_compile(
                accrt::RegionKey {
                    program: key,
                    region,
                    dims,
                },
                || {
                    compiled.set(true);
                    uhacc_core::compile_region(&prog, region, dims, &opts)
                },
            )?;
            if compiled.get() {
                region_compiles.set(region_compiles.get() + 1);
            } else {
                region_hits.set(region_hits.get() + 1);
            }
            Ok(r)
        };
        let out = driver::compile_text(&prog, dims, compiler.name(), emit, &compile)
            .map_err(|(region, d)| (422, format!("region {region}: {}", d.render(source))))?;
        Ok(obj(vec![
            ("text", Json::Str(out.text)),
            ("verify_errors", Json::Num(out.verify_errors as f64)),
            ("regions", Json::Num(out.regions.len() as f64)),
            (
                "cache",
                obj(vec![
                    ("program_hit", Json::Bool(program_hit)),
                    ("region_hits", Json::Num(region_hits.get() as f64)),
                    ("region_compiles", Json::Num(region_compiles.get() as f64)),
                ]),
            ),
        ]))
    }

    /// `/lint` — `schema_version` and `diagnostics` are spliced verbatim
    /// from the same renderers behind `uhacc-cc <src> --lint --json`, so
    /// the daemon's `diagnostics` array is byte-identical to the CLI
    /// envelope's and the two surfaces version together.
    fn ep_lint(&self, v: &Json, _trace_id: u64) -> Result<Json, (u16, String)> {
        use accparse::diag::{diags_to_json, Severity, LINT_SCHEMA_VERSION};
        let source = req_source(v)?;
        let werror = req_bool(v, "werror")?.unwrap_or(false);
        let (diags, parse_failed) = match accparse::lint_source(source) {
            Ok((_, findings)) => {
                let mut diags: Vec<accparse::Diag> = findings.into_iter().map(|f| f.diag).collect();
                if werror {
                    for d in &mut diags {
                        if d.severity == Severity::Warning {
                            d.severity = Severity::Error;
                        }
                    }
                }
                (diags, false)
            }
            Err(d) => (vec![d], true),
        };
        let failed = parse_failed || diags.iter().any(|d| d.severity == Severity::Error);
        Ok(obj(vec![
            ("ok", Json::Bool(!failed)),
            ("schema_version", Json::Num(LINT_SCHEMA_VERSION as f64)),
            ("diagnostics", Json::Raw(diags_to_json(&diags, source))),
        ]))
    }

    /// `/analyze` — the redflow fusion plan, byte-identical to
    /// `uhacc-cc <src> --fusion-plan=json` stdout (both call
    /// `driver::analyze_json`).
    fn ep_analyze(&self, v: &Json, trace_id: u64) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let opts = compiler.base_options();
        let (prog, _, program_hit) = self
            .get_or_parse(source, &opts, trace_id)
            .map_err(|d| (422, d.render(source)))?;
        Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("analysis", Json::Raw(driver::analyze_json(&prog))),
            ("cache", obj(vec![("program_hit", Json::Bool(program_hit))])),
        ]))
    }

    /// `/verify` — the static-verification section of
    /// `uhacc-cc <src> --verify`, without the plan/kernel listings.
    fn ep_verify(&self, v: &Json, trace_id: u64) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let dims = req_dims(v)?;
        let opts = compiler.base_options();
        let (prog, key, _) = self
            .get_or_parse(source, &opts, trace_id)
            .map_err(|d| (422, d.render(source)))?;
        let regions = &self.regions;
        let compile = |region: usize, dims: LaunchDims| {
            regions.get_or_compile(
                accrt::RegionKey {
                    program: key,
                    region,
                    dims,
                },
                || uhacc_core::compile_region(&prog, region, dims, &opts),
            )
        };
        let emit = EmitFlags {
            hir: false,
            kernel: false,
            plan: false,
            verify: true,
        };
        let out = driver::compile_text(&prog, dims, compiler.name(), emit, &compile)
            .map_err(|(region, d)| (422, format!("region {region}: {}", d.render(source))))?;
        Ok(obj(vec![
            ("ok", Json::Bool(out.verify_errors == 0)),
            ("verify_errors", Json::Num(out.verify_errors as f64)),
            ("text", Json::Str(out.text)),
        ]))
    }

    /// `/run` — `results` is byte-identical to `uhacc-cc <src> --run`.
    fn ep_run(&self, v: &Json, trace_id: u64) -> Result<Json, (u16, String)> {
        let (body, cache) = self.execute(v, false, trace_id)?;
        Ok(obj(vec![("results", Json::Raw(body)), ("cache", cache)]))
    }

    /// `/profile` — `profile` is byte-identical to
    /// `uhacc-cc <src> --profile=json`.
    fn ep_profile(&self, v: &Json, trace_id: u64) -> Result<Json, (u16, String)> {
        let (body, cache) = self.execute(v, true, trace_id)?;
        Ok(obj(vec![("profile", Json::Raw(body)), ("cache", cache)]))
    }

    /// `/certify` — translation validation. `certification` is spliced
    /// verbatim from `driver::cert_reports_json`, the same function
    /// behind `uhacc-cc <src> --certify=json` stdout, so the two bodies
    /// are byte-identical by construction.
    fn ep_certify(&self, v: &Json, _trace_id: u64) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let fmt = req_report_format(v, "format")?.unwrap_or(uhacc_core::flags::ReportFormat::Json);
        let req = RunRequest {
            opts: compiler.base_options(),
            dims: match v.get("dims") {
                None | Some(Json::Null) => driver::certify_dims(),
                Some(_) => req_dims(v)?,
            },
            n: req_count(v, "n")?.unwrap_or(RunRequest::default().n),
            host_threads: req_count_u32(v, "host_threads")?.unwrap_or(0),
            exec_tier: req_exec_tier(v)?,
        };
        let key = program_key(source, &req.opts);
        let regions = Arc::clone(&self.regions);
        let reports = driver::certify_reports(source, &req, |r| {
            r.set_source(source);
            r.set_region_cache(Arc::clone(&regions), key);
        })
        .map_err(|e| (422, e.to_string()))?;
        let ok = !reports
            .iter()
            .any(|r| matches!(r.verdict, gpsim::CertVerdict::Refuted { .. }));
        let body = match fmt {
            uhacc_core::flags::ReportFormat::Json => (
                "certification",
                Json::Raw(driver::cert_reports_json(&reports)),
            ),
            uhacc_core::flags::ReportFormat::Text => {
                ("text", Json::Str(driver::cert_reports_text(&reports)))
            }
        };
        Ok(obj(vec![("ok", Json::Bool(ok)), body]))
    }

    /// Shared `/run`-`/profile` path: cached parse, session over shared
    /// artifacts, deterministic inputs, full device run on this worker —
    /// traced end to end (per-region phase spans via the runtime hook,
    /// device timeline spliced into the unified trace for `/profile`).
    fn execute(
        &self,
        v: &Json,
        profile: bool,
        trace_id: u64,
    ) -> Result<(String, Json), (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let req = RunRequest {
            opts: compiler.base_options(),
            dims: req_dims(v)?,
            n: req_count(v, "n")?.unwrap_or(RunRequest::default().n),
            host_threads: req_count_u32(v, "host_threads")?.unwrap_or(0),
            exec_tier: req_exec_tier(v)?,
        };
        let (prog, key, program_hit) = self
            .get_or_parse(source, &req.opts, trace_id)
            .map_err(|d| (422, d.render(source)))?;
        let mut r = AccRunner::from_shared(prog, req.opts.clone(), req.dims, Device::default());
        r.set_source(source);
        r.set_region_cache(Arc::clone(&self.regions), key);
        driver::execute_traced(
            &mut r,
            &req,
            profile,
            &self.obs.tracer,
            trace_id,
            Some(self.obs.compile_hist.clone()),
        )
        .map_err(|e| (422, e.to_string()))?;
        let s = r.device().stats();
        self.sim_insts
            .fetch_add(s.totals.warp_insts, Ordering::Relaxed);
        self.sim_cycles
            .fetch_add(s.total_cycles(), Ordering::Relaxed);
        let body = if profile {
            r.profile_json()
        } else {
            driver::results_json(&r)
        };
        let cache = obj(vec![
            ("program_hit", Json::Bool(program_hit)),
            ("session_compiles", Json::Num(r.compiles() as f64)),
        ]);
        Ok((body, cache))
    }
}

fn err_body(msg: &str) -> String {
    obj(vec![("error", Json::Str(msg.into()))]).to_string()
}

fn req_source(v: &Json) -> Result<&str, (u16, String)> {
    v.get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| (400, "missing required string field `source`".into()))
}

fn req_bool(v: &Json, field: &str) -> Result<Option<bool>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(b) => b
            .as_bool()
            .map(Some)
            .ok_or_else(|| (400, format!("field `{field}` must be a boolean"))),
    }
}

/// Numeric request fields go through the *same* validation as the CLI
/// flags (`uhacc_core::flags::parse_count`): a string or a number is
/// accepted, anything malformed gets the identical rendered diagnostic.
fn req_count(v: &Json, field: &str) -> Result<Option<u64>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => uhacc_core::flags::parse_count(field, &x.literal())
            .map(Some)
            .map_err(|e| (400, e)),
    }
}

fn req_count_u32(v: &Json, field: &str) -> Result<Option<u32>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => parse_count_u32(field, &x.literal())
            .map(Some)
            .map_err(|e| (400, e)),
    }
}

/// Optional report-format field, validated exactly like the CLI's
/// `--certify=FMT` value (same parser, same rendered diagnostic) — a
/// malformed format is a semantically invalid request: HTTP 422, like
/// a source that fails to parse.
fn req_report_format(
    v: &Json,
    field: &str,
) -> Result<Option<uhacc_core::flags::ReportFormat>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => match x.as_str() {
            Some(s) => uhacc_core::flags::parse_report_format(field, s)
                .map(Some)
                .map_err(|e| (422, e)),
            None => Err((422, format!("field `{field}` must be a string"))),
        },
    }
}

/// Optional `exec_tier` field, validated exactly like the CLI's
/// `--exec-tier` flag (same parser, same rendered diagnostic).
fn req_exec_tier(v: &Json) -> Result<gpsim::ExecTier, (u16, String)> {
    match v.get("exec_tier") {
        None | Some(Json::Null) => Ok(gpsim::ExecTier::Auto),
        Some(x) => match x.as_str() {
            Some(s) => s.parse().map_err(|e: String| (400, e)),
            None => Err((400, "field `exec_tier` must be a string".into())),
        },
    }
}

fn req_compiler(v: &Json) -> Result<Compiler, (u16, String)> {
    match v.get("compiler") {
        None | Some(Json::Null) => Ok(Compiler::OpenUH),
        Some(c) => match c.as_str() {
            Some("openuh") => Ok(Compiler::OpenUH),
            Some("pgi") => Ok(Compiler::PgiLike),
            Some("caps") => Ok(Compiler::CapsLike),
            _ => Err((
                400,
                format!("field `compiler` must be one of openuh | pgi | caps, got {c}"),
            )),
        },
    }
}

fn req_dims(v: &Json) -> Result<LaunchDims, (u16, String)> {
    match v.get("dims") {
        None | Some(Json::Null) => Ok(LaunchDims::paper()),
        Some(d) => {
            let items = d.as_arr().filter(|a| a.len() == 3).ok_or_else(|| {
                (
                    400,
                    "field `dims` must be a 3-element array [gangs, workers, vector]".to_string(),
                )
            })?;
            let mut nums = [0u32; 3];
            for (i, item) in items.iter().enumerate() {
                nums[i] = parse_count_u32("dims", &item.literal()).map_err(|e| (400, e))?;
            }
            Ok(LaunchDims {
                gangs: nums[0],
                workers: nums[1],
                vector: nums[2],
            })
        }
    }
}

fn req_emit(v: &Json) -> Result<EmitFlags, (u16, String)> {
    let mut emit = EmitFlags::default();
    if let Some(e) = v.get("emit") {
        if matches!(e, Json::Null) {
            // keep defaults
        } else {
            let items = e.as_arr().ok_or_else(|| {
                (
                    400,
                    "field `emit` must be an array of hir | kernel | plan | all".to_string(),
                )
            })?;
            emit.hir = false;
            emit.kernel = false;
            emit.plan = false;
            for item in items {
                match item.as_str() {
                    Some("hir") => emit.hir = true,
                    Some("kernel") => emit.kernel = true,
                    Some("plan") => emit.plan = true,
                    Some("all") => {
                        emit.hir = true;
                        emit.kernel = true;
                        emit.plan = true;
                    }
                    _ => {
                        return Err((
                            400,
                            format!(
                                "invalid emit entry {item}: expected hir | kernel | plan | all"
                            ),
                        ))
                    }
                }
            }
        }
    }
    if let Some(b) = req_bool(v, "verify")? {
        emit.verify = b;
    }
    Ok(emit)
}

/// Accept loop: every connection becomes one FIFO job on the shared
/// worker pool. Blocks forever (until the listener errors).
pub fn serve(daemon: Arc<Daemon>, listener: TcpListener, pool: Arc<WorkerPool>) {
    daemon.attach_pool(&pool);
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = Arc::clone(&daemon);
        pool.submit_timed(move |slip| handle_connection(&daemon, &mut stream, slip));
    }
}

/// One connection, end to end: parse, dispatch, respond — with the full
/// request-lifecycle spans (`queue.wait` from the pool slip,
/// `http.parse`, handler-internal spans, `render`, and the enclosing
/// `request`) recorded under a freshly minted trace id, and the
/// per-endpoint counters/latency histograms updated at the end.
fn handle_connection(daemon: &Daemon, stream: &mut TcpStream, slip: QueueSlip) {
    let obs = daemon.obs();
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(120)));
    let t_parse0 = obs.clock.now_us();
    match read_request(stream) {
        Ok(Some(req)) => {
            let t_parse1 = obs.clock.now_us();
            let endpoint = endpoint_label(&req.path);
            let trace_id = obs.tracer.mint_trace_id();
            obs.tracer
                .set_track_name(trace_id, &format!("req {trace_id} {}", req.path));
            obs.tracer
                .record(trace_id, "queue.wait", slip.submit_us, slip.dequeue_us, &[]);
            obs.tracer
                .record(trace_id, "http.parse", t_parse0, t_parse1, &[]);
            let (status, content_type, body) = daemon.handle_typed(&req, trace_id);
            let t_render0 = obs.clock.now_us();
            let _ = write_response_typed(stream, status, content_type, body.as_bytes());
            let t_end = obs.clock.now_us();
            let status_s = status.to_string();
            obs.tracer.record(trace_id, "render", t_render0, t_end, &[]);
            obs.tracer.record(
                trace_id,
                "request",
                slip.submit_us,
                t_end,
                &[("endpoint", endpoint), ("status", &status_s)],
            );
            daemon.finish_request(
                endpoint,
                status,
                t_end.saturating_sub(slip.submit_us),
                trace_id,
            );
        }
        Ok(None) => {}
        Err(e) => {
            // Protocol-level rejection: answer with the status the error
            // carries (431 oversized headers, 413 oversized body, 400
            // malformed framing) in the standard diagnostic shape.
            let _ = write_response(stream, e.status, err_body(&e.msg).as_bytes());
            let t_end = obs.clock.now_us();
            daemon.finish_request(
                "malformed",
                e.status,
                t_end.saturating_sub(slip.submit_us),
                0,
            );
        }
    }
}

/// Bind `addr`, spawn the accept loop on a background thread, and return
/// the bound address (useful with port 0) plus the daemon handle.
/// Used by `--loadgen --spawn`, the end-to-end tests, and CI.
pub fn spawn(cfg: DaemonConfig, addr: &str) -> std::io::Result<(SocketAddr, Arc<Daemon>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let daemon = Daemon::new(cfg.clone());
    // The pool stamps queue times on the daemon's clock and feeds the
    // queue-wait histogram directly.
    let pool = Arc::new(WorkerPool::with_obs(
        cfg.workers,
        Arc::clone(&daemon.obs().clock),
        Some(daemon.obs().queue_wait.clone()),
    ));
    let d = Arc::clone(&daemon);
    // Thread spawn can fail (e.g. under resource limits); surface it as
    // an io::Error like bind failures, so callers render a diagnostic
    // instead of the process aborting on a panic.
    std::thread::Builder::new()
        .name("uhaccd-accept".into())
        .spawn(move || serve(d, listener, pool))?;
    Ok((local, daemon))
}
