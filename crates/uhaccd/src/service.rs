//! The daemon: request decoding, the content-addressed program cache,
//! and the endpoint handlers.
//!
//! Every response body that has a single-shot CLI equivalent is built by
//! the same `uhacc::driver` function the CLI calls, so the two surfaces
//! agree byte for byte by construction:
//!
//! | endpoint   | CLI equivalent                         |
//! |------------|----------------------------------------|
//! | `/compile` | `uhacc-cc <src> [--emit ...]` (text)   |
//! | `/lint`    | `uhacc-cc <src> --lint --json`         |
//! | `/analyze` | `uhacc-cc <src> --fusion-plan=json`    |
//! | `/verify`  | `uhacc-cc <src> --verify` (section)    |
//! | `/run`     | `uhacc-cc <src> --run`                 |
//! | `/profile` | `uhacc-cc <src> --profile=json`        |
//! | `/certify` | `uhacc-cc <src> --certify=json`        |
//!
//! Caching is two-layer and content-addressed on
//! `program_key(source, options)` (stable FNV-1a, see
//! `uhacc_core::stablehash`): analyzed programs (`Arc<AnalyzedProgram>`,
//! daemon-side LRU) and compiled region artifacts
//! (`accrt::RegionCache`, shared by every session via
//! `AccRunner::set_region_cache`). A warm request re-parses nothing and
//! re-compiles nothing — the end-to-end tests pin that with the compile
//! counters.

use crate::http::{read_request, write_response, Request};
use crate::json::{obj, parse, Json};
use crate::pool::WorkerPool;
use acc_baselines::Compiler;
use accparse::hir::AnalyzedProgram;
use accrt::{AccRunner, RegionCache};
use gpsim::Device;
use std::cell::Cell;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uhacc::driver::{self, EmitFlags, RunRequest};
use uhacc_core::flags::parse_count_u32;
use uhacc_core::{program_key, LaunchDims};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Device-worker threads (bounded parallelism of sessions).
    pub workers: usize,
    /// Program-cache capacity (analyzed programs).
    pub program_cache_cap: usize,
    /// Region-artifact cache capacity (compiled kernels).
    pub region_cache_cap: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            program_cache_cap: 64,
            region_cache_cap: 256,
        }
    }
}

/// A POST handler: decoded request JSON in, response JSON out, or a
/// `(status, message)` error.
type Endpoint = fn(&Daemon, &Json) -> Result<Json, (u16, String)>;

/// Daemon-side LRU of analyzed programs, keyed by
/// `program_key(source, options)`.
struct ProgramCache {
    cap: usize,
    map: HashMap<u64, Arc<AnalyzedProgram>>,
    lru: Vec<u64>,
}

impl ProgramCache {
    fn touch(&mut self, key: u64) {
        self.lru.retain(|&k| k != key);
        self.lru.push(key);
    }
}

/// Shared daemon state. Cheap to clone via `Arc`; every worker thread
/// handles requests against the same caches.
pub struct Daemon {
    cfg: DaemonConfig,
    programs: Mutex<ProgramCache>,
    prog_hits: AtomicU64,
    prog_misses: AtomicU64,
    prog_evictions: AtomicU64,
    /// Full front-end parses actually performed (miss path).
    parses: AtomicU64,
    /// Shared compiled-artifact cache, injected into every session.
    pub regions: Arc<RegionCache>,
    /// Requests served, by status class.
    served_2xx: AtomicU64,
    served_4xx: AtomicU64,
    served_5xx: AtomicU64,
}

impl Daemon {
    pub fn new(cfg: DaemonConfig) -> Arc<Self> {
        let region_cap = cfg.region_cache_cap;
        Arc::new(Daemon {
            programs: Mutex::new(ProgramCache {
                cap: cfg.program_cache_cap.max(1),
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            cfg,
            prog_hits: AtomicU64::new(0),
            prog_misses: AtomicU64::new(0),
            prog_evictions: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            regions: Arc::new(RegionCache::new(region_cap)),
            served_2xx: AtomicU64::new(0),
            served_4xx: AtomicU64::new(0),
            served_5xx: AtomicU64::new(0),
        })
    }

    /// Content-addressed program lookup: parse on miss, share on hit.
    /// Returns `(program, key, was_hit)`.
    fn get_or_parse(
        &self,
        source: &str,
        opts: &uhacc_core::CompilerOptions,
    ) -> Result<(Arc<AnalyzedProgram>, u64, bool), accparse::Diag> {
        let key = program_key(source, opts);
        {
            let mut cache = self.programs.lock().unwrap();
            if let Some(p) = cache.map.get(&key).cloned() {
                cache.touch(key);
                self.prog_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((p, key, true));
            }
        }
        // Parse outside the lock; concurrent first requests may both
        // parse, first insert wins (same content → identical result).
        self.prog_misses.fetch_add(1, Ordering::Relaxed);
        self.parses.fetch_add(1, Ordering::Relaxed);
        let prog = Arc::new(accparse::compile(source)?);
        let mut cache = self.programs.lock().unwrap();
        let p = cache.map.entry(key).or_insert_with(|| prog).clone();
        cache.touch(key);
        if cache.map.len() > cache.cap {
            let victim = cache.lru.remove(0);
            cache.map.remove(&victim);
            self.prog_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((p, key, false))
    }

    /// Dispatch one request to its handler; returns `(status, body)`.
    pub fn handle(&self, req: &Request) -> (u16, String) {
        let (status, body) = self.route(req);
        let class = match status {
            200..=299 => &self.served_2xx,
            400..=499 => &self.served_4xx,
            _ => &self.served_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        (status, body)
    }

    fn route(&self, req: &Request) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => (200, self.health()),
            ("POST", "/compile") => self.json_endpoint(req, Self::ep_compile),
            ("POST", "/lint") => self.json_endpoint(req, Self::ep_lint),
            ("POST", "/analyze") => self.json_endpoint(req, Self::ep_analyze),
            ("POST", "/verify") => self.json_endpoint(req, Self::ep_verify),
            ("POST", "/run") => self.json_endpoint(req, Self::ep_run),
            ("POST", "/profile") => self.json_endpoint(req, Self::ep_profile),
            ("POST", "/certify") => self.json_endpoint(req, Self::ep_certify),
            ("POST", _) | ("GET", _) => (404, err_body(&format!("no such endpoint: {}", req.path))),
            _ => (405, err_body(&format!("method {} not allowed", req.method))),
        }
    }

    fn json_endpoint(&self, req: &Request, ep: Endpoint) -> (u16, String) {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return (400, err_body("request body is not UTF-8")),
        };
        let v = match parse(text) {
            Ok(v) => v,
            Err(e) => return (400, err_body(&format!("invalid JSON: {e}"))),
        };
        match ep(self, &v) {
            Ok(body) => (200, body.to_string()),
            Err((status, msg)) => (status, err_body(&msg)),
        }
    }

    fn health(&self) -> String {
        let rc = self.regions.counters();
        obj(vec![
            ("status", Json::Str("ok".into())),
            ("workers", Json::Num(self.cfg.workers as f64)),
            (
                "programs",
                obj(vec![
                    (
                        "hits",
                        Json::Num(self.prog_hits.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "misses",
                        Json::Num(self.prog_misses.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "evictions",
                        Json::Num(self.prog_evictions.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "parses",
                        Json::Num(self.parses.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "entries",
                        Json::Num(self.programs.lock().unwrap().map.len() as f64),
                    ),
                ]),
            ),
            (
                "regions",
                obj(vec![
                    ("hits", Json::Num(rc.hits as f64)),
                    ("misses", Json::Num(rc.misses as f64)),
                    ("evictions", Json::Num(rc.evictions as f64)),
                    ("compiles", Json::Num(rc.compiles as f64)),
                    ("entries", Json::Num(rc.entries as f64)),
                ]),
            ),
            (
                "served",
                obj(vec![
                    (
                        "ok",
                        Json::Num(self.served_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "client_error",
                        Json::Num(self.served_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "server_error",
                        Json::Num(self.served_5xx.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
        ])
        .to_string()
    }

    /// `/compile` — body of `uhacc-cc <src> [--emit ...] [--verify]`.
    fn ep_compile(&self, v: &Json) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let dims = req_dims(v)?;
        let emit = req_emit(v)?;
        let opts = compiler.base_options();
        let (prog, key, program_hit) = self
            .get_or_parse(source, &opts)
            .map_err(|d| (422, d.render(source)))?;

        // Per-request artifact accounting (the global counters are
        // shared across concurrent requests and can't be diffed safely).
        let region_hits = Cell::new(0u64);
        let region_compiles = Cell::new(0u64);
        let regions = &self.regions;
        let compile = |region: usize, dims: LaunchDims| {
            let compiled = Cell::new(false);
            let r = regions.get_or_compile(
                accrt::RegionKey {
                    program: key,
                    region,
                    dims,
                },
                || {
                    compiled.set(true);
                    uhacc_core::compile_region(&prog, region, dims, &opts)
                },
            )?;
            if compiled.get() {
                region_compiles.set(region_compiles.get() + 1);
            } else {
                region_hits.set(region_hits.get() + 1);
            }
            Ok(r)
        };
        let out = driver::compile_text(&prog, dims, compiler.name(), emit, &compile)
            .map_err(|(region, d)| (422, format!("region {region}: {}", d.render(source))))?;
        Ok(obj(vec![
            ("text", Json::Str(out.text)),
            ("verify_errors", Json::Num(out.verify_errors as f64)),
            ("regions", Json::Num(out.regions.len() as f64)),
            (
                "cache",
                obj(vec![
                    ("program_hit", Json::Bool(program_hit)),
                    ("region_hits", Json::Num(region_hits.get() as f64)),
                    ("region_compiles", Json::Num(region_compiles.get() as f64)),
                ]),
            ),
        ]))
    }

    /// `/lint` — `schema_version` and `diagnostics` are spliced verbatim
    /// from the same renderers behind `uhacc-cc <src> --lint --json`, so
    /// the daemon's `diagnostics` array is byte-identical to the CLI
    /// envelope's and the two surfaces version together.
    fn ep_lint(&self, v: &Json) -> Result<Json, (u16, String)> {
        use accparse::diag::{diags_to_json, Severity, LINT_SCHEMA_VERSION};
        let source = req_source(v)?;
        let werror = req_bool(v, "werror")?.unwrap_or(false);
        let (diags, parse_failed) = match accparse::lint_source(source) {
            Ok((_, findings)) => {
                let mut diags: Vec<accparse::Diag> = findings.into_iter().map(|f| f.diag).collect();
                if werror {
                    for d in &mut diags {
                        if d.severity == Severity::Warning {
                            d.severity = Severity::Error;
                        }
                    }
                }
                (diags, false)
            }
            Err(d) => (vec![d], true),
        };
        let failed = parse_failed || diags.iter().any(|d| d.severity == Severity::Error);
        Ok(obj(vec![
            ("ok", Json::Bool(!failed)),
            ("schema_version", Json::Num(LINT_SCHEMA_VERSION as f64)),
            ("diagnostics", Json::Raw(diags_to_json(&diags, source))),
        ]))
    }

    /// `/analyze` — the redflow fusion plan, byte-identical to
    /// `uhacc-cc <src> --fusion-plan=json` stdout (both call
    /// `driver::analyze_json`).
    fn ep_analyze(&self, v: &Json) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let opts = compiler.base_options();
        let (prog, _, program_hit) = self
            .get_or_parse(source, &opts)
            .map_err(|d| (422, d.render(source)))?;
        Ok(obj(vec![
            ("ok", Json::Bool(true)),
            ("analysis", Json::Raw(driver::analyze_json(&prog))),
            ("cache", obj(vec![("program_hit", Json::Bool(program_hit))])),
        ]))
    }

    /// `/verify` — the static-verification section of
    /// `uhacc-cc <src> --verify`, without the plan/kernel listings.
    fn ep_verify(&self, v: &Json) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let dims = req_dims(v)?;
        let opts = compiler.base_options();
        let (prog, key, _) = self
            .get_or_parse(source, &opts)
            .map_err(|d| (422, d.render(source)))?;
        let regions = &self.regions;
        let compile = |region: usize, dims: LaunchDims| {
            regions.get_or_compile(
                accrt::RegionKey {
                    program: key,
                    region,
                    dims,
                },
                || uhacc_core::compile_region(&prog, region, dims, &opts),
            )
        };
        let emit = EmitFlags {
            hir: false,
            kernel: false,
            plan: false,
            verify: true,
        };
        let out = driver::compile_text(&prog, dims, compiler.name(), emit, &compile)
            .map_err(|(region, d)| (422, format!("region {region}: {}", d.render(source))))?;
        Ok(obj(vec![
            ("ok", Json::Bool(out.verify_errors == 0)),
            ("verify_errors", Json::Num(out.verify_errors as f64)),
            ("text", Json::Str(out.text)),
        ]))
    }

    /// `/run` — `results` is byte-identical to `uhacc-cc <src> --run`.
    fn ep_run(&self, v: &Json) -> Result<Json, (u16, String)> {
        let (body, cache) = self.execute(v, false)?;
        Ok(obj(vec![("results", Json::Raw(body)), ("cache", cache)]))
    }

    /// `/profile` — `profile` is byte-identical to
    /// `uhacc-cc <src> --profile=json`.
    fn ep_profile(&self, v: &Json) -> Result<Json, (u16, String)> {
        let (body, cache) = self.execute(v, true)?;
        Ok(obj(vec![("profile", Json::Raw(body)), ("cache", cache)]))
    }

    /// `/certify` — translation validation. `certification` is spliced
    /// verbatim from `driver::cert_reports_json`, the same function
    /// behind `uhacc-cc <src> --certify=json` stdout, so the two bodies
    /// are byte-identical by construction.
    fn ep_certify(&self, v: &Json) -> Result<Json, (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let fmt = req_report_format(v, "format")?.unwrap_or(uhacc_core::flags::ReportFormat::Json);
        let req = RunRequest {
            opts: compiler.base_options(),
            dims: match v.get("dims") {
                None | Some(Json::Null) => driver::certify_dims(),
                Some(_) => req_dims(v)?,
            },
            n: req_count(v, "n")?.unwrap_or(RunRequest::default().n),
            host_threads: req_count_u32(v, "host_threads")?.unwrap_or(0),
            exec_tier: req_exec_tier(v)?,
        };
        let key = program_key(source, &req.opts);
        let regions = Arc::clone(&self.regions);
        let reports = driver::certify_reports(source, &req, |r| {
            r.set_source(source);
            r.set_region_cache(Arc::clone(&regions), key);
        })
        .map_err(|e| (422, e.to_string()))?;
        let ok = !reports
            .iter()
            .any(|r| matches!(r.verdict, gpsim::CertVerdict::Refuted { .. }));
        let body = match fmt {
            uhacc_core::flags::ReportFormat::Json => (
                "certification",
                Json::Raw(driver::cert_reports_json(&reports)),
            ),
            uhacc_core::flags::ReportFormat::Text => {
                ("text", Json::Str(driver::cert_reports_text(&reports)))
            }
        };
        Ok(obj(vec![("ok", Json::Bool(ok)), body]))
    }

    /// Shared `/run`-`/profile` path: cached parse, session over shared
    /// artifacts, deterministic inputs, full device run on this worker.
    fn execute(&self, v: &Json, profile: bool) -> Result<(String, Json), (u16, String)> {
        let source = req_source(v)?;
        let compiler = req_compiler(v)?;
        let req = RunRequest {
            opts: compiler.base_options(),
            dims: req_dims(v)?,
            n: req_count(v, "n")?.unwrap_or(RunRequest::default().n),
            host_threads: req_count_u32(v, "host_threads")?.unwrap_or(0),
            exec_tier: req_exec_tier(v)?,
        };
        let (prog, key, program_hit) = self
            .get_or_parse(source, &req.opts)
            .map_err(|d| (422, d.render(source)))?;
        let mut r = AccRunner::from_shared(prog, req.opts.clone(), req.dims, Device::default());
        r.set_source(source);
        r.set_region_cache(Arc::clone(&self.regions), key);
        driver::execute(&mut r, &req, profile).map_err(|e| (422, e.to_string()))?;
        let body = if profile {
            r.profile_json()
        } else {
            driver::results_json(&r)
        };
        let cache = obj(vec![
            ("program_hit", Json::Bool(program_hit)),
            ("session_compiles", Json::Num(r.compiles() as f64)),
        ]);
        Ok((body, cache))
    }
}

fn err_body(msg: &str) -> String {
    obj(vec![("error", Json::Str(msg.into()))]).to_string()
}

fn req_source(v: &Json) -> Result<&str, (u16, String)> {
    v.get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| (400, "missing required string field `source`".into()))
}

fn req_bool(v: &Json, field: &str) -> Result<Option<bool>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(b) => b
            .as_bool()
            .map(Some)
            .ok_or_else(|| (400, format!("field `{field}` must be a boolean"))),
    }
}

/// Numeric request fields go through the *same* validation as the CLI
/// flags (`uhacc_core::flags::parse_count`): a string or a number is
/// accepted, anything malformed gets the identical rendered diagnostic.
fn req_count(v: &Json, field: &str) -> Result<Option<u64>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => uhacc_core::flags::parse_count(field, &x.literal())
            .map(Some)
            .map_err(|e| (400, e)),
    }
}

fn req_count_u32(v: &Json, field: &str) -> Result<Option<u32>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => parse_count_u32(field, &x.literal())
            .map(Some)
            .map_err(|e| (400, e)),
    }
}

/// Optional report-format field, validated exactly like the CLI's
/// `--certify=FMT` value (same parser, same rendered diagnostic) — a
/// malformed format is a semantically invalid request: HTTP 422, like
/// a source that fails to parse.
fn req_report_format(
    v: &Json,
    field: &str,
) -> Result<Option<uhacc_core::flags::ReportFormat>, (u16, String)> {
    match v.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => match x.as_str() {
            Some(s) => uhacc_core::flags::parse_report_format(field, s)
                .map(Some)
                .map_err(|e| (422, e)),
            None => Err((422, format!("field `{field}` must be a string"))),
        },
    }
}

/// Optional `exec_tier` field, validated exactly like the CLI's
/// `--exec-tier` flag (same parser, same rendered diagnostic).
fn req_exec_tier(v: &Json) -> Result<gpsim::ExecTier, (u16, String)> {
    match v.get("exec_tier") {
        None | Some(Json::Null) => Ok(gpsim::ExecTier::Auto),
        Some(x) => match x.as_str() {
            Some(s) => s.parse().map_err(|e: String| (400, e)),
            None => Err((400, "field `exec_tier` must be a string".into())),
        },
    }
}

fn req_compiler(v: &Json) -> Result<Compiler, (u16, String)> {
    match v.get("compiler") {
        None | Some(Json::Null) => Ok(Compiler::OpenUH),
        Some(c) => match c.as_str() {
            Some("openuh") => Ok(Compiler::OpenUH),
            Some("pgi") => Ok(Compiler::PgiLike),
            Some("caps") => Ok(Compiler::CapsLike),
            _ => Err((
                400,
                format!("field `compiler` must be one of openuh | pgi | caps, got {c}"),
            )),
        },
    }
}

fn req_dims(v: &Json) -> Result<LaunchDims, (u16, String)> {
    match v.get("dims") {
        None | Some(Json::Null) => Ok(LaunchDims::paper()),
        Some(d) => {
            let items = d.as_arr().filter(|a| a.len() == 3).ok_or_else(|| {
                (
                    400,
                    "field `dims` must be a 3-element array [gangs, workers, vector]".to_string(),
                )
            })?;
            let mut nums = [0u32; 3];
            for (i, item) in items.iter().enumerate() {
                nums[i] = parse_count_u32("dims", &item.literal()).map_err(|e| (400, e))?;
            }
            Ok(LaunchDims {
                gangs: nums[0],
                workers: nums[1],
                vector: nums[2],
            })
        }
    }
}

fn req_emit(v: &Json) -> Result<EmitFlags, (u16, String)> {
    let mut emit = EmitFlags::default();
    if let Some(e) = v.get("emit") {
        if matches!(e, Json::Null) {
            // keep defaults
        } else {
            let items = e.as_arr().ok_or_else(|| {
                (
                    400,
                    "field `emit` must be an array of hir | kernel | plan | all".to_string(),
                )
            })?;
            emit.hir = false;
            emit.kernel = false;
            emit.plan = false;
            for item in items {
                match item.as_str() {
                    Some("hir") => emit.hir = true,
                    Some("kernel") => emit.kernel = true,
                    Some("plan") => emit.plan = true,
                    Some("all") => {
                        emit.hir = true;
                        emit.kernel = true;
                        emit.plan = true;
                    }
                    _ => {
                        return Err((
                            400,
                            format!(
                                "invalid emit entry {item}: expected hir | kernel | plan | all"
                            ),
                        ))
                    }
                }
            }
        }
    }
    if let Some(b) = req_bool(v, "verify")? {
        emit.verify = b;
    }
    Ok(emit)
}

/// Accept loop: every connection becomes one FIFO job on the shared
/// worker pool. Blocks forever (until the listener errors).
pub fn serve(daemon: Arc<Daemon>, listener: TcpListener, pool: Arc<WorkerPool>) {
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let daemon = Arc::clone(&daemon);
        pool.submit(move || {
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(120)));
            match read_request(&mut stream) {
                Ok(Some(req)) => {
                    let (status, body) = daemon.handle(&req);
                    let _ = write_response(&mut stream, status, body.as_bytes());
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = write_response(
                        &mut stream,
                        400,
                        err_body(&format!("bad request: {e}")).as_bytes(),
                    );
                }
            }
        });
    }
}

/// Bind `addr`, spawn the accept loop on a background thread, and return
/// the bound address (useful with port 0) plus the daemon handle.
/// Used by `--loadgen --spawn`, the end-to-end tests, and CI.
pub fn spawn(cfg: DaemonConfig, addr: &str) -> std::io::Result<(SocketAddr, Arc<Daemon>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let daemon = Daemon::new(cfg.clone());
    let pool = Arc::new(WorkerPool::new(cfg.workers));
    let d = Arc::clone(&daemon);
    // Thread spawn can fail (e.g. under resource limits); surface it as
    // an io::Error like bind failures, so callers render a diagnostic
    // instead of the process aborting on a panic.
    std::thread::Builder::new()
        .name("uhaccd-accept".into())
        .spawn(move || serve(d, listener, pool))?;
    Ok((local, daemon))
}
