//! Concurrency property: N sessions through the shared worker pool
//! produce results, stats, and profile JSON **byte-identical** to the
//! same requests issued sequentially — across random request mixes,
//! problem sizes, and worker counts.
//!
//! This is the service-level extension of the runtime's determinism
//! guarantee (see `accrt/tests/parallel_determinism.rs`): sharing
//! `Arc<AnalyzedProgram>` and `Arc<CompiledRegion>` across concurrent
//! sessions must not introduce any observable coupling between them.

use proptest::prelude::*;
use uhaccd::http;
use uhaccd::json::Json;
use uhaccd::{service, DaemonConfig};

const SOURCES: [&str; 3] = [
    // gang+vector int sum
    "int N; int s;\nint a[N];\ns = 0;\n#pragma acc parallel loop gang vector \
     reduction(+:s) copyin(a)\nfor (int i = 0; i < N; i++) { s += a[i]; }\n",
    // gang+worker+vector double sum (rounding-order sensitive)
    "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel loop gang worker \
     vector reduction(+:s) copyin(a)\nfor (int i = 0; i < N; i++) { s += a[i]; }\n",
    // min+max pair
    "int N; int lo; int hi;\nint a[N];\nlo = 2147483647;\nhi = -2147483648;\n#pragma acc \
     parallel loop gang vector reduction(min:lo) reduction(max:hi) copyin(a)\nfor (int i = \
     0; i < N; i++) { lo = min(lo, a[i]); hi = max(hi, a[i]); }\n",
];

#[derive(Debug, Clone)]
struct Req {
    path: &'static str,
    body: String,
}

fn make_req(source_idx: usize, profile: bool, n: u64) -> Req {
    let src = Json::Str(SOURCES[source_idx % SOURCES.len()].into());
    Req {
        path: if profile { "/profile" } else { "/run" },
        body: format!("{{\"source\":{src},\"n\":{n}}}"),
    }
}

fn post_ok(addr: std::net::SocketAddr, req: &Req) -> String {
    let (status, body) = http::post(addr, req.path, &req.body).expect("transport");
    assert_eq!(status, 200, "{} -> {body}", req.path);
    body
}

/// Issue `reqs` strictly one at a time, then again from `reqs.len()`
/// threads at once against a multi-worker daemon, and require every
/// response pair to be byte-identical.
fn concurrent_equals_sequential(reqs: &[Req], workers: usize) {
    let (addr, _daemon) = service::spawn(
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    let sequential: Vec<String> = reqs.iter().map(|r| post_ok(addr, r)).collect();

    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| scope.spawn(move || post_ok(addr, r)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (seq, conc)) in sequential.iter().zip(&concurrent).enumerate() {
        // The cache annotation legitimately differs (the sequential pass
        // warmed the caches); the payload must not.
        let strip = |s: &str| {
            let v = uhaccd::json::parse(s).expect("response JSON");
            match v {
                Json::Obj(fields) => {
                    Json::Obj(fields.into_iter().filter(|(k, _)| k != "cache").collect())
                        .to_string()
                }
                other => other.to_string(),
            }
        };
        assert_eq!(
            strip(seq),
            strip(conc),
            "request {i} ({}) diverged between sequential and concurrent service",
            reqs[i].path
        );
    }
}

#[test]
fn mixed_burst_is_deterministic() {
    // A fixed 12-request burst mixing all sources, both endpoints, and
    // several sizes, against 4 workers.
    let mut reqs = Vec::new();
    for i in 0..12usize {
        reqs.push(make_req(i, i % 3 == 0, 500 + 700 * (i as u64 % 4)));
    }
    concurrent_equals_sequential(&reqs, 4);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn random_burst_is_deterministic(
        picks in proptest::collection::vec((0usize..3, any::<bool>(), 64u64..4096), 3..9),
        workers in 2usize..5,
    ) {
        let reqs: Vec<Req> = picks
            .into_iter()
            .map(|(s, p, n)| make_req(s, p, n))
            .collect();
        concurrent_equals_sequential(&reqs, workers);
    }
}
