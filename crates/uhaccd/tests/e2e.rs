//! End-to-end tests over real TCP: spawn the daemon on an ephemeral
//! port, drive every endpoint, and pin the two headline guarantees —
//!
//! 1. **Byte-identity**: `/compile`, `/run`, `/profile`, and `/lint`
//!    bodies match the single-shot `uhacc::driver` outputs (what
//!    `uhacc-cc` prints) exactly.
//! 2. **Counter-verified caching**: a repeated identical request is a
//!    program-cache *and* artifact-cache hit — the response says so, the
//!    `/health` counters say so, and the warm session performed zero
//!    region compilations.

use uhacc::driver::{self, EmitFlags, RunRequest};
use uhacc_core::{CompilerOptions, LaunchDims};
use uhaccd::http;
use uhaccd::json::{parse, Json};
use uhaccd::{service, DaemonConfig};

const SRC: &str = "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel loop \
                   gang vector reduction(+:s) copyin(a)\nfor (int i = 0; i < N; i++) { s \
                   += a[i]; }\n";

fn spawn_daemon(workers: usize) -> std::net::SocketAddr {
    let (addr, _daemon) = service::spawn(
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    addr
}

fn src_json() -> String {
    Json::Str(SRC.into()).to_string()
}

#[test]
fn health_reports_workers_and_counters() {
    let addr = spawn_daemon(3);
    let (status, body) = http::get(addr, "/health").unwrap();
    assert_eq!(status, 200, "{body}");
    let v = parse(&body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("workers").and_then(Json::as_f64), Some(3.0));
    assert!(v.get("programs").is_some());
    assert!(v.get("regions").is_some());
}

#[test]
fn run_body_matches_cli_driver_byte_for_byte() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{},\"n\":1000}}", src_json());
    let (status, resp) = http::post(addr, "/run", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = parse(&resp).unwrap();
    // `results` was spliced raw; re-extract it as a substring to avoid
    // any reserialization: find the exact driver output inside the body.
    let want = driver::run_json(
        SRC,
        &RunRequest {
            n: 1000,
            ..RunRequest::default()
        },
        |_| {},
    )
    .unwrap();
    assert!(
        resp.contains(&format!("\"results\":{want}")),
        "daemon /run body does not embed the CLI --run output verbatim:\n{resp}\nwant: {want}"
    );
    // And semantic sanity: the reduction result is present.
    assert!(v.get("results").is_some());
}

#[test]
fn profile_body_matches_cli_driver_byte_for_byte() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{},\"n\":512}}", src_json());
    let (status, resp) = http::post(addr, "/profile", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let want = driver::profile_json(
        SRC,
        &RunRequest {
            n: 512,
            ..RunRequest::default()
        },
        |_| {},
    )
    .unwrap();
    assert!(
        resp.contains(&format!("\"profile\":{want}")),
        "daemon /profile body does not embed the CLI --profile=json output verbatim"
    );
}

#[test]
fn compile_text_matches_cli_driver() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{},\"verify\":true}}", src_json());
    let (status, resp) = http::post(addr, "/compile", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = parse(&resp).unwrap();
    let got_text = v.get("text").and_then(Json::as_str).unwrap();

    let hir = accparse::compile(SRC).unwrap();
    let opts = CompilerOptions::openuh();
    let emit = EmitFlags {
        verify: true,
        ..EmitFlags::default()
    };
    let want = driver::compile_text(
        &hir,
        LaunchDims::paper(),
        "OpenUH",
        emit,
        &driver::direct_compiler(&hir, &opts),
    )
    .unwrap();
    assert_eq!(got_text, want.text, "daemon /compile text differs from CLI");
    assert_eq!(
        v.get("verify_errors").and_then(Json::as_f64),
        Some(want.verify_errors as f64)
    );
}

#[test]
fn lint_diagnostics_match_cli_json() {
    use accparse::diag::diags_to_json;
    // A source that lints dirty: reduction clause stripped.
    let dirty = "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel loop gang \
                 vector copyin(a)\nfor (int i = 0; i < N; i++) { s += a[i]; }\n";
    let addr = spawn_daemon(1);
    let body = format!("{{\"source\":{}}}", Json::Str(dirty.into()));
    let (status, resp) = http::post(addr, "/lint", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let (_, findings) = accparse::lint_source(dirty).unwrap();
    let diags: Vec<accparse::Diag> = findings.into_iter().map(|f| f.diag).collect();
    let want = diags_to_json(&diags, dirty);
    assert!(
        !diags.is_empty(),
        "expected lint findings for stripped clause"
    );
    assert!(
        resp.contains(&format!("\"diagnostics\":{want}")),
        "daemon /lint diagnostics differ from `uhacc-cc --lint --json`:\n{resp}\nwant: {want}"
    );
    // The envelope version is spliced from the same constant the CLI
    // prints, so clients can pin one schema for both surfaces.
    assert!(
        resp.contains(&format!(
            "\"schema_version\":{}",
            accparse::diag::LINT_SCHEMA_VERSION
        )),
        "{resp}"
    );
}

#[test]
fn analyze_matches_cli_fusion_plan_json() {
    // Two cascaded reductions forming a fusable chain.
    let chain = "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
                 #pragma acc parallel copyin(a)\n{\n\
                 #pragma acc loop gang reduction(+:s)\n\
                 for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
                 #pragma acc parallel copyin(a)\n{\n\
                 #pragma acc loop gang reduction(+:v)\n\
                 for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}";
    let addr = spawn_daemon(1);
    let body = format!("{{\"source\":{}}}", Json::Str(chain.into()));
    let (status, resp) = http::post(addr, "/analyze", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let want = driver::analyze_json(&accparse::compile(chain).unwrap());
    assert!(
        resp.contains(&format!("\"analysis\":{want}")),
        "daemon /analyze differs from `uhacc-cc --fusion-plan=json`:\n{resp}\nwant: {want}"
    );
    assert!(resp.contains("\"chains\":[[0,1]]"), "{resp}");

    // A source that fails to compile is a 422, like every other endpoint.
    let bad = format!("{{\"source\":{}}}", Json::Str("int ;".into()));
    let (status, resp) = http::post(addr, "/analyze", &bad).unwrap();
    assert_eq!(status, 422, "{resp}");
}

#[test]
fn verify_endpoint_reports_clean_kernel() {
    let addr = spawn_daemon(1);
    let body = format!("{{\"source\":{}}}", src_json());
    let (status, resp) = http::post(addr, "/verify", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("verify_errors").and_then(Json::as_f64), Some(0.0));
    assert!(v
        .get("text")
        .and_then(Json::as_str)
        .unwrap()
        .contains("static verification"));
}

#[test]
fn repeated_request_is_counter_verified_cache_hit() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{},\"verify\":true}}", src_json());

    // Cold: program miss, real region compiles.
    let (_, cold) = http::post(addr, "/compile", &body).unwrap();
    let cold = parse(&cold).unwrap();
    let cc = cold.get("cache").unwrap();
    assert_eq!(cc.get("program_hit").and_then(Json::as_bool), Some(false));
    assert!(cc.get("region_compiles").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(cc.get("region_hits").and_then(Json::as_f64), Some(0.0));

    // Warm: program hit, zero compiles, all artifact hits.
    let (_, warm) = http::post(addr, "/compile", &body).unwrap();
    let warm = parse(&warm).unwrap();
    let wc = warm.get("cache").unwrap();
    assert_eq!(wc.get("program_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(wc.get("region_compiles").and_then(Json::as_f64), Some(0.0));
    assert!(wc.get("region_hits").and_then(Json::as_f64).unwrap() >= 1.0);

    // Identical rendered text either way.
    assert_eq!(
        cold.get("text").and_then(Json::as_str),
        warm.get("text").and_then(Json::as_str)
    );

    // /run on the same (source, options): the parse is skipped (program
    // cache hit from /compile). The first /run still compiles once — the
    // runtime resolves this region's dims to (192,1,128), a different
    // artifact than /compile's requested (192,8,128) — but the second
    // /run is a full warm hit: zero parses, zero compiles in-session.
    let run_body = format!("{{\"source\":{},\"n\":256}}", src_json());
    let (_, r1) = http::post(addr, "/run", &run_body).unwrap();
    let r1 = parse(&r1).unwrap();
    let r1c = r1.get("cache").unwrap();
    assert_eq!(r1c.get("program_hit").and_then(Json::as_bool), Some(true));
    assert!(r1c.get("session_compiles").and_then(Json::as_f64).unwrap() >= 1.0);

    let (_, r2) = http::post(addr, "/run", &run_body).unwrap();
    let r2 = parse(&r2).unwrap();
    let r2c = r2.get("cache").unwrap();
    assert_eq!(r2c.get("program_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(
        r2c.get("session_compiles").and_then(Json::as_f64),
        Some(0.0),
        "warm /run must not compile: artifacts were cached by the first /run"
    );
    // And the two runs' payloads are byte-identical.
    assert_eq!(
        r1.get("results").map(Json::to_string),
        r2.get("results").map(Json::to_string)
    );

    // /health shows the hits.
    let (_, health) = http::get(addr, "/health").unwrap();
    let h = parse(&health).unwrap();
    let prog_hits = h
        .get("programs")
        .and_then(|p| p.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    let region_hits = h
        .get("regions")
        .and_then(|p| p.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(prog_hits >= 2.0, "health: {health}");
    assert!(region_hits >= 1.0, "health: {health}");
}

#[test]
fn validation_errors_are_strict_and_rendered() {
    let addr = spawn_daemon(1);

    // Garbage JSON.
    let (status, resp) = http::post(addr, "/run", "{not json").unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("invalid JSON"));

    // Missing source.
    let (status, resp) = http::post(addr, "/run", "{}").unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("source"));

    // Garbage numeric field: same diagnostic the CLI renders for flags.
    let body = format!("{{\"source\":{},\"n\":\"bogus\"}}", src_json());
    let (status, resp) = http::post(addr, "/run", &body).unwrap();
    assert_eq!(status, 400, "{resp}");
    assert!(
        resp.contains("invalid value for n: expected a non-negative integer, got `bogus`"),
        "{resp}"
    );

    // Negative and fractional numbers are rejected the same way.
    let body = format!("{{\"source\":{},\"host_threads\":-2}}", src_json());
    let (status, resp) = http::post(addr, "/run", &body).unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("invalid value for host_threads"), "{resp}");

    let body = format!("{{\"source\":{},\"dims\":[192,8]}}", src_json());
    let (status, resp) = http::post(addr, "/run", &body).unwrap();
    assert_eq!(status, 400);
    assert!(resp.contains("dims"), "{resp}");

    // Unknown endpoint / bad method.
    let (status, _) = http::post(addr, "/nope", "{}").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http::request(addr, "DELETE", "/run", "").unwrap();
    assert_eq!(status, 405);

    // A program error is 422, with the rendered front-end diagnostic.
    let bad_src = "int N;\n#pragma acc parallel loop\nfor (int i = 0; i < N; i++) { x += 1; }\n";
    let body = format!("{{\"source\":{}}}", Json::Str(bad_src.into()));
    let (status, resp) = http::post(addr, "/run", &body).unwrap();
    assert_eq!(status, 422, "{resp}");
    assert!(resp.contains("error"), "{resp}");
}

#[test]
fn certify_body_matches_cli_driver_byte_for_byte() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{}}}", src_json());
    let (status, resp) = http::post(addr, "/certify", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let want = driver::cert_reports_json(
        &driver::certify_reports(
            SRC,
            &RunRequest {
                dims: driver::certify_dims(),
                ..RunRequest::default()
            },
            |_| {},
        )
        .unwrap(),
    );
    assert!(
        resp.contains(&format!("\"certification\":{want}")),
        "daemon /certify body does not embed the CLI --certify=json output verbatim:\n{resp}\nwant: {want}"
    );
    let v = parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn certify_text_format_and_format_validation() {
    let addr = spawn_daemon(2);
    let body = format!("{{\"source\":{},\"format\":\"text\"}}", src_json());
    let (status, resp) = http::post(addr, "/certify", &body).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = parse(&resp).unwrap();
    let txt = v.get("text").and_then(Json::as_str).unwrap();
    assert!(
        txt.contains("CERTIFIED (modulo FP reassociation)"),
        "double `+` reduction should certify modulo reassociation:\n{txt}"
    );

    // Garbage format: HTTP 422 with the same rendered diagnostic the CLI
    // prints for `--certify=yaml` (both go through `parse_report_format`).
    let body = format!("{{\"source\":{},\"format\":\"yaml\"}}", src_json());
    let (status, resp) = http::post(addr, "/certify", &body).unwrap();
    assert_eq!(status, 422, "{resp}");
    assert!(resp.contains("expected `text` or `json`"), "{resp}");
}
