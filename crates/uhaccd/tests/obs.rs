//! End-to-end observability tests: the `/metrics` exposition pinned
//! byte-for-byte under the virtual clock, the unified `/trace` timeline
//! (request spans + device tracks), protocol-level HTTP rejections over
//! a real socket, the extended `/health` shape, and the slow-request
//! counter.
//!
//! Regenerate the metrics golden after an intentional change with:
//!
//! ```console
//! UPDATE_GOLDEN=1 cargo test -p uhaccd --test obs
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use uhaccd::http;
use uhaccd::json::Json;
use uhaccd::{service, DaemonConfig};

const SRC: &str = "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel loop \
                   gang vector reduction(+:s) copyin(a)\nfor (int i = 0; i < N; i++) { s \
                   += a[i]; }\n";

/// One worker + virtual clock: every observability byte the daemon
/// emits is a deterministic function of the request sequence.
fn spawn_virtual() -> std::net::SocketAddr {
    let (addr, _daemon) = service::spawn(
        DaemonConfig {
            workers: 1,
            virtual_clock: true,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    addr
}

fn run_body(n: u64) -> String {
    format!("{{\"source\":{},\"n\":{n}}}", Json::Str(SRC.into()))
}

fn post_ok(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    let (status, body) = http::post(addr, path, body).expect("post");
    assert_eq!(status, 200, "{path}: {body}");
    body
}

fn golden_check(name: &str, got: &str, golden: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    assert_eq!(
        got, golden,
        "{name}: exposition drifted from tests/golden/{name} \
         (UPDATE_GOLDEN=1 to regenerate after an intentional change)"
    );
}

/// A fixed sequential request sequence against a single-worker daemon on
/// the virtual clock produces a byte-identical Prometheus exposition:
/// every counter is a deterministic simulator/cache fact and every
/// histogram value is a deterministic count of clock ticks.
#[test]
fn metrics_exposition_is_pinned_under_virtual_clock() {
    let addr = spawn_virtual();
    post_ok(addr, "/run", &run_body(2048)); // cold: parse + codegen
    post_ok(addr, "/run", &run_body(2048)); // warm: cache hits only
    post_ok(
        addr,
        "/compile",
        &format!("{{\"source\":{}}}", Json::Str(SRC.into())),
    );
    let (status, _) = http::get(addr, "/health").expect("health");
    assert_eq!(status, 200);

    let (status, text) = http::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    golden_check(
        "metrics.golden.txt",
        &text,
        include_str!("golden/metrics.golden.txt"),
    );

    // Independent of the golden: the exposition must parse strictly and
    // carry the advertised series.
    let samples = uhobs::metrics::parse_exposition(&text).expect("valid exposition");
    for name in [
        "uhaccd_requests_total",
        "uhaccd_request_duration_us_count",
        "uhaccd_queue_wait_us_count",
        "uhaccd_compile_duration_us_count",
        "uhaccd_program_cache_hits_total",
        "uhaccd_program_cache_misses_total",
        "uhaccd_region_compiles_total",
        "uhaccd_sim_instructions_total",
        "uhaccd_pool_workers",
        "uhaccd_queue_depth",
    ] {
        assert!(
            samples.iter().any(|s| s.name == name),
            "missing series {name}"
        );
    }
    // Two /run of the same source: one parse, one program-cache hit.
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap()
    };
    assert_eq!(value("uhaccd_program_parses_total"), 1.0);
    assert_eq!(value("uhaccd_program_cache_hits_total"), 2.0);
    assert!(value("uhaccd_sim_instructions_total") > 0.0);
}

/// `/trace` returns one Chrome/Perfetto file holding both the request
/// track (pid 100: queue.wait → http.parse → cache.lookup → exec with
/// per-region phases → render → request) and the device stream/SM
/// tracks spliced in by the `/profile` execution, remapped to the
/// request's own pid pair and labelled with its trace id.
#[test]
fn trace_unifies_request_and_device_tracks() {
    let addr = spawn_virtual();
    post_ok(addr, "/profile", &run_body(1024));

    let (status, trace) = http::get(addr, "/trace").expect("trace");
    assert_eq!(status, 200);
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");

    // Request-track spans under REQUEST_PID.
    assert!(trace.contains("\"pid\":100"), "request track missing");
    for span in [
        "queue.wait",
        "http.parse",
        "cache.lookup",
        "codegen.region0",
        "h2d.region0",
        "launch.region0",
        "d2h.region0",
        "exec",
        "render",
        "request",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "missing span {span}"
        );
    }
    // The /profile request is the first traced request → trace id 1 →
    // device pid pair DEVICE_PID_BASE + 2 = (1002, 1003), labelled with
    // the request id.
    assert!(
        trace.contains("\"pid\":1002"),
        "device stream track missing"
    );
    assert!(trace.contains("\"pid\":1003"), "device SM track missing");
    assert!(
        trace.contains("req 1 accrt runtime"),
        "device track label missing"
    );
    assert!(trace.contains("req 1 gpsim SMs"), "SM track label missing");
    // Shared timebase: the device tracks are anchored at the exec span's
    // start, so no device event starts before it.
    assert!(trace.contains("\"name\":\"exec\""));
}

/// Raw-socket protocol rejections: an unparsable `Content-Length` is
/// answered with a 400 JSON diagnostic, oversized headers with 431 —
/// the connection is not just dropped.
#[test]
fn protocol_rejections_get_diagnostic_responses() {
    let addr = spawn_virtual();

    let raw_roundtrip = |payload: &str| -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(payload.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    };

    let resp = raw_roundtrip("POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 Bad Request"), "{resp}");
    assert!(resp.contains("invalid Content-Length: banana"), "{resp}");
    assert!(resp.contains("\"error\""), "diagnostic is JSON: {resp}");

    let mut huge = String::from("GET /health HTTP/1.1\r\n");
    for _ in 0..70 {
        huge.push_str(&format!("X-Pad: {}\r\n", "y".repeat(1000)));
    }
    huge.push_str("\r\n");
    let resp = raw_roundtrip(&huge);
    assert!(
        resp.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
        "{resp}"
    );
    assert!(resp.contains("headers too large"), "{resp}");

    // The rejections land in the metric families under the synthetic
    // `malformed` endpoint.
    let (_, text) = http::get(addr, "/metrics").expect("metrics");
    assert!(
        text.contains("uhaccd_requests_total{endpoint=\"malformed\",code=\"400\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("uhaccd_requests_total{endpoint=\"malformed\",code=\"431\"} 1"),
        "{text}"
    );
}

/// `/health` reports the crate version, uptime, the effective
/// configuration, and live pool statistics including queue-wait
/// aggregates.
#[test]
fn health_reports_version_uptime_config_and_pool() {
    let addr = spawn_virtual();
    post_ok(addr, "/run", &run_body(1024));
    let (status, body) = http::get(addr, "/health").expect("health");
    assert_eq!(status, 200);
    let h = uhaccd::json::parse(&body).expect("health json");

    assert_eq!(
        h.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(h.get("uptime_secs").and_then(Json::as_f64).is_some());

    let cfg = h.get("config").expect("config section");
    assert_eq!(cfg.get("workers").and_then(Json::as_f64), Some(1.0));
    assert_eq!(
        cfg.get("program_cache_cap").and_then(Json::as_f64),
        Some(64.0)
    );
    assert_eq!(cfg.get("exec_tier").and_then(Json::as_str), Some("auto"));
    assert!(cfg.get("host_threads").and_then(Json::as_f64).is_some());
    assert_eq!(cfg.get("virtual_clock").and_then(Json::as_bool), Some(true));
    assert!(matches!(cfg.get("slow_ms"), Some(Json::Null)));

    let pool = h.get("pool").expect("pool section");
    assert_eq!(pool.get("workers").and_then(Json::as_f64), Some(1.0));
    // /run + this /health's own dequeue have been measured.
    let wait_count = pool.get("wait_count").and_then(Json::as_f64).unwrap();
    assert!(wait_count >= 1.0, "wait_count = {wait_count}");
    assert!(pool.get("wait_mean_us").and_then(Json::as_f64).is_some());
    assert!(pool.get("wait_max_us").and_then(Json::as_f64).is_some());
}

/// Requests slower than the threshold increment
/// `uhaccd_slow_requests_total` (the structured stderr line rides the
/// same gate).
#[test]
fn slow_requests_are_counted_above_the_threshold() {
    let daemon = uhaccd::Daemon::new(DaemonConfig {
        workers: 1,
        virtual_clock: true,
        slow_ms: Some(1), // 1 ms = 1000 us threshold
        ..DaemonConfig::default()
    });
    daemon.finish_request("/run", 200, 5_000, 7); // over
    daemon.finish_request("/run", 200, 400, 8); // under
    let req = http::Request {
        method: "GET".into(),
        path: "/metrics".into(),
        body: Vec::new(),
    };
    let (status, text) = daemon.handle(&req);
    assert_eq!(status, 200);
    assert!(text.contains("uhaccd_slow_requests_total 1"), "{text}");
}
