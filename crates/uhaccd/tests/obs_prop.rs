//! Property tests for observability determinism, mirroring the
//! testsuite's `cert_prop.rs`: on the virtual clock, every exported
//! observability byte — the unified Chrome trace and the rendered
//! metric exposition — is a pure function of the work performed, not of
//! how the simulator executed it. Host thread count, execution tier,
//! and the hazard sanitizer are execution-side knobs; toggling them
//! must reproduce byte-identical exports.
//!
//! This holds because (a) the virtual clock counts *reads*, and every
//! instrumentation point performs a fixed number of reads per code
//! path, and (b) the profiler's device timeline is already pinned
//! execution-invariant by `gpsim`'s differential tests.

use accrt::AccRunner;
use gpsim::{Device, SanitizerLevel};
use proptest::prelude::*;
use std::sync::Arc;
use uhacc::driver::{self, RunRequest};
use uhacc_core::{CompilerOptions, LaunchDims};
use uhobs::metrics::LATENCY_BUCKETS_US;

/// Two regions, so the trace carries two codegen/h2d/launch/d2h phase
/// groups and the compile histogram sees two observations.
const SRC: &str = "int N; int s; int lo;\nint a[N];\ns = 0;\nlo = 2147483647;\n\
                   #pragma acc parallel loop gang vector reduction(+:s) copyin(a)\n\
                   for (int i = 0; i < N; i++) { s += a[i]; }\n\
                   #pragma acc parallel loop gang vector reduction(min:lo) copyin(a)\n\
                   for (int i = 0; i < N; i++) { lo = min(lo, a[i]); }\n";

/// Execution-side knobs that must not influence the exported bytes.
#[derive(Debug, Clone, Copy)]
struct ExecKnobs {
    host_threads: u32,
    exec_tier: gpsim::ExecTier,
    sanitizer: bool,
}

/// Run the fixed sequence (one profiled execution of `SRC`) under fresh
/// virtual-clock observability state and return the two exports.
fn observe(knobs: ExecKnobs) -> (String, String) {
    let clock = Arc::new(uhobs::Clock::virtual_clock(uhobs::clock::VIRTUAL_STEP_US));
    let tracer = Arc::new(uhobs::Tracer::new(Arc::clone(&clock), "obs-prop"));
    let registry = uhobs::Registry::new();
    let compile_hist = registry.histogram(
        "compile_duration_us",
        "region codegen time (us)",
        &[],
        LATENCY_BUCKETS_US,
    );
    let req = RunRequest {
        opts: CompilerOptions::openuh(),
        dims: LaunchDims {
            gangs: 4,
            workers: 4,
            vector: 32,
        },
        n: 2048,
        host_threads: knobs.host_threads,
        exec_tier: knobs.exec_tier,
    };
    let mut r = AccRunner::with_options(SRC, req.opts.clone(), req.dims, Device::default())
        .expect("fixed program compiles");
    if knobs.sanitizer {
        r.sanitize(SanitizerLevel::Full);
    }
    let trace_id = tracer.mint_trace_id();
    tracer.set_track_name(trace_id, "fixed profiled run");
    driver::execute_traced(
        &mut r,
        &req,
        true,
        &tracer,
        trace_id,
        Some(compile_hist.clone()),
    )
    .expect("fixed program runs");
    assert_eq!(
        compile_hist.count(),
        2,
        "one codegen observation per region"
    );
    (tracer.to_chrome_trace(), registry.render())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Same work, any execution-side configuration → byte-identical
    /// trace and metrics exports.
    #[test]
    fn exports_are_execution_invariant(
        host_threads in prop::sample::select(vec![1u32, 4]),
        tier in prop::sample::select(vec![
            gpsim::ExecTier::Auto,
            gpsim::ExecTier::Interpret,
            gpsim::ExecTier::Compiled,
        ]),
        sanitizer in any::<bool>(),
    ) {
        let (base_trace, base_metrics) = observe(ExecKnobs {
            host_threads: 1,
            exec_tier: gpsim::ExecTier::Auto,
            sanitizer: false,
        });
        let (trace, metrics) = observe(ExecKnobs { host_threads, exec_tier: tier, sanitizer });
        prop_assert_eq!(&trace, &base_trace, "trace drifted under execution knobs");
        prop_assert_eq!(&metrics, &base_metrics, "metrics drifted under execution knobs");
        prop_assert!(base_trace.contains("\"name\":\"codegen.region1\""), "second region traced");
        prop_assert!(base_metrics.contains("compile_duration_us_count 2"), "histogram rendered");
    }
}
