//! Regenerate the paper's tables and figures as text, with the paper's
//! reported values alongside for comparison.
//!
//! Usage: `make-figures [table2|fig11|fig12a|fig12b|fig12c|ablations|profile|sim-throughput|all]`

use acc_baselines::Compiler;
use acc_testsuite::Position;
use acc_testsuite::{
    format_fig11, format_summary, format_table2, profile_case, run_suite, time_case, SuiteConfig,
};
use accparse::ast::{CType, RedOp};
use uhacc_bench::*;
use uhacc_core::{
    CombineSpace, CompilerOptions, LaunchDims, Schedule, TreeStyle, VectorLayout, WorkerStrategy,
};

fn fmt_ms(ms: Option<f64>) -> String {
    match ms {
        Some(v) => format!("{v:.3}"),
        None => "F".to_string(),
    }
}

fn print_points(points: &[CompilerMs]) {
    for (c, ms) in points {
        print!("  {}={}", c.name(), fmt_ms(*ms));
    }
    println!();
}

fn table2(red_n: usize) {
    let cfg = SuiteConfig {
        red_n,
        ..Default::default()
    };
    let ops = [RedOp::Add, RedOp::Mul];
    let dtypes = [CType::Int, CType::Float, CType::Double];
    eprintln!("[table2] running the reduction testsuite (red_n = {red_n}) ...");
    let results = run_suite(&Compiler::all(), &ops, &dtypes, &cfg);
    println!("{}", format_table2(&results, &ops, &dtypes));
    println!("{}", format_summary(&results));
    println!(
        "paper (K20c, red loop = 1M): OpenUH passed all; PGI F on worker/vector/gang-worker\n\
         `+` and CE on gang-worker-vector; CAPS F on the `+` RMP rows. Reproduced above.\n"
    );
}

fn fig11(red_n: usize) {
    let cfg = SuiteConfig {
        red_n,
        ..Default::default()
    };
    let ops = [RedOp::Add, RedOp::Mul];
    let dtypes = [CType::Int, CType::Float, CType::Double];
    eprintln!("[fig11] running the reduction testsuite (red_n = {red_n}) ...");
    let results = run_suite(&Compiler::all(), &ops, &dtypes, &cfg);
    println!("{}", format_fig11(&results, &ops, &dtypes));
}

fn fig12a() {
    println!("Figure 12(a): 2D heat equation, max-reduction time (ms) per grid size");
    println!("paper: grid 128..512, OpenUH always faster than PGI; CAPS failed to converge");
    for n in [128usize, 256, 384, 512] {
        // Fixed iteration count so sizes are comparable (the paper runs to
        // convergence; modelled time per iteration is what accumulates).
        let iters = 20;
        print!("  grid {n:>4} ({iters} iters):");
        print_points(&fig12a_point(n, iters));
    }
    println!();
}

fn fig12b() {
    println!("Figure 12(b): matrix multiplication kernel time (ms) per size");
    println!("paper: OpenUH more than 2x faster than CAPS; PGI bar missing (failed vector +)");
    for n in [64usize, 128, 192, 256] {
        print!("  n {n:>4}:");
        print_points(&fig12b_point(n));
    }
    println!();
}

fn fig12c() {
    println!("Figure 12(c): Monte Carlo PI kernel time (ms) per sample count");
    println!("paper: 1/2/4 GB of points; OpenUH slightly faster than CAPS, much faster than PGI");
    for samples in [1usize << 18, 1 << 19, 1 << 20] {
        print!("  samples {samples:>8}:");
        print_points(&fig12c_point(samples));
    }
    println!();
}

fn ablations() {
    let dims = LaunchDims {
        gangs: 8,
        workers: 8,
        vector: 128,
    };
    let ni = 32 * 1024;
    println!("Ablations (vector `+` reduction over {ni} ints x 8 workers x 8 gangs):\n");
    let base = CompilerOptions::openuh();
    let cases: Vec<(&str, CompilerOptions)> = vec![
        (
            "OpenUH defaults (window, Fig. 6c, unrolled, shared)",
            base.clone(),
        ),
        (
            "Fig. 6b transposed layout",
            CompilerOptions {
                vector_layout: VectorLayout::Transposed,
                ..base.clone()
            },
        ),
        (
            "blocking schedule",
            CompilerOptions {
                schedule: Schedule::Blocking,
                ..base.clone()
            },
        ),
        (
            "looped tree (barrier/step)",
            CompilerOptions {
                tree: TreeStyle::Looped,
                ..base.clone()
            },
        ),
        (
            "global-memory staging",
            CompilerOptions {
                combine_space: CombineSpace::Global,
                ..base.clone()
            },
        ),
    ];
    for (label, opts) in cases {
        let (ms, st) = ablation_vector_case(opts, dims, ni);
        println!(
            "  {label:<50} {ms:>8.3} ms   tx/access {:>6.2}   bank-ways {:>5.2}",
            st.totals.transactions_per_access().unwrap_or(f64::NAN),
            st.totals.conflict_ways_per_access().unwrap_or(f64::NAN)
        );
    }
    println!("\nCombine-heavy layout ablation (Fig. 6b vs 6c, small rows x many combines):\n");
    for (label, layout) in [
        ("Fig. 6c row-wise (OpenUH)", VectorLayout::RowWise),
        ("Fig. 6b transposed", VectorLayout::Transposed),
    ] {
        let opts = CompilerOptions {
            vector_layout: layout,
            ..CompilerOptions::openuh()
        };
        let (ms, st) = ablation_vector_combine_heavy(opts, dims);
        println!(
            "  {label:<50} {ms:>8.3} ms   bank-ways {:>5.2}",
            st.totals.conflict_ways_per_access().unwrap_or(f64::NAN)
        );
    }
    println!("\nWorker-strategy ablation (Fig. 8b vs 8c), worker `+` reduction, 2048 combines:\n");
    for (label, ws) in [
        ("Fig. 8c first-row (OpenUH)", WorkerStrategy::FirstRow),
        ("Fig. 8b duplicate rows", WorkerStrategy::DuplicateRows),
    ] {
        let opts = CompilerOptions {
            worker_strategy: ws,
            ..CompilerOptions::openuh()
        };
        let ms = ablation_worker_case(opts, dims, 512);
        println!("  {label:<50} {ms:>8.3} ms");
    }
    println!("\nGang-strategy ablation (§3.1.3 second kernel vs one atomic accumulator):\n");
    for gangs in [16u32, 64, 192] {
        let d = LaunchDims {
            gangs,
            workers: 1,
            vector: 128,
        };
        let two = ablation_gang_strategy(uhacc_core::GangStrategy::TwoKernel, d, 256 * 1024);
        let at = ablation_gang_strategy(uhacc_core::GangStrategy::Atomic, d, 256 * 1024);
        println!("  gangs {gangs:>4}: two-kernel {two:>8.3} ms   atomic {at:>8.3} ms");
    }
    println!("\nNon-power-of-2 vector sizes (§3.3): correctness holds, performance degrades:\n");
    for vector in [128u32, 96, 64, 48, 33] {
        let d = LaunchDims {
            gangs: 8,
            workers: 8,
            vector,
        };
        let (ms, _) = ablation_vector_case(CompilerOptions::openuh(), d, ni);
        println!("  vector_length {vector:>4} {ms:>38.3} ms");
    }
    println!();
}

/// Profile the canonical gang-worker-vector int `+` case and write the
/// stable JSON export to `BENCH_profile.json`, so CI accumulates a
/// machine-readable perf/attribution trajectory next to the figures.
fn profile(red_n: usize) {
    let cfg = SuiteConfig {
        red_n,
        ..Default::default()
    };
    eprintln!("[profile] profiling the gang-worker-vector int `+` case (red_n = {red_n}) ...");
    let pc = profile_case(
        Compiler::OpenUH,
        Position::GangWorkerVector,
        RedOp::Add,
        CType::Int,
        &cfg,
    )
    .expect("canonical case profiles cleanly");
    std::fs::write("BENCH_profile.json", &pc.json).expect("write BENCH_profile.json");
    print!("{}", pc.report);
    println!("wrote BENCH_profile.json ({} bytes)", pc.json.len());
}

/// Race the simulator execution tiers (reference interpreter vs the
/// compiled tier) on Table 2 workloads and write the measurements to
/// `BENCH_sim_throughput.json`. The committed copy is the regression
/// baseline: CI re-measures and fails if the compiled tier's speedup
/// ratio (which, unlike raw wall-clock, is roughly machine-independent)
/// regresses by more than 20%.
fn sim_throughput(red_n: usize) {
    use gpsim::ExecTier;
    let workloads: [(&str, Position, RedOp, CType); 3] = [
        (
            "gang_worker_vector_int_add",
            Position::GangWorkerVector,
            RedOp::Add,
            CType::Int,
        ),
        ("vector_int_add", Position::Vector, RedOp::Add, CType::Int),
        (
            "worker_double_add",
            Position::Worker,
            RedOp::Add,
            CType::Double,
        ),
    ];
    const REPS: usize = 3;
    eprintln!("[sim-throughput] racing interpret vs compiled tiers (red_n = {red_n}) ...");
    println!("Simulator instruction throughput: reference interpreter vs compiled tier");
    let mut rows = String::new();
    for (name, pos, op, t) in workloads {
        // Best-of-REPS per tier; a fresh session every rep so caches and
        // allocations don't carry over (setup time is excluded either way).
        let measure = |tier: ExecTier| -> (f64, u64) {
            let cfg = SuiteConfig {
                red_n,
                exec_tier: tier,
                ..Default::default()
            };
            let mut best = f64::INFINITY;
            let mut insts = 0;
            for _ in 0..REPS {
                let tc = time_case(Compiler::OpenUH, pos, op, t, &cfg)
                    .expect("throughput workloads run cleanly");
                best = best.min(tc.secs);
                insts = tc.lane_insts;
            }
            (best, insts)
        };
        let (int_secs, int_insts) = measure(ExecTier::Interpret);
        let (cmp_secs, cmp_insts) = measure(ExecTier::Compiled);
        assert_eq!(
            int_insts, cmp_insts,
            "{name}: tiers disagree on simulated instruction count"
        );
        let speedup = int_secs / cmp_secs;
        println!(
            "  {name:<28} {int_insts:>12} lane-insts  interpret {:>8.1} Minst/s  \
             compiled {:>8.1} Minst/s  speedup {speedup:>5.2}x",
            int_insts as f64 / int_secs / 1e6,
            int_insts as f64 / cmp_secs / 1e6,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{name}\", \"lane_insts\": {int_insts}, \
             \"interpret_secs\": {int_secs:.6}, \"compiled_secs\": {cmp_secs:.6}, \
             \"interpret_minsts_per_sec\": {:.2}, \"compiled_minsts_per_sec\": {:.2}, \
             \"speedup\": {speedup:.3}}}",
            int_insts as f64 / int_secs / 1e6,
            int_insts as f64 / cmp_secs / 1e6,
        ));
    }
    let json = format!(
        "{{\n  \"red_n\": {red_n},\n  \"reps\": {REPS},\n  \"workloads\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_sim_throughput.json", &json).expect("write BENCH_sim_throughput.json");
    println!("wrote BENCH_sim_throughput.json ({} bytes)\n", json.len());
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let red_n = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8192);
    match what.as_str() {
        "table2" => table2(red_n),
        "fig11" => fig11(red_n),
        "fig12a" => fig12a(),
        "fig12b" => fig12b(),
        "fig12c" => fig12c(),
        "ablations" => ablations(),
        "profile" => profile(red_n),
        "sim-throughput" => sim_throughput(red_n),
        "all" => {
            table2(red_n);
            fig11(red_n);
            fig12a();
            fig12b();
            fig12c();
            ablations();
            profile(red_n);
            sim_throughput(red_n);
        }
        other => {
            eprintln!(
                "unknown figure `{other}`; expected \
                 table2|fig11|fig12a|fig12b|fig12c|ablations|profile|sim-throughput|all"
            );
            std::process::exit(2);
        }
    }
}
