//! Criterion bench for Table 2: every reduction position under each
//! compiler personality (host wall time of the full simulated pipeline;
//! the modelled device times of the actual table come from
//! `make-figures table2`).

use acc_baselines::Compiler;
use acc_testsuite::run::{reference, run_case, CaseStatus, SuiteConfig};
use acc_testsuite::Position;
use accparse::ast::{CType, RedOp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let cfg = SuiteConfig {
        red_n: 2048,
        ..SuiteConfig::quick()
    };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for pos in Position::all() {
        let expected = reference(pos, RedOp::Add, CType::Int, &cfg);
        for compiler in Compiler::all() {
            // Skip combinations that fail (F/CE): the bench measures the
            // passing cells of the table.
            let probe = run_case(compiler, pos, RedOp::Add, CType::Int, &cfg, &expected);
            if !matches!(probe.status, CaseStatus::Pass { .. }) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(pos.label().replace(' ', "_"), compiler.name()),
                &(),
                |b, _| {
                    b.iter(|| {
                        let r = run_case(compiler, pos, RedOp::Add, CType::Int, &cfg, &expected);
                        assert!(matches!(r.status, CaseStatus::Pass { .. }));
                        r
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
