//! Criterion bench for Fig. 12: the three applications at several sizes
//! under the OpenUH options (host wall time; modelled device times come
//! from `make-figures fig12a|fig12b|fig12c`).

use acc_apps::heat2d::{run_heat, HeatConfig};
use acc_apps::matmul::{run_matmul, MatmulConfig};
use acc_apps::pi::{run_pi, PiConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use uhacc_core::CompilerOptions;

fn bench_heat(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12a_heat");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let cfg = HeatConfig {
                    n,
                    tol: 0.0,
                    max_iters: 3,
                    ..Default::default()
                };
                run_heat(&cfg, CompilerOptions::openuh()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12b_matmul");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                run_matmul(
                    &MatmulConfig {
                        n,
                        ..Default::default()
                    },
                    CompilerOptions::openuh(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_pi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12c_pi");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for samples in [1usize << 14, 1 << 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    run_pi(
                        &PiConfig {
                            samples,
                            ..Default::default()
                        },
                        CompilerOptions::openuh(),
                    )
                    .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_heat, bench_matmul, bench_pi);
criterion_main!(benches);
