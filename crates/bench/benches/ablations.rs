//! Criterion bench for the design-choice ablations the paper discusses:
//! Fig. 6 vector layouts, Fig. 8 worker strategies, window-sliding vs
//! blocking schedules, shared vs global staging, unrolled vs looped trees,
//! and non-power-of-two vector lengths (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use uhacc_bench::{ablation_vector_case, ablation_worker_case};
use uhacc_core::{
    CombineSpace, CompilerOptions, LaunchDims, Schedule, TreeStyle, VectorLayout, WorkerStrategy,
};

fn dims() -> LaunchDims {
    LaunchDims {
        gangs: 4,
        workers: 8,
        vector: 128,
    }
}

fn bench_vector_strategies(c: &mut Criterion) {
    let base = CompilerOptions::openuh();
    let cases: Vec<(&str, CompilerOptions)> = vec![
        ("rowwise_fig6c", base.clone()),
        (
            "transposed_fig6b",
            CompilerOptions {
                vector_layout: VectorLayout::Transposed,
                ..base.clone()
            },
        ),
        (
            "blocking",
            CompilerOptions {
                schedule: Schedule::Blocking,
                ..base.clone()
            },
        ),
        (
            "looped_tree",
            CompilerOptions {
                tree: TreeStyle::Looped,
                ..base.clone()
            },
        ),
        (
            "global_staging",
            CompilerOptions {
                combine_space: CombineSpace::Global,
                ..base.clone()
            },
        ),
    ];
    let mut g = c.benchmark_group("ablation_vector");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (label, opts) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| ablation_vector_case(opts.clone(), dims(), 4096))
        });
    }
    g.finish();
}

fn bench_worker_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_worker");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (label, ws) in [
        ("first_row_fig8c", WorkerStrategy::FirstRow),
        ("duplicate_rows_fig8b", WorkerStrategy::DuplicateRows),
    ] {
        let opts = CompilerOptions {
            worker_strategy: ws,
            ..CompilerOptions::openuh()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| ablation_worker_case(opts.clone(), dims(), 256))
        });
    }
    g.finish();
}

fn bench_pow2(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pow2_vector_length");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for vector in [128u32, 96, 48] {
        let d = LaunchDims {
            gangs: 4,
            workers: 8,
            vector,
        };
        g.bench_with_input(BenchmarkId::from_parameter(vector), &d, |b, &d| {
            b.iter(|| ablation_vector_case(CompilerOptions::openuh(), d, 4096))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vector_strategies,
    bench_worker_strategies,
    bench_pow2
);
criterion_main!(benches);
