//! Shape-invariant regression tests: the qualitative results the paper
//! reports must hold in the modelled timings, so a cost-model or codegen
//! change that silently breaks the reproduction fails CI.

use acc_baselines::Compiler;
use acc_testsuite::run::{reference, run_case, CaseStatus, SuiteConfig};
use acc_testsuite::Position;
use accparse::ast::{CType, RedOp};
use uhacc_bench::{ablation_vector_case, ablation_vector_combine_heavy, ablation_worker_case};
use uhacc_core::{
    CompilerOptions, GangStrategy, LaunchDims, Schedule, VectorLayout, WorkerStrategy,
};

fn cfg() -> SuiteConfig {
    SuiteConfig {
        red_n: 4096,
        dims: LaunchDims {
            gangs: 16,
            workers: 8,
            vector: 128,
        },
        ..SuiteConfig::default()
    }
}

fn ms(c: Compiler, pos: Position) -> Option<f64> {
    let cfg = cfg();
    let exp = reference(pos, RedOp::Add, CType::Int, &cfg);
    match run_case(c, pos, RedOp::Add, CType::Int, &cfg, &exp).status {
        CaseStatus::Pass { ms } => Some(ms),
        _ => None,
    }
}

/// Table 2 / Fig. 11: PGI-like is slower than OpenUH on every passing `+`
/// cell (the paper's headline performance claim).
#[test]
fn pgi_like_slower_than_openuh_everywhere() {
    for pos in [
        Position::Gang,
        Position::WorkerVector,
        Position::SameLineGwv,
    ] {
        let open = ms(Compiler::OpenUH, pos).expect("OpenUH passes");
        let pgi = ms(Compiler::PgiLike, pos).expect("PGI passes this position");
        assert!(
            pgi > open,
            "{}: PGI-like {pgi} must exceed OpenUH {open}",
            pos.label()
        );
    }
}

/// Table 2: worker is the slowest single-level reduction position (it has
/// the least parallelism available to the reduction loop).
#[test]
fn worker_is_slowest_single_level() {
    let gang = ms(Compiler::OpenUH, Position::Gang).unwrap();
    let worker = ms(Compiler::OpenUH, Position::Worker).unwrap();
    let vector = ms(Compiler::OpenUH, Position::Vector).unwrap();
    assert!(worker > gang, "{worker} vs {gang}");
    assert!(worker > vector, "{worker} vs {vector}");
}

/// Table 2: the same-line gang-worker-vector case is the fastest of all
/// positions (full-device parallelism on one flat loop).
#[test]
fn same_line_gwv_is_fastest() {
    let fastest = ms(Compiler::OpenUH, Position::SameLineGwv).unwrap();
    for pos in [
        Position::Gang,
        Position::Worker,
        Position::Vector,
        Position::GangWorker,
        Position::WorkerVector,
        Position::GangWorkerVector,
    ] {
        let t = ms(Compiler::OpenUH, pos).unwrap();
        assert!(
            fastest < t,
            "{} ({t}) vs same-line ({fastest})",
            pos.label()
        );
    }
}

/// §2.2/§3.1.3: window sliding must beat blocking by a wide margin on a
/// memory-bound vector loop (coalescing), and the transaction counter must
/// show why.
#[test]
fn window_sliding_beats_blocking() {
    let dims = LaunchDims {
        gangs: 4,
        workers: 8,
        vector: 128,
    };
    let (win_ms, win_st) = ablation_vector_case(CompilerOptions::openuh(), dims, 16 * 1024);
    let (blk_ms, blk_st) = ablation_vector_case(
        CompilerOptions {
            schedule: Schedule::Blocking,
            ..CompilerOptions::openuh()
        },
        dims,
        16 * 1024,
    );
    assert!(
        blk_ms > win_ms * 2.0,
        "blocking {blk_ms} vs window {win_ms}"
    );
    assert!(win_st.totals.transactions_per_access().unwrap() < 1.5);
    assert!(blk_st.totals.transactions_per_access().unwrap() > 8.0);
}

/// Fig. 6: the transposed layout must show bank conflicts and cost more on
/// a combine-heavy workload; Fig. 8: first-row must not lose to duplicate
/// rows.
#[test]
fn layout_and_worker_strategy_shapes() {
    let dims = LaunchDims {
        gangs: 8,
        workers: 8,
        vector: 128,
    };
    let (row_ms, row_st) = ablation_vector_combine_heavy(CompilerOptions::openuh(), dims);
    let (tr_ms, tr_st) = ablation_vector_combine_heavy(
        CompilerOptions {
            vector_layout: VectorLayout::Transposed,
            ..CompilerOptions::openuh()
        },
        dims,
    );
    assert!(
        tr_st.totals.conflict_ways_per_access().unwrap() > 2.0,
        "transposed must conflict"
    );
    assert!(
        row_st.totals.conflict_ways_per_access().unwrap() < 1.5,
        "row-wise must not"
    );
    assert!(tr_ms > row_ms, "transposed {tr_ms} vs row {row_ms}");

    let fr = ablation_worker_case(CompilerOptions::openuh(), dims, 256);
    let dr = ablation_worker_case(
        CompilerOptions {
            worker_strategy: WorkerStrategy::DuplicateRows,
            ..CompilerOptions::openuh()
        },
        dims,
        256,
    );
    assert!(fr <= dr * 1.01, "first-row {fr} vs duplicate-rows {dr}");
}

/// The atomic gang strategy must save the second kernel launch.
#[test]
fn atomic_gang_strategy_saves_a_launch() {
    use uhacc_bench::ablation_gang_strategy;
    let d = LaunchDims {
        gangs: 32,
        workers: 1,
        vector: 128,
    };
    let two = ablation_gang_strategy(GangStrategy::TwoKernel, d, 64 * 1024);
    let atomic = ablation_gang_strategy(GangStrategy::Atomic, d, 64 * 1024);
    assert!(atomic < two, "atomic {atomic} vs two-kernel {two}");
}

/// Fig. 12a: the heat equation's reduction cost must grow with grid size
/// and stay below PGI-like's.
#[test]
fn heat_shape() {
    use uhacc_bench::fig12a_point;
    let p128 = fig12a_point(64, 4);
    let p256 = fig12a_point(128, 4);
    let get = |pts: &[(Compiler, Option<f64>)], c: Compiler| {
        pts.iter()
            .find(|(k, _)| *k == c)
            .and_then(|(_, ms)| *ms)
            .unwrap()
    };
    assert!(get(&p256, Compiler::OpenUH) > get(&p128, Compiler::OpenUH));
    assert!(get(&p128, Compiler::PgiLike) > get(&p128, Compiler::OpenUH));
    assert!(get(&p256, Compiler::PgiLike) > get(&p256, Compiler::OpenUH));
}
