fn main() {
    use acc_baselines::Compiler;
    use acc_testsuite::run::{reference, run_case, CaseStatus, SuiteConfig};
    use acc_testsuite::Position;
    use accparse::ast::{CType, RedOp};
    for red_n in [8192usize, 262144, 1048576] {
        let cfg = SuiteConfig {
            red_n,
            ..Default::default()
        };
        let exp = reference(Position::SameLineGwv, RedOp::Add, CType::Int, &cfg);
        let mut line = format!("red_n {red_n:>8}:");
        for c in Compiler::all() {
            let r = run_case(c, Position::SameLineGwv, RedOp::Add, CType::Int, &cfg, &exp);
            line += &match r.status {
                CaseStatus::Pass { ms } => format!("  {}={ms:.3}ms", c.name()),
                s => format!("  {}={s:?}", c.name()),
            };
        }
        println!("{line}");
    }
}
