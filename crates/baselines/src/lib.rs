//! # acc-baselines — baseline compilers and the CPU reference executor
//!
//! Two things the paper's evaluation needs besides the OpenUH compiler:
//!
//! 1. [`cpu::CpuExec`] — a sequential CPU interpreter of the analyzed
//!    program. The paper verifies every testsuite case by comparing the
//!    OpenACC result to the CPU result; this is that oracle.
//! 2. [`personality::Compiler`] — the three compilers of the evaluation
//!    (OpenUH plus CAPS-like and PGI-like personalities) as strategy sets
//!    for the single shared code generator, including the baseline
//!    defects that reproduce the `F`/`CE` failure pattern of Table 2 as
//!    real miscompilations (dropped barriers, collapsed reduction spans)
//!    rather than hard-coded results.

pub mod cpu;
pub mod personality;

pub use cpu::CpuExec;
pub use personality::{Compiler, ReductionCase};
