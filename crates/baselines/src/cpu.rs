//! Sequential CPU reference executor.
//!
//! Interprets the analyzed HIR directly with C semantics — the "CPU
//! result" every testsuite case is verified against in the paper's
//! methodology. Loops run in source order; reduction clauses are ignored
//! (sequential execution computes the same value by definition of the
//! reduction update forms).

use accparse::ast::{BinOpKind, CType, UnOpKind};
use accparse::hir::{AnalyzedProgram, HExpr, HExprKind, HLoop, HStmt, MathFunc, Sym};
use accrt::{AccError, HostBuffer};
use gpsim::{eval_bin, eval_cmp, eval_un, BinOp, CmpOp, Ty, UnOp, Value};
use uhacc_core::types::{apply_host, machine_ty};

/// Sequential interpreter state for one program.
pub struct CpuExec {
    prog: AnalyzedProgram,
    scalars: Vec<Value>,
    arrays: Vec<Option<HostBuffer>>,
    locals: Vec<Value>,
    cur_region: usize,
}

impl CpuExec {
    /// Parse and analyze `src`.
    pub fn new(src: &str) -> Result<Self, AccError> {
        Ok(Self::from_hir(accparse::compile(src)?))
    }

    /// Build from an analyzed program.
    pub fn from_hir(prog: AnalyzedProgram) -> Self {
        let ns = prog.hosts.len();
        let na = prog.arrays.len();
        CpuExec {
            prog,
            scalars: vec![Value::I32(0); ns],
            arrays: (0..na).map(|_| None).collect(),
            locals: Vec::new(),
            cur_region: 0,
        }
    }

    /// Bind a host scalar.
    pub fn bind_scalar(&mut self, name: &str, v: Value) -> Result<(), AccError> {
        let i = self
            .prog
            .host_index(name)
            .ok_or_else(|| AccError::Binding(format!("no scalar `{name}`")))?;
        self.scalars[i] = v.convert(machine_ty(self.prog.hosts[i].ty));
        Ok(())
    }

    /// Bind an integer host scalar.
    pub fn bind_int(&mut self, name: &str, v: i64) -> Result<(), AccError> {
        self.bind_scalar(name, Value::I64(v))
    }

    /// Bind an array.
    pub fn bind_array(&mut self, name: &str, buf: HostBuffer) -> Result<(), AccError> {
        let i = self
            .prog
            .array_index(name)
            .ok_or_else(|| AccError::Binding(format!("no array `{name}`")))?;
        self.arrays[i] = Some(buf);
        Ok(())
    }

    /// Read a scalar.
    pub fn scalar(&self, name: &str) -> Result<Value, AccError> {
        let i = self
            .prog
            .host_index(name)
            .ok_or_else(|| AccError::Binding(format!("no scalar `{name}`")))?;
        Ok(self.scalars[i])
    }

    /// Borrow an array.
    pub fn array(&self, name: &str) -> Result<&HostBuffer, AccError> {
        let i = self
            .prog
            .array_index(name)
            .ok_or_else(|| AccError::Binding(format!("no array `{name}`")))?;
        self.arrays[i]
            .as_ref()
            .ok_or_else(|| AccError::Binding(format!("array `{name}` not bound")))
    }

    /// Execute the whole program sequentially.
    pub fn run(&mut self) -> Result<(), AccError> {
        let assigns = self.prog.host_assigns.clone();
        for ha in &assigns {
            let v = self.expr_host(&ha.value)?;
            self.scalars[ha.host] = v.convert(machine_ty(self.prog.hosts[ha.host].ty));
        }
        for r in 0..self.prog.regions.len() {
            self.run_region(r)?;
        }
        Ok(())
    }

    /// Execute one region sequentially.
    pub fn run_region(&mut self, region: usize) -> Result<(), AccError> {
        self.cur_region = region;
        let r = self.prog.regions[region].clone();
        self.locals = r
            .locals
            .iter()
            .map(|l| Value::zero(machine_ty(l.ty)))
            .collect();
        self.stmts(&r.body)
    }

    /// Element type of a local of the active region.
    fn local_ty(&self, local: usize) -> CType {
        self.prog.regions[self.cur_region].locals[local].ty
    }

    fn stmts(&mut self, stmts: &[HStmt]) -> Result<(), AccError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &HStmt) -> Result<(), AccError> {
        match s {
            HStmt::AssignLocal { local, value } => {
                let ty = machine_ty(self.local_ty(*local));
                let v = self.expr(value)?;
                self.locals[*local] = v.convert(ty);
            }
            HStmt::AssignHost { host, value } => {
                let ty = machine_ty(self.prog.hosts[*host].ty);
                let v = self.expr(value)?;
                self.scalars[*host] = v.convert(ty);
            }
            HStmt::Store {
                array,
                indices,
                value,
            } => {
                let idx = self.flat_index(*array, indices)?;
                let v = self.expr(value)?;
                let arr = self.arrays[*array]
                    .as_mut()
                    .ok_or_else(|| AccError::Binding("array not bound".into()))?;
                arr.set(idx, v);
            }
            HStmt::ReduceUpdate { sym, op, value, .. } => {
                let v = self.expr(value)?;
                let (cur, cty) = match sym {
                    Sym::Host(h) => (self.scalars[*h], self.prog.hosts[*h].ty),
                    Sym::Local(l) => (self.locals[*l], self.local_ty(*l)),
                };
                let newv = apply_host(*op, cty, cur, v.convert(machine_ty(cty)));
                match sym {
                    Sym::Host(h) => self.scalars[*h] = newv,
                    Sym::Local(l) => self.locals[*l] = newv,
                }
            }
            HStmt::If { cond, then, els } => {
                if self.expr(cond)?.as_bool() {
                    self.stmts(then)?;
                } else {
                    self.stmts(els)?;
                }
            }
            HStmt::Loop(l) => self.run_loop(l)?,
        }
        Ok(())
    }

    fn run_loop(&mut self, l: &HLoop) -> Result<(), AccError> {
        let vt = machine_ty(self.local_ty(l.var));
        let mut var = self.expr(&l.lower)?.convert(vt);
        loop {
            let bound = self.expr(&l.bound)?;
            let cont = match l.cmp {
                BinOpKind::Lt => eval_cmp(CmpOp::Lt, vt, var, bound.convert(vt)),
                BinOpKind::Le => eval_cmp(CmpOp::Le, vt, var, bound.convert(vt)),
                BinOpKind::Gt => eval_cmp(CmpOp::Gt, vt, var, bound.convert(vt)),
                BinOpKind::Ge => eval_cmp(CmpOp::Ge, vt, var, bound.convert(vt)),
                _ => unreachable!(),
            };
            if !cont {
                break;
            }
            self.locals[l.var] = var;
            self.stmts(&l.body)?;
            let step = self.expr(&l.step)?.convert(vt);
            var = eval_bin(BinOp::Add, vt, self.locals[l.var], step).map_err(AccError::Device)?;
        }
        Ok(())
    }

    fn flat_index(&mut self, array: usize, indices: &[HExpr]) -> Result<usize, AccError> {
        let dims: Vec<i64> = {
            let decl = self.prog.arrays[array].clone();
            decl.dims
                .iter()
                .map(|d| self.expr(d).map(|v| v.as_i64()))
                .collect::<Result<_, _>>()?
        };
        let mut off: i64 = 0;
        for (d, ix) in indices.iter().enumerate() {
            let i = self.expr(ix)?.as_i64();
            off = off * dims[d] + i;
        }
        Ok(off as usize)
    }

    fn expr_host(&mut self, e: &HExpr) -> Result<Value, AccError> {
        self.expr(e)
    }

    fn expr(&mut self, e: &HExpr) -> Result<Value, AccError> {
        let ty = machine_ty(e.ty);
        Ok(match &e.kind {
            HExprKind::Int(v) => match ty {
                Ty::I64 => Value::I64(*v),
                _ => Value::I32(*v as i32),
            },
            HExprKind::Float(v) => match ty {
                Ty::F32 => Value::F32(*v as f32),
                _ => Value::F64(*v),
            },
            HExprKind::Sym(Sym::Host(h)) => self.scalars[*h],
            HExprKind::Sym(Sym::Local(l)) => self.locals[*l],
            HExprKind::Load { array, indices } => {
                let idx = self.flat_index(*array, indices)?;
                let arr = self.arrays[*array]
                    .as_ref()
                    .ok_or_else(|| AccError::Binding("array not bound".into()))?;
                arr.get(idx)
            }
            HExprKind::Un { op, operand } => {
                let v = self.expr(operand)?;
                match op {
                    UnOpKind::Neg => eval_un(UnOp::Neg, ty, v).map_err(AccError::Device)?,
                    UnOpKind::BitNot => eval_un(UnOp::Not, ty, v).map_err(AccError::Device)?,
                    UnOpKind::Not => Value::I32(if v.as_bool() { 0 } else { 1 }),
                }
            }
            HExprKind::Bin {
                op,
                cmp_ty,
                lhs,
                rhs,
            } => {
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                match op {
                    BinOpKind::Add => eval_bin(BinOp::Add, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Sub => eval_bin(BinOp::Sub, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Mul => eval_bin(BinOp::Mul, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Div => eval_bin(BinOp::Div, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Rem => eval_bin(BinOp::Rem, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Shl => eval_bin(BinOp::Shl, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::Shr => eval_bin(BinOp::Shr, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::BitAnd => {
                        eval_bin(BinOp::And, ty, a, b).map_err(AccError::Device)?
                    }
                    BinOpKind::BitOr => eval_bin(BinOp::Or, ty, a, b).map_err(AccError::Device)?,
                    BinOpKind::BitXor => {
                        eval_bin(BinOp::Xor, ty, a, b).map_err(AccError::Device)?
                    }
                    BinOpKind::Lt
                    | BinOpKind::Le
                    | BinOpKind::Gt
                    | BinOpKind::Ge
                    | BinOpKind::Eq
                    | BinOpKind::Ne => {
                        let cop = match op {
                            BinOpKind::Lt => CmpOp::Lt,
                            BinOpKind::Le => CmpOp::Le,
                            BinOpKind::Gt => CmpOp::Gt,
                            BinOpKind::Ge => CmpOp::Ge,
                            BinOpKind::Eq => CmpOp::Eq,
                            _ => CmpOp::Ne,
                        };
                        Value::I32(eval_cmp(cop, machine_ty(*cmp_ty), a, b) as i32)
                    }
                    BinOpKind::LogAnd => Value::I32((a.as_bool() && b.as_bool()) as i32),
                    BinOpKind::LogOr => Value::I32((a.as_bool() || b.as_bool()) as i32),
                }
            }
            HExprKind::Cond { cond, then, els } => {
                if self.expr(cond)?.as_bool() {
                    self.expr(then)?.convert(ty)
                } else {
                    self.expr(els)?.convert(ty)
                }
            }
            HExprKind::Call { func, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                match func {
                    MathFunc::FMax | MathFunc::IMax => {
                        eval_bin(BinOp::Max, ty, vals[0], vals[1]).map_err(AccError::Device)?
                    }
                    MathFunc::FMin | MathFunc::IMin => {
                        eval_bin(BinOp::Min, ty, vals[0], vals[1]).map_err(AccError::Device)?
                    }
                    MathFunc::FAbs | MathFunc::IAbs => {
                        eval_un(UnOp::Abs, ty, vals[0]).map_err(AccError::Device)?
                    }
                    MathFunc::Sqrt => eval_un(UnOp::Sqrt, ty, vals[0]).map_err(AccError::Device)?,
                }
            }
            HExprKind::Cast { operand } => self.expr(operand)?.convert(ty),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_hand_computation() {
        let src = r#"
            int N; int s;
            int a[N];
            s = 5;
            #pragma acc parallel loop gang vector reduction(+:s) copyin(a)
            for (int i = 0; i < N; i++) { s += a[i]; }
        "#;
        let mut c = CpuExec::new(src).unwrap();
        c.bind_int("N", 10).unwrap();
        c.bind_array("a", HostBuffer::from_i32(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]))
            .unwrap();
        c.run().unwrap();
        assert_eq!(c.scalar("s").unwrap().as_i64(), 60);
    }

    #[test]
    fn reference_triple_nest_with_stores() {
        let src = r#"
            int NK; int NJ;
            int t[NK][NJ];
            #pragma acc parallel copy(t)
            {
                #pragma acc loop gang
                for (int k = 0; k < NK; k++) {
                    int s = k;
                    #pragma acc loop worker reduction(+:s)
                    for (int j = 0; j < NJ; j++) {
                        s += t[k][j];
                    }
                    t[k][0] = s;
                }
            }
        "#;
        let mut c = CpuExec::new(src).unwrap();
        c.bind_int("NK", 2).unwrap();
        c.bind_int("NJ", 3).unwrap();
        c.bind_array("t", HostBuffer::from_i32(&[1, 2, 3, 4, 5, 6]))
            .unwrap();
        c.run().unwrap();
        let t = c.array("t").unwrap();
        assert_eq!(t.get(0).as_i64(), 1 + 2 + 3);
        assert_eq!(t.get(3).as_i64(), 1 + 4 + 5 + 6);
    }

    #[test]
    fn reference_max_reduction() {
        let src = r#"
            int N; double m;
            double a[N];
            m = 0.0;
            #pragma acc parallel loop gang vector reduction(max:m) copyin(a)
            for (int i = 0; i < N; i++) { m = fmax(m, a[i]); }
        "#;
        let mut c = CpuExec::new(src).unwrap();
        c.bind_int("N", 4).unwrap();
        c.bind_array("a", HostBuffer::from_f64(&[0.5, 9.25, -3.0, 2.0]))
            .unwrap();
        c.run().unwrap();
        assert_eq!(c.scalar("m").unwrap().as_f64(), 9.25);
    }
}
