//! Compiler personalities: OpenUH and the two commercial baselines.
//!
//! The paper compares OpenUH against CAPS 3.4.0 and PGI 13.10, observing
//! them only externally (pass/fail + time, Table 2). The personalities
//! reproduce that externally visible behaviour with real codegen:
//!
//! - **OpenUH**: the paper's strategy set (window sliding, Fig. 6c row
//!   layout, Fig. 8c first-row worker strategy, fully unrolled tree with
//!   warp-synchronous tail, shared-memory staging, automatic reduction
//!   span detection).
//! - **CapsLike**: transposed layouts (Fig. 6b / Fig. 8b duplicate rows).
//!   Its documented defect is multi-level spans: the paper reports wrong
//!   results unless the user annotates every level, and `F` entries for
//!   the `+` RMP rows of Table 2 even then. Reproduced by honouring only
//!   clause levels (span collapse) or dropping the staging barrier on the
//!   affected rows — real miscompilations, not table lookups.
//! - **PgiLike**: blocking schedule (uncoalesced vector accesses), naive
//!   looped tree with a barrier per step, global-memory staging. Fails
//!   (wrong result) on the `+` worker/vector/gang-worker rows and errors
//!   at compile time on three-level RMP in different loops, matching
//!   Table 2's `F`/`CE` pattern.

use accparse::ast::{CType, Level, RedOp};
use uhacc_core::{
    CombineSpace, CompilerOptions, InjectedBugs, Schedule, TreeStyle, VectorLayout, WorkerStrategy,
};

/// A compiler under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compiler {
    OpenUH,
    CapsLike,
    PgiLike,
}

impl Compiler {
    /// All three compilers, in the paper's presentation order.
    pub fn all() -> [Compiler; 3] {
        [Compiler::OpenUH, Compiler::PgiLike, Compiler::CapsLike]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Compiler::OpenUH => "OpenUH",
            Compiler::CapsLike => "CAPS-like",
            Compiler::PgiLike => "PGI-like",
        }
    }

    /// Base strategy options (case-independent).
    pub fn base_options(&self) -> CompilerOptions {
        match self {
            Compiler::OpenUH => CompilerOptions::openuh(),
            Compiler::CapsLike => CompilerOptions {
                schedule: Schedule::WindowSliding,
                vector_layout: VectorLayout::Transposed,
                worker_strategy: WorkerStrategy::DuplicateRows,
                tree: TreeStyle::Unrolled,
                combine_space: CombineSpace::Shared,
                ..CompilerOptions::openuh()
            },
            Compiler::PgiLike => CompilerOptions {
                schedule: Schedule::Blocking,
                vector_layout: VectorLayout::Transposed,
                worker_strategy: WorkerStrategy::DuplicateRows,
                tree: TreeStyle::Looped,
                combine_space: CombineSpace::Global,
                ..CompilerOptions::openuh()
            },
        }
    }

    /// Options for compiling a specific reduction case; `Err` is a
    /// compile-time rejection (a Table 2 "CE" entry).
    pub fn options_for_case(&self, case: &ReductionCase) -> Result<CompilerOptions, String> {
        let mut opts = self.base_options();
        let lv = &case.levels;
        let add = case.op == RedOp::Add;
        match self {
            Compiler::OpenUH => {}
            Compiler::CapsLike => {
                let gw = lv == &[Level::Gang, Level::Worker];
                let wv = lv == &[Level::Worker, Level::Vector];
                let gwv = lv == &[Level::Gang, Level::Worker, Level::Vector];
                if !case.same_loop && add && gw {
                    opts.bugs = InjectedBugs {
                        clause_levels_only: true,
                        ..Default::default()
                    };
                }
                if !case.same_loop && add && wv {
                    opts.bugs = InjectedBugs {
                        skip_stage_barrier: true,
                        ..Default::default()
                    };
                }
                if !case.same_loop && add && gwv {
                    opts.bugs = InjectedBugs {
                        clause_levels_only: true,
                        ..Default::default()
                    };
                }
            }
            Compiler::PgiLike => {
                let gwv = lv == &[Level::Gang, Level::Worker, Level::Vector];
                if !case.same_loop && gwv && (add || case.dtype != CType::Int) {
                    return Err(format!(
                        "PGI-like front end: reduction of `{}` spanning gang, worker and \
                         vector in different loops is not supported",
                        case.op.clause_token()
                    ));
                }
                if add && lv == &[Level::Worker] {
                    opts.bugs = InjectedBugs {
                        skip_stage_barrier: true,
                        ..Default::default()
                    };
                }
                if add && lv == &[Level::Vector] {
                    opts.bugs = InjectedBugs {
                        skip_stage_barrier: true,
                        ..Default::default()
                    };
                }
                if add && lv == &[Level::Gang, Level::Worker] {
                    opts.bugs = InjectedBugs {
                        clause_levels_only: true,
                        ..Default::default()
                    };
                }
            }
        }
        Ok(opts)
    }
}

/// Descriptor of a testsuite reduction case (position x operator x type).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionCase {
    /// The parallelism levels the reduction spans.
    pub levels: Vec<Level>,
    /// True for "RMP in the same loop" (Fig. 10), false for reductions in
    /// (nested) different loops.
    pub same_loop: bool,
    pub op: RedOp,
    pub dtype: CType,
}

impl ReductionCase {
    /// Construct a case.
    pub fn new(levels: Vec<Level>, same_loop: bool, op: RedOp, dtype: CType) -> Self {
        ReductionCase {
            levels,
            same_loop,
            op,
            dtype,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(levels: Vec<Level>, same_loop: bool, op: RedOp, dtype: CType) -> ReductionCase {
        ReductionCase::new(levels, same_loop, op, dtype)
    }

    #[test]
    fn openuh_never_fails() {
        for op in [RedOp::Add, RedOp::Mul] {
            for lv in [
                vec![Level::Gang],
                vec![Level::Worker],
                vec![Level::Vector],
                vec![Level::Gang, Level::Worker, Level::Vector],
            ] {
                let o = Compiler::OpenUH
                    .options_for_case(&case(lv, false, op, CType::Float))
                    .unwrap();
                assert_eq!(o.bugs, InjectedBugs::default());
            }
        }
    }

    #[test]
    fn pgi_matrix_matches_table2() {
        let p = Compiler::PgiLike;
        // CE: gwv different loops, + any type; * for float/double only.
        assert!(p
            .options_for_case(&case(
                vec![Level::Gang, Level::Worker, Level::Vector],
                false,
                RedOp::Add,
                CType::Int
            ))
            .is_err());
        assert!(p
            .options_for_case(&case(
                vec![Level::Gang, Level::Worker, Level::Vector],
                false,
                RedOp::Mul,
                CType::Float
            ))
            .is_err());
        assert!(p
            .options_for_case(&case(
                vec![Level::Gang, Level::Worker, Level::Vector],
                false,
                RedOp::Mul,
                CType::Int
            ))
            .is_ok());
        // Same-line gwv passes both ops.
        assert!(p
            .options_for_case(&case(
                vec![Level::Gang, Level::Worker, Level::Vector],
                true,
                RedOp::Add,
                CType::Double
            ))
            .is_ok());
        // F rows carry injected bugs; the matching * rows don't.
        let f = p
            .options_for_case(&case(vec![Level::Worker], false, RedOp::Add, CType::Int))
            .unwrap();
        assert!(f.bugs.skip_stage_barrier);
        let ok = p
            .options_for_case(&case(vec![Level::Worker], false, RedOp::Mul, CType::Int))
            .unwrap();
        assert_eq!(ok.bugs, InjectedBugs::default());
    }

    #[test]
    fn caps_matrix_matches_table2() {
        let c = Compiler::CapsLike;
        let f = c
            .options_for_case(&case(
                vec![Level::Worker, Level::Vector],
                false,
                RedOp::Add,
                CType::Int,
            ))
            .unwrap();
        assert!(f.bugs.skip_stage_barrier);
        let ok = c
            .options_for_case(&case(
                vec![Level::Worker, Level::Vector],
                false,
                RedOp::Mul,
                CType::Int,
            ))
            .unwrap();
        assert_eq!(ok.bugs, InjectedBugs::default());
        // Single-level cases all pass.
        for lv in [vec![Level::Gang], vec![Level::Worker], vec![Level::Vector]] {
            let o = c
                .options_for_case(&case(lv, false, RedOp::Add, CType::Double))
                .unwrap();
            assert_eq!(o.bugs, InjectedBugs::default());
        }
        // Same-line gwv passes.
        let o = c
            .options_for_case(&case(
                vec![Level::Gang, Level::Worker, Level::Vector],
                true,
                RedOp::Add,
                CType::Int,
            ))
            .unwrap();
        assert_eq!(o.bugs, InjectedBugs::default());
    }

    #[test]
    fn personality_base_strategies_differ() {
        assert_eq!(
            Compiler::OpenUH.base_options().vector_layout,
            VectorLayout::RowWise
        );
        assert_eq!(
            Compiler::CapsLike.base_options().vector_layout,
            VectorLayout::Transposed
        );
        assert_eq!(
            Compiler::PgiLike.base_options().schedule,
            Schedule::Blocking
        );
        assert_eq!(Compiler::PgiLike.base_options().tree, TreeStyle::Looped);
        assert_eq!(
            Compiler::PgiLike.base_options().combine_space,
            CombineSpace::Global
        );
    }
}
