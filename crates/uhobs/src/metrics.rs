//! The metrics registry: counters, gauges and fixed-bucket histograms
//! with Prometheus text exposition.
//!
//! Deliberately small and deterministic:
//!
//! - A *family* is a metric name + help + type; a *series* is one label
//!   combination inside it. Families render sorted by name, series
//!   sorted by their rendered label string, so the exposition is a pure
//!   function of the recorded values — byte-stable, golden-pinnable.
//! - Histograms have **fixed** bucket bounds chosen at registration.
//!   Observations are integers (microseconds throughout this workspace);
//!   sums and counts render as integers. Valid Prometheus text, no
//!   floating-point drift.
//! - Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//!   clones over atomics: lock-free on the hot path, the registry lock
//!   is only taken at registration and render time.
//!
//! [`parse_exposition`] is the consumer side: the load generator scrapes
//! `/metrics`, validates that the text parses and that every expected
//! series is present, and recovers queue-wait percentiles from the
//! histogram buckets via [`histogram_quantile`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency buckets (microseconds): 100µs … 10s, roughly
/// geometric. Shared by the request-duration, queue-wait and
/// compile-duration histograms so cross-metric comparisons line up.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    /// Set to an absolute value — for counters that mirror an external
    /// accumulator (cache counters owned by the daemon) and are
    /// refreshed at scrape time.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    /// Finite upper bounds; the implicit last bucket is `+Inf`.
    bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` slots).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of integer observations (microseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Series {
    Value(Arc<AtomicU64>),
    Hist(Arc<HistCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label set (`{k="v",...}` or empty).
    series: BTreeMap<String, Series>,
}

/// The metrics registry. See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Render a label set as it appears inside `{...}` (no braces; empty for
/// no labels). Label order is the caller's — keep it fixed per call site.
fn label_body(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(",")
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> (Series, T),
        reuse: impl FnOnce(&Series) -> T,
    ) -> T {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric `{name}` registered twice with different types"
        );
        let key = label_body(labels);
        match fam.series.get(&key) {
            Some(s) => reuse(s),
            None => {
                let (series, handle) = make();
                fam.series.insert(key, series);
                handle
            }
        }
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            help,
            Kind::Counter,
            labels,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Series::Value(cell.clone()), Counter(cell))
            },
            |s| match s {
                Series::Value(c) => Counter(c.clone()),
                Series::Hist(_) => unreachable!("kind checked above"),
            },
        )
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            help,
            Kind::Gauge,
            labels,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Series::Value(cell.clone()), Gauge(cell))
            },
            |s| match s {
                Series::Value(c) => Gauge(c.clone()),
                Series::Hist(_) => unreachable!("kind checked above"),
            },
        )
    }

    /// Get or create a histogram series with the given finite bucket
    /// bounds (must be sorted ascending).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        self.get_or_insert(
            name,
            help,
            Kind::Histogram,
            labels,
            || {
                let core = Arc::new(HistCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                });
                (Series::Hist(core.clone()), Histogram(core))
            },
            |s| match s {
                Series::Hist(c) => Histogram(c.clone()),
                Series::Value(_) => unreachable!("kind checked above"),
            },
        )
    }

    /// Prometheus text exposition: families sorted by name, series by
    /// label string, integer values. Byte-stable given stable values.
    pub fn render(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.label()));
            for (labels, series) in &fam.series {
                match series {
                    Series::Value(v) => {
                        let v = v.load(Ordering::Relaxed);
                        if labels.is_empty() {
                            out.push_str(&format!("{name} {v}\n"));
                        } else {
                            out.push_str(&format!("{name}{{{labels}}} {v}\n"));
                        }
                    }
                    Series::Hist(h) => {
                        let sep = if labels.is_empty() { "" } else { "," };
                        let mut cum = 0u64;
                        for (i, b) in h.bounds.iter().enumerate() {
                            cum += h.buckets[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{{{labels}{sep}le=\"{b}\"}} {cum}\n"
                            ));
                        }
                        cum += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}\n"
                        ));
                        let (lb, rb) = if labels.is_empty() {
                            ("", "")
                        } else {
                            ("{", "}")
                        };
                        out.push_str(&format!(
                            "{name}_sum{lb}{labels}{rb} {}\n",
                            h.sum.load(Ordering::Relaxed)
                        ));
                        out.push_str(&format!(
                            "{name}_count{lb}{labels}{rb} {}\n",
                            h.count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One sample parsed back out of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// Label lookup.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition into samples. Strict enough to
/// catch a malformed emitter: every non-comment line must be
/// `name[{labels}] value`, label values must be quoted, values must
/// parse as numbers (`+Inf` accepted for bucket bounds is a label, not a
/// value). Returns an error naming the offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment form: {line}", lineno + 1));
            }
            continue;
        }
        let (head, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value `{value}`", lineno + 1))?;
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {line}", lineno + 1))?;
                let mut labels = Vec::new();
                for pair in split_label_pairs(body) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label `{pair}`", lineno + 1))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: unquoted label `{pair}`", lineno + 1))?;
                    labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name `{name}`", lineno + 1));
        }
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

/// Split a label body on commas that are outside quotes.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Recover a quantile (0..=1) from a histogram's `_bucket` samples
/// (cumulative counts), linearly interpolating inside the bucket —
/// the standard `histogram_quantile` estimate. `extra` filters on
/// additional label pairs. Returns `None` when the histogram is missing
/// or empty.
pub fn histogram_quantile(
    samples: &[Sample],
    name: &str,
    extra: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket_name = format!("{name}_bucket");
    let mut buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name)
        .filter(|s| extra.iter().all(|(k, v)| s.label(k) == Some(v)))
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, s.value))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * total;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0.0;
    for &(bound, cum) in &buckets {
        if cum >= target {
            if bound.is_infinite() {
                // Everything above the last finite bound: report that
                // bound (no upper edge to interpolate toward).
                return Some(prev_bound);
            }
            if cum == prev_cum {
                return Some(bound);
            }
            let frac = (target - prev_cum) / (cum - prev_cum);
            return Some(prev_bound + frac * (bound - prev_bound));
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    Some(prev_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_render_sorted() {
        let r = Registry::new();
        let c = r.counter("z_total", "last family", &[]);
        c.add(3);
        let g = r.gauge("a_depth", "first family", &[("pool", "main")]);
        g.set(7);
        let text = r.render();
        let a = text.find("a_depth").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < z, "{text}");
        assert!(text.contains("a_depth{pool=\"main\"} 7\n"), "{text}");
        assert!(text.contains("# TYPE a_depth gauge"), "{text}");
        assert!(text.contains("z_total 3\n"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_and_parses_back() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "latency", &[("ep", "/run")], &[100, 1000]);
        h.observe(50);
        h.observe(150);
        h.observe(5000);
        let text = r.render();
        assert!(
            text.contains("lat_us_bucket{ep=\"/run\",le=\"100\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{ep=\"/run\",le=\"1000\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{ep=\"/run\",le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("lat_us_sum{ep=\"/run\"} 5200\n"), "{text}");
        assert!(text.contains("lat_us_count{ep=\"/run\"} 3\n"), "{text}");

        let samples = parse_exposition(&text).unwrap();
        assert_eq!(
            samples.iter().filter(|s| s.name == "lat_us_bucket").count(),
            3
        );
        let sum = samples.iter().find(|s| s.name == "lat_us_sum").unwrap();
        assert_eq!(sum.value, 5200.0);
        assert_eq!(sum.label("ep"), Some("/run"));
    }

    #[test]
    fn same_series_is_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "x", &[("k", "v")]);
        let b = r.counter("x_total", "x", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_exposition("name 1\n").is_ok());
        assert!(parse_exposition("name{k=\"v\"} 2.5\n").is_ok());
        assert!(parse_exposition("novalue\n").is_err());
        assert!(parse_exposition("name{k=unquoted} 1\n").is_err());
        assert!(parse_exposition("name{k=\"v\" 1\n").is_err());
        assert!(parse_exposition("bad name 1\n").is_err());
        assert!(parse_exposition("# FOO bar\n").is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let r = Registry::new();
        let h = r.histogram("q_us", "q", &[], &[100, 200, 400]);
        for _ in 0..10 {
            h.observe(150); // all in (100, 200]
        }
        let samples = parse_exposition(&r.render()).unwrap();
        let p50 = histogram_quantile(&samples, "q_us", &[], 0.5).unwrap();
        assert!((100.0..=200.0).contains(&p50), "{p50}");
        // Everything beyond the last finite bound reports that bound.
        let r2 = Registry::new();
        let h2 = r2.histogram("o_us", "o", &[], &[100]);
        h2.observe(1_000_000);
        let s2 = parse_exposition(&r2.render()).unwrap();
        assert_eq!(histogram_quantile(&s2, "o_us", &[], 0.99), Some(100.0));
        // Missing histogram -> None.
        assert_eq!(histogram_quantile(&s2, "nope_us", &[], 0.5), None);
    }
}
