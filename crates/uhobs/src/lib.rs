//! # uhobs — the observability core
//!
//! A dependency-free tracing + metrics layer shared by the whole stack:
//! the `uhaccd` daemon, the `uhacc::driver` single-shot paths, and the
//! `accrt` runtime all record into the same primitives, so one request
//! produces one coherent timeline from HTTP parse down to simulated
//! per-SM block execution.
//!
//! Three pieces:
//!
//! - [`Clock`] — monotonic microseconds since a process-local origin, or
//!   a *virtual* clock that advances a fixed step per observation. Under
//!   the virtual clock every exported byte (metrics exposition, unified
//!   trace) is a pure function of the observation sequence, which is
//!   what makes goldens and cross-configuration determinism tests
//!   possible.
//! - [`Registry`] / [`Counter`] / [`Gauge`] / [`Histogram`] — a metrics
//!   registry with fixed-bucket histograms rendered as Prometheus text
//!   exposition ([`Registry::render`]), plus a small exposition parser
//!   ([`metrics::parse_exposition`]) used by the load generator to
//!   validate scrapes and recover histogram percentiles.
//! - [`Tracer`] / [`Span`] — per-request span collection with minted
//!   trace ids, a bounded buffer, pre-rendered device-track splicing,
//!   and Chrome-trace (Perfetto) export on a shared timebase
//!   ([`Tracer::to_chrome_trace`]).
//!
//! Everything is `Send + Sync`; handles are cheap `Arc` clones.

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::Clock;
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use trace::{Span, Tracer};

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
