//! Span tracing with Chrome-trace (Perfetto) export.
//!
//! The tracer owns the request-level timeline: every daemon request (or
//! CLI invocation) mints a trace id, records named spans against it, and
//! the whole session exports as one Chrome-trace JSON document. Device
//! timelines from `gpsim`'s profiler arrive *pre-rendered* — the runtime
//! remaps their timestamps/pids onto this tracer's timebase and hands
//! over finished event strings, which are spliced verbatim into the
//! export. That is what puts daemon request spans and per-SM device
//! tracks into one Perfetto view on a shared clock.
//!
//! Layout of the exported trace:
//!
//! - pid [`REQUEST_PID`] — the request track. One thread per trace id
//!   (`tid` = trace id), named `req N <endpoint>` via
//!   [`Tracer::set_track_name`]. Spans are `ph:"X"` events carrying
//!   their trace id in `args`.
//! - pids assigned by the caller for device tracks (the runtime uses
//!   `DEVICE_PID_BASE + 2*trace_id` so concurrent requests don't
//!   collide).
//!
//! The span buffer is bounded; overflow increments a drop counter that
//! is surfaced as a metric rather than growing without limit under
//! sustained load.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::json_escape;

/// Chrome-trace pid of the request track.
pub const REQUEST_PID: u32 = 100;

/// First pid available for per-request device tracks. The runtime maps
/// request `t`'s device timeline to pids `DEVICE_PID_BASE + 2*t` (stream)
/// and `DEVICE_PID_BASE + 2*t + 1` (SMs).
pub const DEVICE_PID_BASE: u32 = 1000;

/// Default span-buffer capacity.
pub const DEFAULT_SPAN_CAP: usize = 16 * 1024;

/// One completed request-track span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub trace_id: u64,
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
    /// Extra `args` entries (rendered as JSON strings).
    pub args: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Buf {
    spans: Vec<Span>,
    /// Pre-rendered Chrome-trace event objects, spliced verbatim.
    device_events: Vec<String>,
    /// Thread (track) names per trace id.
    track_names: BTreeMap<u64, String>,
}

/// Span collector + Chrome-trace exporter. See the module docs.
#[derive(Debug)]
pub struct Tracer {
    clock: Arc<Clock>,
    process_name: String,
    cap: usize,
    next_id: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<Buf>,
}

impl Tracer {
    /// New tracer with the default span capacity.
    pub fn new(clock: Arc<Clock>, process_name: &str) -> Self {
        Tracer::with_capacity(clock, process_name, DEFAULT_SPAN_CAP)
    }

    pub fn with_capacity(clock: Arc<Clock>, process_name: &str, cap: usize) -> Self {
        Tracer {
            clock,
            process_name: process_name.to_string(),
            cap: cap.max(1),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(Buf::default()),
        }
    }

    /// The clock this tracer stamps spans with.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Read the clock (virtual clocks advance on every read).
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Mint the next trace id (1, 2, 3, …).
    pub fn mint_trace_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Name the request track for a trace id (e.g. `req 3 /run`).
    pub fn set_track_name(&self, trace_id: u64, name: &str) {
        self.buf
            .lock()
            .unwrap()
            .track_names
            .insert(trace_id, name.to_string());
    }

    /// Record a completed span. `end_us >= start_us` is clamped, extra
    /// args are copied. Dropped (not recorded) once the buffer is full.
    pub fn record(
        &self,
        trace_id: u64,
        name: &str,
        start_us: u64,
        end_us: u64,
        args: &[(&str, &str)],
    ) {
        let mut buf = self.buf.lock().unwrap();
        if buf.spans.len() >= self.cap {
            drop(buf);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.spans.push(Span {
            trace_id,
            name: name.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Splice pre-rendered Chrome-trace event objects (from
    /// `gpsim::SessionProfile::chrome_trace_events`) into the export.
    /// Device events share the span buffer's capacity budget.
    pub fn record_device_events(&self, events: Vec<String>) {
        let mut buf = self.buf.lock().unwrap();
        let room = self
            .cap
            .saturating_sub(buf.spans.len() + buf.device_events.len());
        if events.len() > room {
            self.dropped
                .fetch_add((events.len() - room) as u64, Ordering::Relaxed);
        }
        buf.device_events.extend(events.into_iter().take(room));
    }

    /// Spans dropped on buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of request-track spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.buf.lock().unwrap().spans.len()
    }

    /// Export everything as one Chrome-trace JSON document: request
    /// track first (process/thread metadata, then spans in record
    /// order), then the spliced device events.
    pub fn to_chrome_trace(&self) -> String {
        let buf = self.buf.lock().unwrap();
        let mut ev: Vec<String> = vec![meta_event(
            "process_name",
            REQUEST_PID,
            None,
            &self.process_name,
        )];
        let mut named: Vec<u64> = buf.track_names.keys().copied().collect();
        for s in &buf.spans {
            if !buf.track_names.contains_key(&s.trace_id) && !named.contains(&s.trace_id) {
                named.push(s.trace_id);
            }
        }
        named.sort_unstable();
        for id in named {
            let name = buf
                .track_names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("req {id}"));
            ev.push(meta_event("thread_name", REQUEST_PID, Some(id), &name));
        }
        for s in &buf.spans {
            let mut args = format!("\"trace_id\":{}", s.trace_id);
            for (k, v) in &s.args {
                args.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{REQUEST_PID},\"tid\":{},\"args\":{{{args}}}}}",
                json_escape(&s.name),
                s.start_us,
                s.dur_us,
                s.trace_id,
            ));
        }
        ev.extend(buf.device_events.iter().cloned());
        format!("{{\"traceEvents\":[{}]}}", ev.join(","))
    }
}

fn meta_event(name: &str, pid: u32, tid: Option<u64>, value: &str) -> String {
    let tid = tid.map_or(String::new(), |t| format!(",\"tid\":{t}"));
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}{tid},\"args\":{{\"name\":\"{}\"}}}}",
        json_escape(value)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtual_tracer() -> Tracer {
        Tracer::new(Arc::new(Clock::virtual_clock(100)), "test requests")
    }

    #[test]
    fn mint_ids_are_sequential() {
        let t = virtual_tracer();
        assert_eq!(t.mint_trace_id(), 1);
        assert_eq!(t.mint_trace_id(), 2);
        assert_eq!(t.mint_trace_id(), 3);
    }

    #[test]
    fn export_is_deterministic_under_virtual_clock() {
        let mk = || {
            let t = virtual_tracer();
            let id = t.mint_trace_id();
            t.set_track_name(id, "req 1 /run");
            let a = t.now_us();
            let b = t.now_us();
            t.record(id, "request", a, b, &[("endpoint", "/run")]);
            t.to_chrome_trace()
        };
        let one = mk();
        let two = mk();
        assert_eq!(one, two);
        assert!(one.starts_with("{\"traceEvents\":["), "{one}");
        assert!(one.contains("\"name\":\"req 1 /run\""), "{one}");
        assert!(one.contains("\"trace_id\":1"), "{one}");
        assert!(one.contains("\"endpoint\":\"/run\""), "{one}");
        assert!(one.contains("\"ts\":100,\"dur\":100"), "{one}");
    }

    #[test]
    fn unnamed_tracks_get_default_names() {
        let t = virtual_tracer();
        t.record(7, "x", 0, 10, &[]);
        let ct = t.to_chrome_trace();
        assert!(ct.contains("\"args\":{\"name\":\"req 7\"}"), "{ct}");
    }

    #[test]
    fn device_events_are_spliced_verbatim() {
        let t = virtual_tracer();
        t.record(1, "exec", 0, 5, &[]);
        t.record_device_events(vec![
            "{\"name\":\"k b0\",\"ph\":\"X\",\"ts\":3,\"dur\":2,\"pid\":1001,\"tid\":0}".into(),
        ]);
        let ct = t.to_chrome_trace();
        assert!(ct.contains("\"pid\":1001"), "{ct}");
        assert!(ct.ends_with("\"tid\":0}]}"), "{ct}");
    }

    #[test]
    fn overflow_drops_and_counts() {
        let t = Tracer::with_capacity(Arc::new(Clock::virtual_clock(1)), "t", 2);
        t.record(1, "a", 0, 1, &[]);
        t.record(1, "b", 1, 2, &[]);
        t.record(1, "c", 2, 3, &[]);
        assert_eq!(t.span_count(), 2);
        assert_eq!(t.dropped(), 1);
        t.record_device_events(vec!["{}".into(), "{}".into()]);
        assert_eq!(t.dropped(), 3);
    }
}
