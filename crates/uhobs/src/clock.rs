//! The observability clock: monotonic microseconds, or a deterministic
//! virtual clock for byte-stable test goldens.
//!
//! Every span start/end and every latency observation in the stack reads
//! this clock. In monotonic mode it is `std::time::Instant` against a
//! process-local origin. In virtual mode each reading advances an atomic
//! tick counter by a fixed step, so as long as the *sequence* of clock
//! reads is deterministic (sequential requests, fixed code paths), every
//! timestamp — and therefore every exported byte — is too. That is the
//! property the `/metrics` golden and the `obs_prop` determinism
//! property tests pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Environment variable that switches every CLI/daemon entry point into
/// virtual-clock mode (any non-empty value other than `0`).
pub const VIRTUAL_CLOCK_ENV: &str = "UHOBS_VIRTUAL_CLOCK";

/// Default virtual-clock step: each observation advances 100 virtual
/// microseconds. Big enough that derived values (histogram sums, span
/// durations) are visibly structured, small enough that a golden stays
/// readable.
pub const VIRTUAL_STEP_US: u64 = 100;

/// Microsecond clock with a virtual mode. See the module docs.
#[derive(Debug)]
pub struct Clock {
    /// `Some(step)` = virtual mode; `None` = monotonic.
    step_us: Option<u64>,
    origin: Instant,
    ticks: AtomicU64,
}

impl Clock {
    /// Real monotonic clock (microseconds since construction).
    pub fn monotonic() -> Self {
        Clock {
            step_us: None,
            origin: Instant::now(),
            ticks: AtomicU64::new(0),
        }
    }

    /// Deterministic virtual clock: the n-th reading returns
    /// `n * step_us`.
    pub fn virtual_clock(step_us: u64) -> Self {
        Clock {
            step_us: Some(step_us.max(1)),
            origin: Instant::now(),
            ticks: AtomicU64::new(0),
        }
    }

    /// Monotonic unless [`VIRTUAL_CLOCK_ENV`] asks for the virtual clock.
    pub fn from_env() -> Self {
        if env_wants_virtual() {
            Clock::virtual_clock(VIRTUAL_STEP_US)
        } else {
            Clock::monotonic()
        }
    }

    /// Current time in microseconds. In virtual mode this *advances* the
    /// clock — every reading is a distinct, strictly increasing instant.
    pub fn now_us(&self) -> u64 {
        match self.step_us {
            Some(step) => self.ticks.fetch_add(1, Ordering::SeqCst).wrapping_add(1) * step,
            None => self.origin.elapsed().as_micros() as u64,
        }
    }

    /// Is this the deterministic virtual clock?
    pub fn is_virtual(&self) -> bool {
        self.step_us.is_some()
    }
}

/// Does the environment ask for the virtual clock?
pub fn env_wants_virtual() -> bool {
    std::env::var(VIRTUAL_CLOCK_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_deterministic() {
        let c = Clock::virtual_clock(100);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.now_us(), 200);
        assert_eq!(c.now_us(), 300);
        assert!(c.is_virtual());
    }

    #[test]
    fn monotonic_is_nondecreasing() {
        let c = Clock::monotonic();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_step_is_clamped() {
        let c = Clock::virtual_clock(0);
        assert_eq!(c.now_us(), 1);
        assert_eq!(c.now_us(), 2);
    }
}
