//! Profile export tests: a golden text + JSON profile for the paper's §6
//! grid reduction case, and a property test pinning the profiler's
//! headline guarantee — every exported byte (report, JSON, Chrome trace)
//! is identical at any `host_threads` setting, with the sanitizer off or
//! on, and enabling the profiler never changes results or modelled time.
//!
//! Regenerate the goldens after an intentional attribution change with:
//!
//! ```console
//! UPDATE_GOLDEN=1 cargo test -p accrt --test profile_export
//! ```

use accrt::{AccRunner, HostBuffer};
use gpsim::{Device, SanitizerLevel, SessionStats};
use proptest::prelude::*;
use uhacc_core::{CompilerOptions, LaunchDims};

/// The paper's §6 grid setting: vector-position sum reduction over the
/// innermost dimension of a 3-D grid (the Fig. 6 kernel the row-wise vs
/// transposed shared-store comparison is about).
const GRID_SRC: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int out[NK][NJ];
    #pragma acc parallel copyin(input) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                int s = 0;
                #pragma acc loop vector reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    s += input[k][j][i];
                }
                out[k][j] = s;
            }
        }
    }
"#;

fn run_grid(
    dims: LaunchDims,
    host_threads: u32,
    sanitize: bool,
    profile: bool,
    nk: usize,
    nj: usize,
    ni: usize,
) -> (AccRunner, SessionStats) {
    let mut r =
        AccRunner::with_options(GRID_SRC, CompilerOptions::openuh(), dims, Device::default())
            .expect("compile");
    r.set_host_threads(host_threads);
    if sanitize {
        r.sanitize(SanitizerLevel::Full);
    }
    r.profile(profile);
    let n = nk * nj * ni;
    let input: Vec<i32> = (0..n as i32).map(|i| (i * 7 + 3) % 101 - 50).collect();
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; nk * nj]))
        .unwrap();
    r.run().unwrap();
    let stats = *r.device().stats();
    (r, stats)
}

const GOLDEN_DIMS: LaunchDims = LaunchDims {
    gangs: 4,
    workers: 4,
    vector: 32,
};

fn golden_check(name: &str, got: &str, golden: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    assert_eq!(
        got, golden,
        "{name}: profile drifted from tests/golden/{name} \
         (UPDATE_GOLDEN=1 to regenerate after an intentional change)"
    );
}

/// The §6 grid case's profile, pinned as text and JSON. A cost-model or
/// attribution change shows up as a reviewable golden diff.
#[test]
fn grid_profile_golden() {
    let (r, _) = run_grid(GOLDEN_DIMS, 1, false, true, 8, 8, 64);
    golden_check(
        "grid_profile.txt",
        &r.profile_report(),
        include_str!("golden/grid_profile.txt"),
    );
    golden_check(
        "grid_profile.json",
        &r.profile_json(),
        include_str!("golden/grid_profile.json"),
    );
    // The Chrome trace is structurally checked rather than pinned (it is
    // large); determinism is covered by the property test below.
    let ct = r.profile_chrome_trace();
    assert!(ct.starts_with("{\"traceEvents\":["));
    assert!(ct.contains("\"ph\":\"X\""));
    assert!(ct.contains("acc_region_0"));
}

/// The report attributes cycles to the OpenACC source lines: the vector
/// reduction loop (line 13 of `GRID_SRC`) must dominate, and the quoted
/// source must appear in the per-line table.
#[test]
fn grid_profile_attributes_to_source_lines() {
    let (r, stats) = run_grid(GOLDEN_DIMS, 1, false, true, 8, 8, 64);
    let report = r.profile_report();
    assert!(
        report.contains("#pragma acc loop vector reduction(+:s)"),
        "per-line rows must quote the source:\n{report}"
    );
    assert!(report.contains("s += input[k][j][i];"), "{report}");
    let prof = r.device().profile();
    let lp = &prof.launches[0];
    let rollup = lp.line_rollup();
    assert!(
        !rollup.is_empty(),
        "compiled kernel must carry a line table"
    );
    // The innermost vector loop does almost all the work (line 12 is its
    // `#pragma acc loop vector` directive; the loop and its reduction
    // combine are attributed there).
    let (hot_line, hot) = rollup
        .iter()
        .max_by_key(|(_, c)| c.cycles())
        .expect("nonempty");
    assert_eq!(*hot_line, 12, "hottest line is the vector loop directive");
    assert!(hot.cycles() * 2 > lp.totals().cycles(), "dominates");
    // Timeline cycles agree with the session stats.
    assert_eq!(prof.cursor, stats.total_cycles());
    assert_eq!(
        prof.timeline.iter().map(|s| s.cycles).sum::<u64>(),
        stats.total_cycles()
    );
}

/// Everything observable from one profiled run.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    out: Vec<gpsim::Value>,
    stats: SessionStats,
    report: String,
    json: String,
    trace: String,
}

fn observe(
    dims: LaunchDims,
    threads: u32,
    sanitize: bool,
    nk: usize,
    nj: usize,
    ni: usize,
) -> Observed {
    let (r, stats) = run_grid(dims, threads, sanitize, true, nk, nj, ni);
    Observed {
        out: (0..nk * nj)
            .map(|i| r.array("out").unwrap().get(i))
            .collect(),
        stats,
        report: r.profile_report(),
        json: r.profile_json(),
        trace: r.profile_chrome_trace(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Byte-identical profile exports across host thread counts, with the
    /// sanitizer off and on, across random geometries and problem sizes.
    #[test]
    fn profile_bytes_identical_across_host_threads(
        gangs in 1u32..5,
        workers in 1u32..4,
        vector in 1u32..40,
        nk in 1usize..6,
        nj in 1usize..6,
        ni in 1usize..80,
        sanitize in any::<bool>(),
    ) {
        let dims = LaunchDims { gangs, workers, vector };
        let want = observe(dims, 1, sanitize, nk, nj, ni);
        for threads in [4u32, 8] {
            let got = observe(dims, threads, sanitize, nk, nj, ni);
            prop_assert_eq!(&want, &got, "divergence at {} host threads", threads);
        }
        // Profiling is purely observational: the same run with the
        // profiler off produces identical results and modelled cycles.
        let (bare, bare_stats) = run_grid(dims, 1, sanitize, false, nk, nj, ni);
        let bare_out: Vec<gpsim::Value> =
            (0..nk * nj).map(|i| bare.array("out").unwrap().get(i)).collect();
        prop_assert_eq!(&want.out, &bare_out);
        prop_assert_eq!(want.stats, bare_stats);
    }
}
