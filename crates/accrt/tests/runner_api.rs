//! Unit tests for the runner's host-facing API: binding validation, launch
//! dimension resolution, error paths, and statistics plumbing.

use accparse::CType;
use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::{Device, Value};
use uhacc_core::{CompilerOptions, LaunchDims};

const SRC: &str = r#"
    int N; int s;
    int a[N];
    s = 0;
    #pragma acc parallel copyin(a) num_gangs(4) vector_length(32)
    {
        #pragma acc loop gang vector reduction(+:s)
        for (int i = 0; i < N; i++) { s += a[i]; }
    }
"#;

fn runner() -> AccRunner {
    AccRunner::new(SRC).unwrap()
}

#[test]
fn clause_dims_override_defaults() {
    let r = runner();
    // num_gangs(4) + vector_length(32) come from the clauses; no worker
    // level is used so workers resolve to 1 regardless of the default 8.
    let dims = r.resolve_dims(0).unwrap();
    assert_eq!(
        dims,
        LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 32
        }
    );
}

#[test]
fn dims_clauses_can_reference_scalars() {
    let src = r#"
        int N; int G; int s;
        int a[N];
        s = 0;
        #pragma acc parallel copyin(a) num_gangs(G * 2)
        {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < N; i++) { s += a[i]; }
        }
    "#;
    let mut r = AccRunner::new(src).unwrap();
    r.bind_int("G", 3).unwrap();
    assert_eq!(r.resolve_dims(0).unwrap().gangs, 6);
    r.bind_int("G", -1).unwrap();
    assert!(matches!(r.resolve_dims(0), Err(AccError::Binding(_))));
}

#[test]
fn unknown_names_are_binding_errors() {
    let mut r = runner();
    assert!(matches!(r.bind_int("nosuch", 1), Err(AccError::Binding(_))));
    assert!(matches!(
        r.bind_array("nosuch", HostBuffer::from_i32(&[1])),
        Err(AccError::Binding(_))
    ));
    assert!(matches!(r.scalar("nosuch"), Err(AccError::Binding(_))));
    assert!(
        matches!(r.array("a"), Err(AccError::Binding(_))),
        "not bound yet"
    );
}

#[test]
fn type_mismatched_array_binding_rejected() {
    let mut r = runner();
    let err = r.bind_array("a", HostBuffer::from_f32(&[1.0])).unwrap_err();
    assert!(err.to_string().contains("declared int"), "{err}");
}

#[test]
fn size_mismatched_array_rejected_at_launch() {
    let mut r = runner();
    r.bind_int("N", 100).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&[1; 50])).unwrap();
    let err = r.run().unwrap_err();
    assert!(err.to_string().contains("100 element(s)"), "{err}");
}

#[test]
fn unbound_scalar_rejected_at_launch() {
    let mut r = runner();
    // N used by the region but never bound.
    r.bind_array("a", HostBuffer::from_i32(&[1])).unwrap();
    let err = r.run().unwrap_err();
    assert!(matches!(err, AccError::Binding(_)), "{err}");
}

#[test]
fn scalar_binding_converts_to_declared_type() {
    let mut r = runner();
    r.bind_scalar("s", Value::F64(3.9)).unwrap();
    assert_eq!(r.scalar("s").unwrap(), Value::I32(3));
}

#[test]
fn repeated_runs_reuse_compiled_region_and_accumulate_stats() {
    let mut r = runner();
    r.bind_int("N", 64).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&vec![2; 64]))
        .unwrap();
    r.run().unwrap();
    let launches_once = r.device().stats().launches;
    r.bind_int("s", 0).unwrap();
    r.run_region(0).unwrap();
    assert_eq!(r.device().stats().launches, launches_once * 2);
    assert_eq!(r.scalar("s").unwrap().as_i64(), 128);
    r.reset_stats();
    assert_eq!(r.device().stats().launches, 0);
    assert_eq!(r.elapsed_ms(), 0.0);
}

#[test]
fn copyout_materializes_host_buffer() {
    let src = r#"
        int N;
        float b[N];
        #pragma acc parallel copyout(b)
        {
            #pragma acc loop gang vector
            for (int i = 0; i < N; i++) { b[i] = i * 0.5; }
        }
    "#;
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 1,
            vector: 32,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", 10).unwrap();
    // copyout requires a caller-allocated host array (C semantics).
    assert!(r.run().is_err());
    r.bind_array("b", HostBuffer::new(CType::Float, 10))
        .unwrap();
    r.run().unwrap();
    let b = r.array("b").unwrap();
    assert_eq!(b.ty(), CType::Float);
    assert_eq!(b.get(4).as_f64(), 2.0);
}

#[test]
fn swap_arrays_validates_compatibility() {
    let src = r#"
        int N;
        float p[N]; float q[N]; int z[N];
        #pragma acc parallel copy(p, q)
        {
            #pragma acc loop gang vector
            for (int i = 0; i < N; i++) { p[i] = q[i] + 1.0; }
        }
    "#;
    let mut r = AccRunner::new(src).unwrap();
    r.bind_int("N", 4).unwrap();
    r.bind_array("p", HostBuffer::from_f32(&[0.0; 4])).unwrap();
    r.bind_array("q", HostBuffer::from_f32(&[9.0; 4])).unwrap();
    r.swap_arrays("p", "q").unwrap();
    assert_eq!(r.array("p").unwrap().get(0).as_f64(), 9.0);
    assert!(r.swap_arrays("p", "z").is_err(), "incompatible types");
    let _ = r;
}

#[test]
fn peek_device_array_bounds_checked() {
    let mut r = runner();
    r.bind_int("N", 8).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&[5; 8])).unwrap();
    r.run().unwrap();
    assert_eq!(r.peek_device_array("a", 3).unwrap().as_i64(), 5);
    assert!(r.peek_device_array("a", 8).is_err());
    assert!(r.peek_device_array("nosuch", 0).is_err());
}

#[test]
fn program_accessor_exposes_hir() {
    let r = runner();
    assert_eq!(r.program().hosts.len(), 2);
    assert_eq!(r.program().arrays.len(), 1);
    assert_eq!(r.program().regions.len(), 1);
}
