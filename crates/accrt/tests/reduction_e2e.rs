//! End-to-end tests for every reduction case in the paper (§3.1–§3.3),
//! run through the full pipeline: parse → analyze → compile → simulate →
//! verify against host-computed expectations.

use accrt::{AccRunner, HostBuffer};
use gpsim::Device;
use uhacc_core::{
    CombineSpace, CompilerOptions, LaunchDims, Schedule, TreeStyle, VectorLayout, WorkerStrategy,
};

fn small_dims() -> LaunchDims {
    LaunchDims {
        gangs: 4,
        workers: 4,
        vector: 64,
    }
}

fn runner(src: &str, opts: CompilerOptions, dims: LaunchDims) -> AccRunner {
    AccRunner::with_options(src, opts, dims, Device::default()).expect("compile")
}

/// Paper Fig. 4(a): reduction only in vector. The worker loop has a ragged
/// trip count (NJ=2 < workers), exercising the padded uniform-trip form.
const VECTOR_ONLY: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copyout(temp)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                int i_sum = j;
                #pragma acc loop vector reduction(+:i_sum)
                for (int i = 0; i < NI; i++) {
                    i_sum += input[k][j][i];
                }
                temp[k][j][0] = i_sum;
            }
        }
    }
"#;

fn check_vector_only(opts: CompilerOptions, dims: LaunchDims) {
    let (nk, nj, ni) = (3usize, 2usize, 1000usize);
    let mut r = runner(VECTOR_ONLY, opts, dims);
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 17) as i32 - 5).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("temp", HostBuffer::from_i32(&vec![0; nk * nj * ni]))
        .unwrap();
    r.run().unwrap();
    let temp = r.array("temp").unwrap();
    for k in 0..nk {
        for j in 0..nj {
            let want: i32 = j as i32 + (0..ni).map(|i| input[(k * nj + j) * ni + i]).sum::<i32>();
            let got = temp.get((k * nj + j) * ni).as_i64() as i32;
            assert_eq!(got, want, "k={k} j={j}");
        }
    }
}

#[test]
fn vector_only_reduction_rowwise() {
    check_vector_only(CompilerOptions::openuh(), small_dims());
}

#[test]
fn vector_only_reduction_transposed_layout() {
    let opts = CompilerOptions {
        vector_layout: VectorLayout::Transposed,
        ..CompilerOptions::openuh()
    };
    check_vector_only(opts, small_dims());
}

#[test]
fn vector_only_reduction_blocking_schedule() {
    let opts = CompilerOptions {
        schedule: Schedule::Blocking,
        ..CompilerOptions::openuh()
    };
    check_vector_only(opts, small_dims());
}

#[test]
fn vector_only_reduction_looped_tree() {
    let opts = CompilerOptions {
        tree: TreeStyle::Looped,
        ..CompilerOptions::openuh()
    };
    check_vector_only(opts, small_dims());
}

#[test]
fn vector_only_reduction_global_combine() {
    let opts = CompilerOptions {
        combine_space: CombineSpace::Global,
        ..CompilerOptions::openuh()
    };
    check_vector_only(opts, small_dims());
}

#[test]
fn vector_only_reduction_non_pow2_vector() {
    // §3.3: vector length 96 exercises the pre-step that folds the
    // remainder down to the previous power of two.
    check_vector_only(
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 4,
            workers: 4,
            vector: 96,
        },
    );
    // Non-multiple-of-warp sizes degrade performance but stay correct.
    check_vector_only(
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 2,
            vector: 48,
        },
    );
    check_vector_only(
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 3,
            vector: 40,
        },
    );
}

/// Paper Fig. 4(b): reduction only in worker.
const WORKER_ONLY: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int temp[NK][NJ][NI];
    #pragma acc parallel copyin(input) copy(temp)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            int j_sum = k;
            #pragma acc loop worker reduction(+:j_sum)
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    temp[k][j][i] = input[k][j][i];
                }
                j_sum += temp[k][j][0];
            }
            temp[k][0][0] = j_sum;
        }
    }
"#;

fn check_worker_only(opts: CompilerOptions, dims: LaunchDims) {
    let (nk, nj, ni) = (3usize, 7usize, 40usize);
    let mut r = runner(WORKER_ONLY, opts, dims);
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 23) as i32 - 7).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("temp", HostBuffer::from_i32(&vec![0; nk * nj * ni]))
        .unwrap();
    r.run().unwrap();
    let temp = r.array("temp").unwrap();
    for k in 0..nk {
        let want: i32 = k as i32 + (0..nj).map(|j| input[(k * nj + j) * ni]).sum::<i32>();
        assert_eq!(temp.get(k * nj * ni).as_i64() as i32, want, "k={k}");
    }
}

#[test]
fn worker_only_reduction_first_row() {
    check_worker_only(CompilerOptions::openuh(), small_dims());
}

#[test]
fn worker_only_reduction_duplicate_rows() {
    let opts = CompilerOptions {
        worker_strategy: WorkerStrategy::DuplicateRows,
        ..CompilerOptions::openuh()
    };
    check_worker_only(opts, small_dims());
}

#[test]
fn worker_only_reduction_ragged_workers() {
    // NJ=7 over 4 workers: ragged worker trips with a barrier-free worker
    // combine after the loop.
    check_worker_only(
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 4,
            vector: 64,
        },
    );
    // workers=3 (non-pow2 worker tree).
    check_worker_only(
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 3,
            vector: 32,
        },
    );
}

/// Paper Fig. 4(c): reduction only in gang, with a host initial value.
const GANG_ONLY: &str = r#"
    int NK; int NJ; int NI;
    int sum;
    int input[NK][NJ][NI];
    int temp[NK][NJ][NI];
    sum = 100;
    #pragma acc parallel copyin(input) copy(temp)
    {
        #pragma acc loop gang reduction(+:sum)
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    temp[k][j][i] = input[k][j][i];
                }
            }
            sum += temp[k][0][0];
        }
    }
"#;

#[test]
fn gang_only_reduction_with_initial_value() {
    let (nk, nj, ni) = (37usize, 2usize, 33usize);
    let mut r = runner(GANG_ONLY, CompilerOptions::openuh(), small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 11) as i32 - 3).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("temp", HostBuffer::from_i32(&vec![0; nk * nj * ni]))
        .unwrap();
    r.run().unwrap();
    let want: i64 = 100 + (0..nk).map(|k| input[k * nj * ni] as i64).sum::<i64>();
    assert_eq!(r.scalar("sum").unwrap().as_i64(), want);
}

/// Paper Fig. 9: RMP in different loops — one clause on the worker loop,
/// updates inside the vector loop; OpenUH auto-detects the worker+vector
/// span.
const RMP_WORKER_VECTOR: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int out[NK];
    #pragma acc parallel copyin(input) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            int j_sum = k;
            #pragma acc loop worker reduction(+:j_sum)
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    j_sum += input[k][j][i];
                }
            }
            out[k] = j_sum;
        }
    }
"#;

#[test]
fn rmp_worker_vector_different_loops() {
    let (nk, nj, ni) = (5usize, 3usize, 200usize);
    let mut r = runner(RMP_WORKER_VECTOR, CompilerOptions::openuh(), small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 13) as i32 - 6).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; nk]))
        .unwrap();
    r.run().unwrap();
    let out = r.array("out").unwrap();
    for k in 0..nk {
        let want: i32 = k as i32 + input[k * nj * ni..(k + 1) * nj * ni].iter().sum::<i32>();
        assert_eq!(out.get(k).as_i64() as i32, want, "k={k}");
    }
}

/// RMP gang&worker in different loops (the paper's "gang worker" testsuite
/// row): clause on the gang loop, updates in the worker loop.
const RMP_GANG_WORKER: &str = r#"
    int NK; int NJ; int NI;
    int sum;
    int input[NK][NJ][NI];
    int temp[NK][NJ][NI];
    sum = 0;
    #pragma acc parallel copyin(input) create(temp)
    {
        #pragma acc loop gang reduction(+:sum)
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    temp[k][j][i] = input[k][j][i];
                }
                sum += temp[k][j][0];
            }
        }
    }
"#;

#[test]
fn rmp_gang_worker_different_loops() {
    let (nk, nj, ni) = (9usize, 5usize, 64usize);
    let mut r = runner(RMP_GANG_WORKER, CompilerOptions::openuh(), small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 19) as i32 - 9).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.run().unwrap();
    let want: i64 = (0..nk)
        .flat_map(|k| (0..nj).map(move |j| (k, j)))
        .map(|(k, j)| input[(k * nj + j) * ni] as i64)
        .sum();
    assert_eq!(r.scalar("sum").unwrap().as_i64(), want);
}

/// RMP gang&worker&vector in different loops.
const RMP_GWV: &str = r#"
    int NK; int NJ; int NI;
    int sum;
    int input[NK][NJ][NI];
    sum = 0;
    #pragma acc parallel copyin(input)
    {
        #pragma acc loop gang reduction(+:sum)
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    sum += input[k][j][i];
                }
            }
        }
    }
"#;

#[test]
fn rmp_gang_worker_vector_different_loops() {
    let (nk, nj, ni) = (6usize, 3usize, 150usize);
    let mut r = runner(RMP_GWV, CompilerOptions::openuh(), small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|x| (x % 7) as i32 - 2).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.run().unwrap();
    let want: i64 = input.iter().map(|&v| v as i64).sum();
    assert_eq!(r.scalar("sum").unwrap().as_i64(), want);
}

/// Paper Fig. 10: RMP in the same loop (`gang worker vector` on one loop).
const SAME_LINE_GWV: &str = r#"
    int N; int sum;
    int a[N];
    sum = 0;
    #pragma acc parallel copyin(a)
    {
        #pragma acc loop gang worker vector reduction(+:sum)
        for (int i = 0; i < N; i++) {
            sum += a[i];
        }
    }
"#;

#[test]
fn same_line_gang_worker_vector() {
    let n = 100_000usize;
    let mut r = runner(SAME_LINE_GWV, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|x| (x % 5) as i32 - 1).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("sum").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
}

/// Gang + vector in the same loop (the Monte Carlo PI shape).
#[test]
fn same_loop_gang_vector() {
    let src = r#"
        int N; int m;
        double x[N]; double y[N];
        m = 0;
        #pragma acc parallel loop gang vector reduction(+:m) copyin(x, y)
        for (int i = 0; i < N; i++) {
            if (x[i]*x[i] + y[i]*y[i] < 1.0) {
                m += 1;
            }
        }
    "#;
    let n = 10_000usize;
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 2.0 - 1.0).collect();
    let ys: Vec<f64> = (0..n)
        .map(|i| ((i * 7 % n) as f64 / n as f64) * 2.0 - 1.0)
        .collect();
    r.bind_array("x", HostBuffer::from_f64(&xs)).unwrap();
    r.bind_array("y", HostBuffer::from_f64(&ys)).unwrap();
    r.run().unwrap();
    let want = xs
        .iter()
        .zip(&ys)
        .filter(|(x, y)| **x * **x + **y * **y < 1.0)
        .count() as i64;
    assert_eq!(r.scalar("m").unwrap().as_i64(), want);
}

// ---- operators and data types ------------------------------------------

fn op_src(cty: &str, op: &str, update: &str) -> String {
    format!(
        r#"
        int N; {cty} acc;
        {cty} a[N];
        #pragma acc parallel copyin(a)
        {{
            #pragma acc loop gang worker vector reduction({op}:acc)
            for (int i = 0; i < N; i++) {{
                {update}
            }}
        }}
    "#
    )
}

#[test]
fn product_reduction_int() {
    // Product of many ones with a few twos (stays in range).
    let src = op_src("int", "*", "acc *= a[i];");
    let n = 3000usize;
    let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|i| if i % 997 == 0 { 2 } else { 1 }).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.bind_int("acc", 3).unwrap();
    r.run().unwrap();
    let want: i64 = 3 * a.iter().map(|&v| v as i64).product::<i64>();
    assert_eq!(r.scalar("acc").unwrap().as_i64(), want);
}

#[test]
fn max_min_reductions() {
    for (op, update, init, want_fn) in [
        (
            "max",
            "acc = max(acc, a[i]);",
            -1_000_000i64,
            Box::new(|a: &[i32]| *a.iter().max().unwrap() as i64) as Box<dyn Fn(&[i32]) -> i64>,
        ),
        (
            "min",
            "acc = min(acc, a[i]);",
            1_000_000i64,
            Box::new(|a: &[i32]| *a.iter().min().unwrap() as i64),
        ),
    ] {
        let src = op_src("int", op, update);
        let n = 5000usize;
        let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<i32> = (0..n)
            .map(|i| ((i * 2654435761usize) % 100_000) as i32 - 50_000)
            .collect();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.bind_int("acc", init).unwrap();
        r.run().unwrap();
        assert_eq!(r.scalar("acc").unwrap().as_i64(), want_fn(&a), "op={op}");
    }
}

#[test]
fn bitwise_reductions() {
    for (op, update, init, want_fn) in [
        (
            "&",
            "acc &= a[i];",
            -1i64,
            Box::new(|a: &[i32]| a.iter().fold(-1i32, |x, &y| x & y) as i64)
                as Box<dyn Fn(&[i32]) -> i64>,
        ),
        (
            "|",
            "acc |= a[i];",
            0,
            Box::new(|a: &[i32]| a.iter().fold(0i32, |x, &y| x | y) as i64),
        ),
        (
            "^",
            "acc ^= a[i];",
            0,
            Box::new(|a: &[i32]| a.iter().fold(0i32, |x, &y| x ^ y) as i64),
        ),
    ] {
        let src = op_src("int", op, update);
        let n = 4097usize;
        let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<i32> = (0..n).map(|i| (i * 2654435761usize) as i32).collect();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.bind_int("acc", init).unwrap();
        r.run().unwrap();
        assert_eq!(r.scalar("acc").unwrap().as_i64(), want_fn(&a), "op={op}");
    }
}

#[test]
fn logical_reductions() {
    // && over all-nonzero data is 1; over data with one zero is 0.
    for (data_has_zero, want) in [(false, 1i64), (true, 0i64)] {
        let src = op_src("int", "&&", "acc = acc && a[i];");
        let n = 2000usize;
        let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<i32> = (0..n)
            .map(|i| if data_has_zero && i == 1234 { 0 } else { 3 })
            .collect();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.bind_int("acc", 1).unwrap();
        r.run().unwrap();
        assert_eq!(
            r.scalar("acc").unwrap().as_i64(),
            want,
            "zero={data_has_zero}"
        );
    }
    // || over all-zero is 0, with one nonzero is 1.
    for (has_one, want) in [(false, 0i64), (true, 1i64)] {
        let src = op_src("int", "||", "acc = acc || a[i];");
        let n = 2000usize;
        let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<i32> = (0..n)
            .map(|i| if has_one && i == 777 { 9 } else { 0 })
            .collect();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.bind_int("acc", 0).unwrap();
        r.run().unwrap();
        assert_eq!(r.scalar("acc").unwrap().as_i64(), want, "one={has_one}");
    }
}

#[test]
fn float_and_double_sums() {
    for (cty, tol) in [("float", 1e-3f64), ("double", 1e-9f64)] {
        let src = op_src(cty, "+", "acc += a[i];");
        let n = 20_000usize;
        let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<f64> = (0..n).map(|i| ((i % 100) as f64) * 0.25 - 12.0).collect();
        if cty == "float" {
            let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            r.bind_array("a", HostBuffer::from_f32(&af)).unwrap();
        } else {
            r.bind_array("a", HostBuffer::from_f64(&a)).unwrap();
        }
        r.bind_float("acc", 0.5).unwrap();
        r.run().unwrap();
        let want: f64 = 0.5 + a.iter().sum::<f64>();
        let got = r.scalar("acc").unwrap().as_f64();
        let rel = (got - want).abs() / want.abs().max(1.0);
        assert!(rel < tol, "{cty}: got {got}, want {want} (rel {rel})");
    }
}

#[test]
fn long_sum() {
    let src = op_src("long", "+", "acc += a[i];");
    let n = 10_000usize;
    let mut r = runner(&src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i64> = (0..n).map(|i| (i as i64) * 1_000_003).collect();
    r.bind_array("a", HostBuffer::from_i64(&a)).unwrap();
    r.bind_int("acc", 0).unwrap();
    r.run().unwrap();
    assert_eq!(r.scalar("acc").unwrap().as_i64(), a.iter().sum::<i64>());
}

#[test]
fn max_reduction_via_fmax_double() {
    let src = r#"
        int N; double err;
        double a[N]; double b[N];
        err = 0.0;
        #pragma acc parallel loop gang vector reduction(max:err) copyin(a, b)
        for (int i = 0; i < N; i++) {
            err = fmax(err, fabs(a[i] - b[i]));
        }
    "#;
    let n = 7777usize;
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    r.bind_array("a", HostBuffer::from_f64(&a)).unwrap();
    r.bind_array("b", HostBuffer::from_f64(&b)).unwrap();
    r.run().unwrap();
    let want = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!((r.scalar("err").unwrap().as_f64() - want).abs() < 1e-12);
}

/// Multiple reductions with different data types in one clause region
/// (§3.3: they share the widest-type shared slab).
#[test]
fn mixed_type_reductions_same_loop() {
    let src = r#"
        int NK; int NJ;
        int temp[NK][NJ];
        #pragma acc parallel copyin(temp)
        {
            #pragma acc loop gang
            for (int k = 0; k < NK; k++) {
                int si = 0;
                double sd = 0.0;
                #pragma acc loop worker reduction(+:si) reduction(+:sd)
                for (int j = 0; j < NJ; j++) {
                    si += temp[k][j];
                    sd += temp[k][j] * 0.5;
                }
                temp[k][0] = si + (int)sd;
            }
        }
    "#;
    let (nk, nj) = (3usize, 30usize);
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 8,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    let temp: Vec<i32> = (0..nk * nj).map(|x| (x % 9) as i32).collect();
    r.bind_array("temp", HostBuffer::from_i32(&temp)).unwrap();
    // `copyin` only: results come back via peeking the device array.
    r.run().unwrap();
    for k in 0..nk {
        let si: i32 = temp[k * nj..(k + 1) * nj].iter().sum();
        let sd: f64 = temp[k * nj..(k + 1) * nj]
            .iter()
            .map(|&v| v as f64 * 0.5)
            .sum();
        let want = si + sd as i32;
        let got = r
            .peek_device_array("temp", (k * nj) as u64)
            .unwrap()
            .as_i64() as i32;
        assert_eq!(got, want, "k={k}");
    }
}

/// `seq` reduction clause: purely sequential accumulation.
#[test]
fn seq_reduction_clause() {
    let src = r#"
        int N; int M;
        int A[N][M];
        int out[N];
        #pragma acc parallel copyin(A) copyout(out)
        {
            #pragma acc loop gang vector
            for (int i = 0; i < N; i++) {
                int c = 0;
                #pragma acc loop seq reduction(+:c)
                for (int k = 0; k < M; k++) {
                    c += A[i][k];
                }
                out[i] = c;
            }
        }
    "#;
    let (n, m) = (100usize, 37usize);
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    r.bind_int("M", m as i64).unwrap();
    let a: Vec<i32> = (0..n * m).map(|x| (x % 15) as i32 - 4).collect();
    r.bind_array("A", HostBuffer::from_i32(&a)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; n]))
        .unwrap();
    r.run().unwrap();
    let out = r.array("out").unwrap();
    for i in 0..n {
        let want: i32 = a[i * m..(i + 1) * m].iter().sum();
        assert_eq!(out.get(i).as_i64() as i32, want, "i={i}");
    }
}

/// Downward loops distribute correctly.
#[test]
fn downward_parallel_loop_reduction() {
    let src = r#"
        int N; int sum;
        int a[N];
        sum = 0;
        #pragma acc parallel loop gang vector reduction(+:sum) copyin(a)
        for (int i = N - 1; i >= 0; i -= 1) {
            sum += a[i];
        }
    "#;
    let n = 9999usize;
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|x| (x % 31) as i32 - 15).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("sum").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
}

/// Injected baseline bugs produce the documented failure classes.
#[test]
fn injected_bugs_cause_wrong_results() {
    // clause_levels_only: the Fig. 9 source relies on auto-span detection;
    // honouring only the clause's own level loses vector contributions.
    let opts = CompilerOptions {
        bugs: uhacc_core::InjectedBugs {
            clause_levels_only: true,
            ..Default::default()
        },
        auto_span: false,
        ..CompilerOptions::openuh()
    };
    let (nk, nj, ni) = (2usize, 3usize, 100usize);
    let mut r = runner(RMP_WORKER_VECTOR, opts, small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    let input: Vec<i32> = (0..nk * nj * ni).map(|_| 1).collect();
    r.bind_array("input", HostBuffer::from_i32(&input)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; nk]))
        .unwrap();
    r.run().unwrap();
    let got = r.array("out").unwrap().get(0).as_i64();
    let want = (nj * ni) as i64;
    assert_ne!(got, want, "the injected span bug must lose contributions");
}

#[test]
fn reject_rules_produce_compile_errors() {
    use accparse::ast::{Level, RedOp};
    let opts = CompilerOptions {
        rejects: vec![uhacc_core::RejectRule {
            span: vec![Level::Gang, Level::Worker, Level::Vector],
            op: Some(RedOp::Add),
            reason: "internal compiler limitation",
        }],
        ..CompilerOptions::openuh()
    };
    let mut r = runner(RMP_GWV, opts, small_dims());
    r.bind_int("NK", 2).unwrap();
    r.bind_int("NJ", 2).unwrap();
    r.bind_int("NI", 8).unwrap();
    r.bind_array("input", HostBuffer::from_i32(&[1; 32]))
        .unwrap();
    let err = r.run().unwrap_err();
    assert!(matches!(err, accrt::AccError::Compile(_)), "got {err:?}");
}

/// The paper's launch configuration (192 gangs, 8 workers, vector 128)
/// works end-to-end.
#[test]
fn paper_launch_dims() {
    let n = 65_536usize;
    let mut r = runner(
        SAME_LINE_GWV,
        CompilerOptions::openuh(),
        LaunchDims::paper(),
    );
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|x| (x % 3) as i32).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("sum").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
}

/// `collapse(2)` (§4: "the user can use collapse clause if the loop level
/// is more than three") fuses and distributes a rectangular nest; results
/// match the unfused version and the host.
#[test]
fn collapse_2_reduction_end_to_end() {
    let src = r#"
        int NI; int NJ; int s;
        int a[NI][NJ];
        s = 0;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector collapse(2) reduction(+:s)
            for (int i = 0; i < NI; i++) {
                for (int j = 0; j < NJ; j++) {
                    s += a[i][j];
                }
            }
        }
    "#;
    let (ni, nj) = (37usize, 53usize);
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("NI", ni as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    let a: Vec<i32> = (0..ni * nj).map(|x| (x % 29) as i32 - 14).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("s").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
}

/// collapse(3) over a triple nest with stores: the recovered indices hit
/// every element exactly once.
#[test]
fn collapse_3_stores_every_element_once() {
    let src = r#"
        int NK; int NJ; int NI;
        int out[NK][NJ][NI];
        #pragma acc parallel copyout(out)
        {
            #pragma acc loop gang worker vector collapse(3)
            for (int k = 0; k < NK; k++) {
                for (int j = 0; j < NJ; j++) {
                    for (int i = 0; i < NI; i++) {
                        out[k][j][i] = k * 10000 + j * 100 + i;
                    }
                }
            }
        }
    "#;
    let (nk, nj, ni) = (5usize, 7usize, 11usize);
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("NK", nk as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    r.bind_int("NI", ni as i64).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![-1; nk * nj * ni]))
        .unwrap();
    r.run().unwrap();
    let out = r.array("out").unwrap();
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                let got = out.get((k * nj + j) * ni + i).as_i64();
                assert_eq!(got, (k * 10000 + j * 100 + i) as i64, "({k},{j},{i})");
            }
        }
    }
}

/// collapse with a downward inner loop.
#[test]
fn collapse_with_downward_inner_loop() {
    let src = r#"
        int NI; int NJ; long s;
        long a[NI][NJ];
        s = 0;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector collapse(2) reduction(+:s)
            for (int i = 0; i < NI; i++) {
                for (int j = NJ - 1; j >= 0; j--) {
                    s += a[i][j] * (j + 1);
                }
            }
        }
    "#;
    let (ni, nj) = (12usize, 9usize);
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("NI", ni as i64).unwrap();
    r.bind_int("NJ", nj as i64).unwrap();
    let a: Vec<i64> = (0..ni * nj).map(|x| (x % 13) as i64 - 6).collect();
    r.bind_array("a", HostBuffer::from_i64(&a)).unwrap();
    r.run().unwrap();
    let want: i64 = (0..ni)
        .flat_map(|i| (0..nj).map(move |j| (i, j)))
        .map(|(i, j)| a[i * nj + j] * (j as i64 + 1))
        .sum();
    assert_eq!(r.scalar("s").unwrap().as_i64(), want);
}

/// The atomic gang strategy: same results as the paper's two-kernel
/// approach for every atomic-capable operator, with no finalize kernel.
#[test]
fn atomic_gang_strategy_matches_two_kernel() {
    use uhacc_core::GangStrategy;
    for (op_clause, update, init) in [
        ("+", "sum += a[i];", 7i64),
        ("max", "sum = max(sum, a[i]);", -999_999i64),
        ("|", "sum |= a[i];", 0i64),
    ] {
        let src = format!(
            r#"
            int N; int sum;
            int a[N];
            sum = {init};
            #pragma acc parallel copyin(a)
            {{
                #pragma acc loop gang worker vector reduction({op_clause}:sum)
                for (int i = 0; i < N; i++) {{
                    {update}
                }}
            }}
        "#
        );
        let n = 30_000usize;
        let a: Vec<i32> = (0..n).map(|x| ((x * 31) % 1000) as i32 - 500).collect();
        let mut results = Vec::new();
        for strat in [GangStrategy::TwoKernel, GangStrategy::Atomic] {
            let opts = CompilerOptions {
                gang_strategy: strat,
                ..CompilerOptions::openuh()
            };
            let mut r = runner(&src, opts, small_dims());
            r.bind_int("N", n as i64).unwrap();
            r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
            r.run().unwrap();
            // Run twice to check accumulator re-initialization between runs.
            r.bind_int("sum", init).unwrap();
            r.run_region(0).unwrap();
            results.push((
                r.scalar("sum").unwrap().as_i64(),
                r.device().stats().launches,
            ));
        }
        assert_eq!(results[0].0, results[1].0, "op {op_clause}");
        // Two-kernel launched 2 kernels per run (4 total), atomic 1 per run.
        assert_eq!(results[0].1, 4, "op {op_clause}");
        assert_eq!(results[1].1, 2, "op {op_clause}");
    }
}

/// The atomic strategy silently falls back to two-kernel for `*`
/// (no atomic multiply exists).
#[test]
fn atomic_gang_strategy_falls_back_for_product() {
    use uhacc_core::GangStrategy;
    let src = r#"
        int N; int p;
        int a[N];
        p = 1;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector reduction(*:p)
            for (int i = 0; i < N; i++) {
                p *= a[i];
            }
        }
    "#;
    let n = 4000usize;
    let a: Vec<i32> = (0..n).map(|x| 1 + (x % 2) as i32).collect();
    let opts = CompilerOptions {
        gang_strategy: GangStrategy::Atomic,
        ..CompilerOptions::openuh()
    };
    let mut r = runner(src, opts, small_dims());
    r.bind_int("N", n as i64).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    let want = a.iter().fold(1i32, |x, &y| x.wrapping_mul(y)) as i64;
    assert_eq!(r.scalar("p").unwrap().as_i64(), want);
    // Fallback => second kernel launched.
    assert_eq!(r.device().stats().launches, 2);
}

/// Multiple variables in one reduction clause (`reduction(+:x,y)`).
#[test]
fn multiple_variables_in_one_clause() {
    let src = r#"
        int N; long evens; long odds;
        int a[N];
        evens = 0;
        odds = 0;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector reduction(+:evens,odds)
            for (int i = 0; i < N; i++) {
                if (a[i] % 2 == 0) {
                    evens += a[i];
                } else {
                    odds += a[i];
                }
            }
        }
    "#;
    let n = 12_345usize;
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|x| (x % 97) as i32).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    let evens: i64 = a.iter().filter(|v| *v % 2 == 0).map(|&v| v as i64).sum();
    let odds: i64 = a.iter().filter(|v| *v % 2 != 0).map(|&v| v as i64).sum();
    assert_eq!(r.scalar("evens").unwrap().as_i64(), evens);
    assert_eq!(r.scalar("odds").unwrap().as_i64(), odds);
}

/// Two different reduction clauses with different operators on one loop.
#[test]
fn different_operators_on_one_loop() {
    let src = r#"
        int N; int total; int biggest;
        int a[N];
        total = 0;
        biggest = -1000000;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector reduction(+:total) reduction(max:biggest)
            for (int i = 0; i < N; i++) {
                total += a[i];
                biggest = max(biggest, a[i]);
            }
        }
    "#;
    let n = 9_999usize;
    let mut r = runner(src, CompilerOptions::openuh(), small_dims());
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<i32> = (0..n).map(|x| ((x * 7919) % 5000) as i32 - 2500).collect();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("total").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
    assert_eq!(
        r.scalar("biggest").unwrap().as_i64(),
        *a.iter().max().unwrap() as i64
    );
}
