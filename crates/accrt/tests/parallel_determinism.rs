//! Property test for the parallel block executor's headline guarantee:
//! at any `host_threads` setting, a launch produces results, session
//! statistics (including modelled cycles), and sanitizer hazard reports
//! **bit-identical** to the sequential path — across random launch
//! geometries (non-power-of-two vectors included), random problem sizes,
//! and with the sanitizer both off and on.
//!
//! The comparison deliberately goes through the full pipeline (parse →
//! analyze → compile → simulate → writeback) so it also covers the
//! runtime's mailbox writebacks and gang-partials finalize launches.

use accrt::{AccRunner, HostBuffer};
use gpsim::{Device, HazardReport, SanitizerLevel, SessionStats, Value};
use proptest::prelude::*;
use uhacc_core::{CompilerOptions, LaunchDims};

/// Sum + max reduction over a 1-D array, plus a per-gang array write:
/// exercises scalar mailbox writeback (multi-writer, highest-block-wins),
/// cross-block gang partials with a finalize kernel, and plain global
/// stores, all in one region.
const SRC_INT: &str = r#"
    int N; long sum; int hi;
    int a[N];
    int out[N];
    #pragma acc parallel copyin(a) copyout(out)
    {
        #pragma acc loop gang worker vector reduction(+:sum) reduction(max:hi)
        for (int i = 0; i < N; i++) {
            sum += a[i];
            hi = max(hi, a[i]);
            out[i] = a[i] * 2 + i;
        }
    }
"#;

/// Float variant: cross-block combination of `f` partials is
/// rounding-sensitive, so bitwise equality here proves the commit really
/// replays in sequential block order.
const SRC_FLOAT: &str = r#"
    int N; float f;
    float a[N];
    #pragma acc parallel copyin(a)
    {
        #pragma acc loop gang worker vector reduction(+:f)
        for (int i = 0; i < N; i++) {
            f += a[i];
        }
    }
"#;

/// Everything observable from one run.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    scalars: Vec<(String, Value)>,
    out: Option<Vec<Value>>,
    stats: SessionStats,
    hazards: Vec<HazardReport>,
}

fn run_int(n: usize, dims: LaunchDims, host_threads: u32, sanitize: bool, seed: i32) -> Observed {
    let mut r =
        AccRunner::with_options(SRC_INT, CompilerOptions::openuh(), dims, Device::default())
            .expect("compile");
    r.set_host_threads(host_threads);
    if sanitize {
        r.sanitize(SanitizerLevel::Full);
    }
    let a: Vec<i32> = (0..n as i32).map(|i| (i * 31 + seed) % 97 - 48).collect();
    r.bind_int("N", n as i64).unwrap();
    r.bind_int("sum", 0).unwrap();
    r.bind_int("hi", i32::MIN as i64).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
    r.bind_array("out", HostBuffer::from_i32(&vec![0; n]))
        .unwrap();
    r.run().unwrap();
    Observed {
        scalars: ["sum", "hi"]
            .iter()
            .map(|s| (s.to_string(), r.scalar(s).unwrap()))
            .collect(),
        out: Some((0..n).map(|i| r.array("out").unwrap().get(i)).collect()),
        stats: *r.device().stats(),
        hazards: r.take_hazards(),
    }
}

fn run_float(n: usize, dims: LaunchDims, host_threads: u32, sanitize: bool) -> Observed {
    let mut r = AccRunner::with_options(
        SRC_FLOAT,
        CompilerOptions::openuh(),
        dims,
        Device::default(),
    )
    .expect("compile");
    r.set_host_threads(host_threads);
    if sanitize {
        r.sanitize(SanitizerLevel::Full);
    }
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37 + 0.1).sin()).collect();
    r.bind_int("N", n as i64).unwrap();
    r.bind_float("f", 0.0).unwrap();
    let mut buf = HostBuffer::new(accparse::ast::CType::Float, n);
    for (i, &v) in a.iter().enumerate() {
        buf.set(i, Value::F32(v as f32));
    }
    r.bind_array("a", buf).unwrap();
    r.run().unwrap();
    Observed {
        scalars: vec![("f".to_string(), r.scalar("f").unwrap())],
        out: None,
        stats: *r.device().stats(),
        hazards: r.take_hazards(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Integer pipeline: identical scalars, arrays, stats, and hazard
    /// reports at 2/3/8 host threads vs sequential, sanitizer off and on.
    #[test]
    fn parallel_matches_sequential_int(
        gangs in 1u32..6,
        workers in 1u32..4,
        vector in 1u32..48, // non-pow2 vectors included
        n in 1usize..3000,
        seed in 0i32..1000,
        sanitize in any::<bool>(),
    ) {
        let dims = LaunchDims { gangs, workers, vector };
        let want = run_int(n, dims, 1, sanitize, seed);
        for threads in [2u32, 3, 8] {
            let got = run_int(n, dims, threads, sanitize, seed);
            prop_assert_eq!(&want, &got, "divergence at {} host threads", threads);
        }
    }

    /// Float pipeline: cross-block rounding order is preserved bit-exactly.
    #[test]
    fn parallel_matches_sequential_float(
        gangs in 1u32..6,
        workers in 1u32..3,
        vector in 1u32..48,
        n in 1usize..2000,
        sanitize in any::<bool>(),
    ) {
        let dims = LaunchDims { gangs, workers, vector };
        let want = run_float(n, dims, 1, sanitize);
        for threads in [2u32, 3, 8] {
            let got = run_float(n, dims, threads, sanitize);
            prop_assert_eq!(&want, &got, "divergence at {} host threads", threads);
        }
    }
}
