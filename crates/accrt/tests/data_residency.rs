//! Tests for the OpenACC 2.0-style runtime data management: `enter_data`,
//! `exit_data`, `update_host`, `update_device`.

use accrt::{AccRunner, HostBuffer};
use gpsim::Device;
use uhacc_core::{CompilerOptions, LaunchDims};

const SCALE_SRC: &str = r#"
    int N;
    double a[N];
    #pragma acc parallel copy(a)
    {
        #pragma acc loop gang vector
        for (int i = 0; i < N; i++) {
            a[i] = a[i] * 2.0;
        }
    }
"#;

fn runner() -> AccRunner {
    AccRunner::with_options(
        SCALE_SRC,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap()
}

#[test]
fn resident_array_skips_transfers() {
    let n = 50_000usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();

    // Without residency: copy in + out every region run.
    let mut r1 = runner();
    r1.bind_int("N", n as i64).unwrap();
    r1.bind_array("a", HostBuffer::from_f64(&data)).unwrap();
    for _ in 0..4 {
        r1.run_region(0).unwrap();
    }
    let bytes_no_res = r1.device().stats().bytes_h2d + r1.device().stats().bytes_d2h;

    // With residency: one upload, one download.
    let mut r2 = runner();
    r2.bind_int("N", n as i64).unwrap();
    r2.bind_array("a", HostBuffer::from_f64(&data)).unwrap();
    r2.enter_data("a").unwrap();
    for _ in 0..4 {
        r2.run_region(0).unwrap();
    }
    r2.exit_data("a").unwrap();
    let bytes_res = r2.device().stats().bytes_h2d + r2.device().stats().bytes_d2h;

    assert!(
        bytes_res * 3 < bytes_no_res,
        "{bytes_res} vs {bytes_no_res}"
    );
    // Results identical: x * 2^4.
    let a1 = r1.array("a").unwrap().to_f64_vec();
    let a2 = r2.array("a").unwrap().to_f64_vec();
    assert_eq!(a1, a2);
    assert_eq!(a2[3], 3.0 * 16.0);
}

#[test]
fn update_host_refreshes_without_ending_residency() {
    let n = 1000usize;
    let mut r = runner();
    r.bind_int("N", n as i64).unwrap();
    r.bind_array("a", HostBuffer::from_f64(&vec![1.0; n]))
        .unwrap();
    r.enter_data("a").unwrap();
    r.run_region(0).unwrap();
    // Host copy is stale until update_host.
    assert_eq!(r.array("a").unwrap().get(0).as_f64(), 1.0);
    r.update_host("a").unwrap();
    assert_eq!(r.array("a").unwrap().get(0).as_f64(), 2.0);
    // Still resident: mutate on host, push with update_device, run again.
    r.array_mut("a").unwrap().set(0, gpsim::Value::F64(10.0));
    r.update_device("a").unwrap();
    r.run_region(0).unwrap();
    r.update_host("a").unwrap();
    assert_eq!(r.array("a").unwrap().get(0).as_f64(), 20.0);
}

#[test]
fn enter_data_requires_binding() {
    let mut r = runner();
    r.bind_int("N", 10).unwrap();
    assert!(r.enter_data("a").is_err());
    assert!(r.enter_data("nosuch").is_err());
}

#[test]
fn present_clause_satisfied_by_residency() {
    let src = r#"
        int N; double s;
        double a[N];
        s = 0.0;
        #pragma acc parallel present(a)
        {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < N; i++) { s += a[i]; }
        }
    "#;
    let n = 2000usize;
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    // Without enter_data the present clause must fail.
    r.bind_array("a", HostBuffer::from_f64(&vec![0.5; n]))
        .unwrap();
    assert!(r.run_region(0).is_err());
    r.enter_data("a").unwrap();
    r.run_region(0).unwrap();
    assert_eq!(r.scalar("s").unwrap().as_f64(), 1000.0);
}

/// Structured `#pragma acc data` region in the source: arrays stay
/// device-resident across the enclosed regions, with one upload and one
/// download at the scope boundaries.
#[test]
fn structured_data_region_governs_transfers() {
    let src = r#"
        int N;
        double a[N];
        double norm2;
        norm2 = 0.0;
        #pragma acc data copy(a)
        {
            #pragma acc parallel copy(a)
            {
                #pragma acc loop gang vector
                for (int i = 0; i < N; i++) { a[i] = a[i] * 2.0; }
            }
            #pragma acc parallel copy(a)
            {
                #pragma acc loop gang vector
                for (int i = 0; i < N; i++) { a[i] = a[i] + 1.0; }
            }
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang vector reduction(+:norm2)
                for (int i = 0; i < N; i++) { norm2 += a[i] * a[i]; }
            }
        }
    "#;
    let n = 20_000usize;
    let data: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.bind_array("a", HostBuffer::from_f64(&data)).unwrap();
    r.run().unwrap();
    // One upload + one download of `a` in total.
    let bytes = n as u64 * 8;
    assert_eq!(r.device().stats().bytes_h2d, bytes);
    assert_eq!(r.device().stats().bytes_d2h, bytes);
    // Results correct.
    let want: f64 = data.iter().map(|x| (x * 2.0 + 1.0) * (x * 2.0 + 1.0)).sum();
    assert!((r.scalar("norm2").unwrap().as_f64() - want).abs() < 1e-6 * want);
    assert_eq!(r.array("a").unwrap().get(1).as_f64(), data[1] * 2.0 + 1.0);
}

/// Nested data regions: the inner `present` clause is satisfied by the
/// outer scope; transfers happen only at the outer boundary.
#[test]
fn nested_data_regions_refcount() {
    let src = r#"
        int N;
        int a[N];
        #pragma acc data copy(a)
        {
            #pragma acc data present(a)
            {
                #pragma acc parallel present(a)
                {
                    #pragma acc loop gang vector
                    for (int i = 0; i < N; i++) { a[i] = a[i] + 5; }
                }
            }
            #pragma acc parallel present(a)
            {
                #pragma acc loop gang vector
                for (int i = 0; i < N; i++) { a[i] = a[i] * 3; }
            }
        }
    "#;
    let n = 1000usize;
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 1,
            vector: 32,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.bind_array("a", HostBuffer::from_i32(&vec![1; n]))
        .unwrap();
    r.run().unwrap();
    assert_eq!(r.array("a").unwrap().get(0).as_i64(), (1 + 5) * 3);
    let bytes = n as u64 * 4;
    assert_eq!(r.device().stats().bytes_h2d, bytes, "single upload");
    assert_eq!(r.device().stats().bytes_d2h, bytes, "single download");
}

/// `create` in a data region allocates without uploading; the first region
/// fills the array, the second consumes it, and nothing crosses PCIe
/// until... never (create has no copyout).
#[test]
fn create_clause_allocates_only() {
    let src = r#"
        int N; long total;
        int scratch[N];
        total = 0;
        #pragma acc data create(scratch)
        {
            #pragma acc parallel present(scratch)
            {
                #pragma acc loop gang vector
                for (int i = 0; i < N; i++) { scratch[i] = i; }
            }
            #pragma acc parallel present(scratch)
            {
                #pragma acc loop gang vector reduction(+:total)
                for (int i = 0; i < N; i++) { total += scratch[i]; }
            }
        }
    "#;
    let n = 5000usize;
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 2,
            workers: 1,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("total").unwrap().as_i64(),
        (n as i64 - 1) * n as i64 / 2
    );
    assert_eq!(r.device().stats().bytes_h2d, 0);
    assert_eq!(r.device().stats().bytes_d2h, 0);
}

/// Data-region diagnostics: unknown arrays and scalars are rejected.
#[test]
fn data_region_diagnostics() {
    assert!(accparse::compile(
        "int N;\n#pragma acc data copy(nosuch)\n{\n#pragma acc parallel\n{\n#pragma acc loop gang\nfor (int i = 0; i < N; i++) { }\n}\n}"
    )
    .is_err());
    assert!(accparse::compile(
        "int N;\n#pragma acc data copy(N)\n{\n#pragma acc parallel\n{\n#pragma acc loop gang\nfor (int i = 0; i < N; i++) { }\n}\n}"
    )
    .is_err());
}
