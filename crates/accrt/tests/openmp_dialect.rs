//! Tests for the OpenMP 4.0 offload dialect (paper §6): `target teams
//! distribute [parallel for]` maps teams -> gang and threads -> vector,
//! with the worker level unused.

use accrt::{AccRunner, HostBuffer};
use gpsim::Device;
use uhacc_core::{CompilerOptions, LaunchDims};

#[test]
fn omp_combined_teams_parallel_for_reduction() {
    let src = r#"
        int N; double s;
        double a[N];
        s = 1.5;
        #pragma omp target teams distribute parallel for reduction(+:s) map(to: a) num_teams(8)
        for (int i = 0; i < N; i++) {
            s += a[i];
        }
    "#;
    let n = 20_000usize;
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 8,
            workers: 4,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    let a: Vec<f64> = (0..n).map(|i| ((i % 100) as f64) * 0.25).collect();
    r.bind_array("a", HostBuffer::from_f64(&a)).unwrap();
    r.run().unwrap();
    let want: f64 = 1.5 + a.iter().sum::<f64>();
    let got = r.scalar("s").unwrap().as_f64();
    assert!((got - want).abs() < 1e-9 * want, "{got} vs {want}");
    // Two-level mapping: the teams clause resolved to 8 gangs and, since no
    // worker level is named anywhere, the runner launches with workers = 1.
    let dims = r.resolve_dims(0).unwrap();
    assert_eq!(dims.gangs, 8);
    assert_eq!(dims.workers, 1, "the worker level is ignored (paper §6)");
}

#[test]
fn omp_teams_distribute_with_inner_parallel_for() {
    let src = r#"
        int N; int M;
        int A[N][M];
        int rs[N];
        #pragma omp target teams distribute map(to: A) map(from: rs)
        for (int i = 0; i < N; i++) {
            int s = 0;
            #pragma omp parallel for reduction(+:s)
            for (int j = 0; j < M; j++) {
                s += A[i][j];
            }
            rs[i] = s;
        }
    "#;
    let (n, m) = (30usize, 500usize);
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 6,
            workers: 2,
            vector: 64,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.bind_int("M", m as i64).unwrap();
    let a: Vec<i32> = (0..n * m).map(|x| (x % 23) as i32 - 11).collect();
    r.bind_array("A", HostBuffer::from_i32(&a)).unwrap();
    r.bind_array("rs", HostBuffer::from_i32(&vec![0; n]))
        .unwrap();
    r.run().unwrap();
    let rs = r.array("rs").unwrap();
    for i in 0..n {
        let want: i32 = a[i * m..(i + 1) * m].iter().sum();
        assert_eq!(rs.get(i).as_i64() as i32, want, "i={i}");
    }
}

#[test]
fn omp_collapse_clause() {
    let src = r#"
        int N; int M; long s;
        int A[N][M];
        s = 0;
        #pragma omp target teams distribute parallel for collapse(2) reduction(+:s) map(to: A)
        for (int i = 0; i < N; i++) {
            for (int j = 0; j < M; j++) {
                s += A[i][j];
            }
        }
    "#;
    let (n, m) = (19usize, 31usize);
    let mut r = AccRunner::with_options(
        src,
        CompilerOptions::openuh(),
        LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 32,
        },
        Device::default(),
    )
    .unwrap();
    r.bind_int("N", n as i64).unwrap();
    r.bind_int("M", m as i64).unwrap();
    let a: Vec<i32> = (0..n * m).map(|x| (x % 7) as i32 - 3).collect();
    r.bind_array("A", HostBuffer::from_i32(&a)).unwrap();
    r.run().unwrap();
    assert_eq!(
        r.scalar("s").unwrap().as_i64(),
        a.iter().map(|&v| v as i64).sum::<i64>()
    );
}

#[test]
fn omp_rejects_unsupported_forms() {
    // Not the offload form.
    assert!(
        accparse::compile("int N;\n#pragma omp parallel for\nfor (int i = 0; i < N; i++) { }")
            .is_err()
    );
    // Unknown clause.
    assert!(accparse::compile(
        "int N; int s;\n#pragma omp target teams distribute parallel for bogus(3) reduction(+:s)\nfor (int i = 0; i < N; i++) { s += 1; }"
    )
    .is_err());
}
