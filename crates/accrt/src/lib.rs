//! # accrt — the OpenACC-style runtime
//!
//! Executes programs compiled by [`uhacc_core`] on the [`gpsim`] simulated
//! device: host data environment (scalar and array bindings), data-clause
//! transfers, kernel launches, second-pass reduction kernels, and
//! gang-reduction result folds.
//!
//! ```
//! use accrt::{AccRunner, HostBuffer};
//! use gpsim::Value;
//!
//! let src = r#"
//!     int N; int s;
//!     int a[N];
//!     s = 0;
//!     #pragma acc parallel copyin(a) num_gangs(4) vector_length(32)
//!     {
//!         #pragma acc loop gang vector reduction(+:s)
//!         for (int i = 0; i < N; i++) { s += a[i]; }
//!     }
//! "#;
//! let mut r = AccRunner::new(src).unwrap();
//! r.bind_int("N", 100).unwrap();
//! r.bind_array("a", HostBuffer::from_i32(&vec![1; 100])).unwrap();
//! r.run().unwrap();
//! assert_eq!(r.scalar("s").unwrap(), Value::I32(100));
//! ```

pub mod cache;
pub mod error;
pub mod hostbuf;
pub mod hosteval;
pub mod runner;

pub use cache::{CacheCounters, RegionCache, RegionKey};
pub use error::AccError;
pub use hostbuf::HostBuffer;
pub use hosteval::{eval_host_expr, eval_host_extent};
pub use runner::{AccRunner, RunnerObs};
