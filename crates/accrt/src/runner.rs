//! The OpenACC program runner: owns the device, the host data
//! environment, and the compiled-region cache, and executes regions
//! (transfers, main kernel, finalize kernels, result folds) the way the
//! OpenUH runtime drives CUDA.

use crate::cache::{RegionCache, RegionKey};
use crate::error::AccError;
use crate::hostbuf::HostBuffer;
use crate::hosteval::{eval_host_expr, eval_host_extent};
use accparse::ast::{CType, DataDir};
use accparse::hir::AnalyzedProgram;
use gpsim::{
    BufferHandle, Device, HazardReport, LaunchConfig, ProfileConfig, SanitizerConfig,
    SanitizerLevel, SessionProfile, Value,
};
use std::collections::HashMap;
use std::sync::Arc;
use uhacc_core::plan::{CompiledRegion, ParamSpec};
use uhacc_core::types::{apply_host, machine_ty};
use uhacc_core::{CompilerOptions, LaunchDims};

/// Cached device-side state for one compiled region: the shared immutable
/// artifact plus this session's own temp buffers.
struct RegionInstance {
    compiled: Arc<CompiledRegion>,
    temp_buffers: Vec<BufferHandle>,
}

/// Observability hook for a session ([`AccRunner::set_obs`]): while
/// attached, [`AccRunner::run_region`] records one span per phase
/// (`codegen` when a compile actually happens, `h2d`, `launch`, `d2h`)
/// into the shared tracer under this request's trace id, and feeds
/// compile durations into the histogram. With no hook attached the
/// runner never reads a clock — the zero-cost (and, under the virtual
/// clock, zero-tick) default.
#[derive(Clone)]
pub struct RunnerObs {
    pub tracer: Arc<uhobs::Tracer>,
    pub trace_id: u64,
    pub compile_hist: Option<uhobs::Histogram>,
}

/// The runner: program + device + data environment.
///
/// A runner is one *session*: it owns every piece of mutable state (host
/// bindings, device memory, statistics, profiles) and is `Send`, so a
/// service can move sessions onto worker threads. Everything immutable —
/// the analyzed program and compiled kernel artifacts — is shared via
/// `Arc`, so N concurrent sessions of the same program cost one parse and
/// one codegen (see [`AccRunner::from_shared`] and
/// [`AccRunner::set_region_cache`]).
pub struct AccRunner {
    prog: Arc<AnalyzedProgram>,
    /// The OpenACC source text, when the runner was built from source
    /// (used to quote lines in profile reports).
    src: Option<String>,
    device: Device,
    opts: CompilerOptions,
    default_dims: LaunchDims,
    scalars: Vec<Value>,
    scalar_bound: Vec<bool>,
    arrays: Vec<Option<HostBuffer>>,
    dev_arrays: Vec<Option<(BufferHandle, u64)>>,
    /// Residency reference counts: arrays entered via [`AccRunner::enter_data`]
    /// or an enclosing `#pragma acc data` scope. While positive, per-region
    /// `copyin`/`copyout` clauses become `present` (no transfers).
    resident: Vec<u32>,
    instances: HashMap<(usize, u32, u32, u32), RegionInstance>,
    /// Shared compiled-artifact cache and this program's content key in
    /// it. When set, region compilation is looked up there first.
    region_cache: Option<(Arc<RegionCache>, u64)>,
    /// Region compilations this session actually performed (cache misses
    /// and uncached compiles both count; warm cache hits do not).
    compiles: u64,
    host_assigns_done: bool,
    /// Optional observability hook (see [`RunnerObs`]).
    obs: Option<RunnerObs>,
}

// The whole session must stay movable across threads: the uhaccd worker
// pool depends on it. A non-Send field (Rc, RefCell, raw pointer) breaks
// this at compile time, here, rather than deep inside the service.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AccRunner>();
    assert_send::<Device>();
    assert_send::<RunnerObs>();
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Arc<AnalyzedProgram>>();
    assert_send_sync::<Arc<CompiledRegion>>();
    assert_send_sync::<RegionCache>();
};

impl AccRunner {
    /// Parse, analyze and prepare `src` with default options (OpenUH
    /// strategies, paper launch dims scaled to the source's needs) on a
    /// default device.
    pub fn new(src: &str) -> Result<Self, AccError> {
        Self::with_options(
            src,
            CompilerOptions::openuh(),
            LaunchDims::paper(),
            Device::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_options(
        src: &str,
        opts: CompilerOptions,
        default_dims: LaunchDims,
        device: Device,
    ) -> Result<Self, AccError> {
        let prog = accparse::compile(src)?;
        let mut runner = Self::from_hir(prog, opts, default_dims, device);
        runner.src = Some(src.to_string());
        Ok(runner)
    }

    /// Build from an already-analyzed program.
    pub fn from_hir(
        prog: AnalyzedProgram,
        opts: CompilerOptions,
        default_dims: LaunchDims,
        device: Device,
    ) -> Self {
        Self::from_shared(Arc::new(prog), opts, default_dims, device)
    }

    /// Build a session over a *shared* analyzed program: N concurrent
    /// sessions of the same source cost one parse. This is the
    /// constructor the `uhaccd` service uses after a program-cache hit.
    pub fn from_shared(
        prog: Arc<AnalyzedProgram>,
        opts: CompilerOptions,
        default_dims: LaunchDims,
        device: Device,
    ) -> Self {
        let n_scalars = prog.hosts.len();
        let n_arrays = prog.arrays.len();
        AccRunner {
            prog,
            src: None,
            device,
            opts,
            default_dims,
            scalars: vec![Value::I32(0); n_scalars],
            scalar_bound: vec![false; n_scalars],
            arrays: (0..n_arrays).map(|_| None).collect(),
            dev_arrays: vec![None; n_arrays],
            resident: vec![0; n_arrays],
            instances: HashMap::new(),
            region_cache: None,
            compiles: 0,
            host_assigns_done: false,
            obs: None,
        }
    }

    /// Attach the session's source text (enables source quoting in
    /// profile reports for sessions built via [`AccRunner::from_shared`]).
    pub fn set_source(&mut self, src: &str) {
        self.src = Some(src.to_string());
    }

    /// Route region compilation through a shared artifact cache.
    /// `program_key` must content-address this session's `(source,
    /// options)` pair — use [`uhacc_core::program_key`] — so sessions of
    /// different programs or strategies never alias.
    pub fn set_region_cache(&mut self, cache: Arc<RegionCache>, program_key: u64) {
        self.region_cache = Some((cache, program_key));
    }

    /// Region compilations this session performed itself (warm cache
    /// hits are *not* counted — that is the point of the counter).
    pub fn compiles(&self) -> u64 {
        self.compiles
    }

    /// The analyzed program.
    pub fn program(&self) -> &AnalyzedProgram {
        &self.prog
    }

    /// The analyzed program as a shareable handle (cheap clone; build
    /// more sessions of the same program with [`AccRunner::from_shared`]).
    pub fn program_shared(&self) -> Arc<AnalyzedProgram> {
        self.prog.clone()
    }

    /// The simulated device (stats, cost model, ...).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access (cost-model calibration in experiments).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Modelled milliseconds elapsed on the device so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.device.elapsed_ms()
    }

    /// Reset device timing/statistics (keeps data).
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }

    /// Set the number of host worker threads used to execute independent
    /// thread blocks (0 = auto, 1 = sequential; the `UHACC_HOST_THREADS`
    /// environment variable overrides the auto default). Every observable
    /// result — array contents, scalars, modelled cycles, hazard reports —
    /// is bit-identical at any setting; this knob only changes wall-clock
    /// simulation time.
    pub fn set_host_threads(&mut self, n: u32) {
        self.device.set_host_threads(n);
    }

    /// Select the simulator execution tier for every subsequent launch
    /// (see [`gpsim::ExecTier`]): the reference interpreter, the compiled
    /// tier, or `Auto` (compiled with interpreter fallback). Observable
    /// results are bit-identical across tiers; this knob only changes
    /// wall-clock simulation time.
    pub fn set_exec_tier(&mut self, tier: gpsim::ExecTier) {
        self.device.set_exec_tier(tier);
    }

    /// Run every subsequent launch — main kernels *and* gang-reduction
    /// finalize kernels — under the simulator's hazard sanitizer at
    /// `level` (see [`gpsim::sanitizer`]). [`SanitizerLevel::Off`] turns
    /// instrumentation back off.
    pub fn sanitize(&mut self, level: SanitizerLevel) {
        self.device.set_sanitizer(SanitizerConfig {
            level,
            ..SanitizerConfig::default()
        });
    }

    /// Hazard reports the sanitizer has accumulated across this runner's
    /// launches (empty when the sanitizer is off).
    pub fn hazards(&self) -> &[HazardReport] {
        self.device.hazards()
    }

    /// Drain the accumulated hazard reports.
    pub fn take_hazards(&mut self) -> Vec<HazardReport> {
        self.device.take_hazards()
    }

    /// Statically verify every subsequent launch — main kernels *and*
    /// finalize kernels — with [`gpsim::verify`] as a pre-launch pass at
    /// the launch's block shape. Advisory: a finding never aborts the
    /// run; harvest reports with [`AccRunner::take_verify_reports`].
    pub fn verify(&mut self, on: bool) {
        self.device
            .set_verifier(on.then(gpsim::VerifyConfig::default));
    }

    /// Certify every subsequent region execution with the translation
    /// validator ([`uhacc_core::cert`]) as a pre-launch pass: the compiled
    /// kernels are symbolically executed over the region's launch plan and
    /// compared, observable by observable, against a sequential reference
    /// interpretation of the source HIR at the bound scalar values and
    /// array extents. Advisory: a `Refuted` verdict never aborts the run;
    /// harvest reports with [`AccRunner::take_cert_reports`].
    pub fn certify(&mut self, on: bool) {
        self.device
            .set_certifier(on.then(gpsim::cert::CertConfig::default));
    }

    /// Certification reports accumulated across region executions.
    pub fn cert_reports(&self) -> &[gpsim::CertReport] {
        self.device.cert_reports()
    }

    /// Drain the accumulated certification reports.
    pub fn take_cert_reports(&mut self) -> Vec<gpsim::CertReport> {
        self.device.take_cert_reports()
    }

    /// Profile every subsequent transfer and launch — main kernels *and*
    /// gang-reduction finalize kernels — with [`gpsim::profile`]:
    /// per-source-line stall attribution plus a modelled timeline of
    /// transfers, kernels and per-SM block execution. Observational only:
    /// results and modelled cycles are unchanged, and every exported byte
    /// is identical at any host thread count.
    pub fn profile(&mut self, on: bool) {
        self.device.set_profiler(on.then(ProfileConfig::default));
    }

    /// Human-readable profile report, with per-line rows quoting the
    /// OpenACC source when the runner was built from source text.
    pub fn profile_report(&self) -> String {
        self.device.profile().report(self.src.as_deref())
    }

    /// Stable machine-readable profile JSON (byte-identical across runs
    /// and host thread counts).
    pub fn profile_json(&self) -> String {
        self.device.profile().to_json()
    }

    /// Chrome-trace (Perfetto / `chrome://tracing`) timeline of
    /// transfers, kernel launches and per-SM block spans.
    pub fn profile_chrome_trace(&self) -> String {
        self.device.profile().to_chrome_trace()
    }

    /// Drain the accumulated session profile.
    pub fn take_profile(&mut self) -> SessionProfile {
        self.device.take_profile()
    }

    /// Attach the observability hook: subsequent [`AccRunner::run_region`]
    /// calls record per-phase spans into `obs.tracer` under
    /// `obs.trace_id`.
    pub fn set_obs(&mut self, obs: RunnerObs) {
        self.obs = Some(obs);
    }

    /// Read the observability clock, if a hook is attached. (Virtual
    /// clocks advance per read, so this is only called on traced paths.)
    fn obs_now(&self) -> Option<u64> {
        self.obs.as_ref().map(|o| o.tracer.now_us())
    }

    /// Close a span opened by [`Self::obs_now`].
    fn obs_record(&self, name: &str, start: Option<u64>) -> u64 {
        match (&self.obs, start) {
            (Some(o), Some(s)) => {
                let end = o.tracer.now_us();
                o.tracer.record(o.trace_id, name, s, end, &[]);
                end.saturating_sub(s)
            }
            _ => 0,
        }
    }

    /// Static verification reports accumulated across launches.
    pub fn verify_reports(&self) -> &[gpsim::VerifyReport] {
        self.device.verify_reports()
    }

    /// Drain the accumulated verification reports.
    pub fn take_verify_reports(&mut self) -> Vec<gpsim::VerifyReport> {
        self.device.take_verify_reports()
    }

    fn host_index(&self, name: &str) -> Result<usize, AccError> {
        self.prog
            .host_index(name)
            .ok_or_else(|| AccError::Binding(format!("no host scalar named `{name}`")))
    }

    fn array_index(&self, name: &str) -> Result<usize, AccError> {
        self.prog
            .array_index(name)
            .ok_or_else(|| AccError::Binding(format!("no array named `{name}`")))
    }

    /// Bind a host scalar by name.
    pub fn bind_scalar(&mut self, name: &str, v: Value) -> Result<(), AccError> {
        let i = self.host_index(name)?;
        let ty = machine_ty(self.prog.hosts[i].ty);
        self.scalars[i] = v.convert(ty);
        self.scalar_bound[i] = true;
        Ok(())
    }

    /// Bind an integer host scalar by name.
    pub fn bind_int(&mut self, name: &str, v: i64) -> Result<(), AccError> {
        self.bind_scalar(name, Value::I64(v))
    }

    /// Bind a float host scalar by name.
    pub fn bind_float(&mut self, name: &str, v: f64) -> Result<(), AccError> {
        self.bind_scalar(name, Value::F64(v))
    }

    /// Read a host scalar's current value.
    pub fn scalar(&self, name: &str) -> Result<Value, AccError> {
        Ok(self.scalars[self.host_index(name)?])
    }

    /// Bind a host array by name. The element type must match the
    /// declaration; the length is validated at region launch against the
    /// declared dimensions.
    pub fn bind_array(&mut self, name: &str, buf: HostBuffer) -> Result<(), AccError> {
        let i = self.array_index(name)?;
        let want = self.prog.arrays[i].ty;
        if buf.ty() != want {
            return Err(AccError::Binding(format!(
                "array `{name}` is declared {want} but the binding is {}",
                buf.ty()
            )));
        }
        self.arrays[i] = Some(buf);
        Ok(())
    }

    /// Borrow a bound host array.
    pub fn array(&self, name: &str) -> Result<&HostBuffer, AccError> {
        let i = self.array_index(name)?;
        self.arrays[i]
            .as_ref()
            .ok_or_else(|| AccError::Binding(format!("array `{name}` is not bound")))
    }

    /// Mutably borrow a bound host array.
    pub fn array_mut(&mut self, name: &str) -> Result<&mut HostBuffer, AccError> {
        let i = self.array_index(name)?;
        self.arrays[i]
            .as_mut()
            .ok_or_else(|| AccError::Binding(format!("array `{name}` is not bound")))
    }

    /// Swap two arrays' host and device bindings (the classic stencil
    /// double-buffer swap; both arrays must have identical shape/type).
    pub fn swap_arrays(&mut self, a: &str, b: &str) -> Result<(), AccError> {
        let ia = self.array_index(a)?;
        let ib = self.array_index(b)?;
        if self.prog.arrays[ia].ty != self.prog.arrays[ib].ty
            || self.prog.arrays[ia].dims.len() != self.prog.arrays[ib].dims.len()
        {
            return Err(AccError::Binding(format!(
                "arrays `{a}` and `{b}` are not compatible"
            )));
        }
        self.arrays.swap(ia, ib);
        self.dev_arrays.swap(ia, ib);
        self.resident.swap(ia, ib);
        Ok(())
    }

    /// Ensure a device buffer of the declared size exists for array `i`.
    fn ensure_device_array(&mut self, i: usize) -> Result<(BufferHandle, u64), AccError> {
        let decl = self.prog.arrays[i].clone();
        let mut elems = 1u64;
        for d in &decl.dims {
            elems *= eval_host_extent(d, &self.scalars, &format!("dimension of `{}`", decl.name))?;
        }
        let realloc = match self.dev_arrays[i] {
            Some((_, have)) => have != elems,
            None => true,
        };
        if realloc {
            let h = self
                .device
                .alloc(elems * machine_ty(decl.ty).size() as u64)?;
            self.dev_arrays[i] = Some((h, elems));
        }
        Ok(self.dev_arrays[i].unwrap())
    }

    /// Enter a structured-data binding: allocate, optionally upload, and
    /// bump the residency refcount (transfers only on the 0 -> 1 edge,
    /// OpenACC `present_or_*` semantics).
    fn enter_binding(&mut self, i: usize, dir: DataDir) -> Result<(), AccError> {
        if self.resident[i] == 0 {
            if dir == DataDir::Present && self.dev_arrays[i].is_none() {
                return Err(AccError::Binding(format!(
                    "array `{}` marked present but not on the device",
                    self.prog.arrays[i].name
                )));
            }
            let (handle, elems) = self.ensure_device_array(i)?;
            if matches!(dir, DataDir::CopyIn | DataDir::Copy) {
                let host = self.arrays[i].as_ref().ok_or_else(|| {
                    AccError::Binding(format!("array `{}` is not bound", self.prog.arrays[i].name))
                })?;
                if host.len() as u64 != elems {
                    return Err(AccError::Binding(format!(
                        "array `{}` declared with {elems} element(s) but bound with {}",
                        self.prog.arrays[i].name,
                        host.len()
                    )));
                }
                let bytes = host.bytes().to_vec();
                self.device.memcpy_h2d(handle, &bytes)?;
            }
        }
        self.resident[i] += 1;
        Ok(())
    }

    /// Exit a structured-data binding: drop the refcount and download on
    /// the 1 -> 0 edge for `copyout`/`copy`.
    fn exit_binding(&mut self, i: usize, dir: DataDir) -> Result<(), AccError> {
        debug_assert!(self.resident[i] > 0, "unbalanced data scope exit");
        self.resident[i] = self.resident[i].saturating_sub(1);
        if self.resident[i] == 0 && matches!(dir, DataDir::CopyOut | DataDir::Copy) {
            self.download_array(i)?;
        }
        Ok(())
    }

    fn download_array(&mut self, i: usize) -> Result<(), AccError> {
        let (handle, elems) = self.dev_arrays[i].ok_or_else(|| {
            AccError::Binding(format!(
                "array `{}` has no device buffer",
                self.prog.arrays[i].name
            ))
        })?;
        let decl_ty = self.prog.arrays[i].ty;
        if self.arrays[i].is_none() {
            self.arrays[i] = Some(HostBuffer::new(decl_ty, elems as usize));
        }
        let host = self.arrays[i].as_mut().unwrap();
        let mut bytes = vec![0u8; host.bytes().len()];
        self.device.memcpy_d2h(handle, &mut bytes)?;
        host.bytes_mut().copy_from_slice(&bytes);
        Ok(())
    }

    /// Allocate + upload `name` and keep it device-resident (the OpenACC
    /// 2.0 `enter data copyin` runtime behaviour the paper's §2.1 refers
    /// to): subsequent regions skip its transfers until
    /// [`AccRunner::exit_data`].
    pub fn enter_data(&mut self, name: &str) -> Result<(), AccError> {
        self.run_host_assigns()?;
        let i = self.array_index(name)?;
        self.enter_binding(i, DataDir::Copy)
    }

    /// Download `name` from the device and end its residency (the OpenACC
    /// 2.0 `exit data copyout` behaviour).
    pub fn exit_data(&mut self, name: &str) -> Result<(), AccError> {
        let i = self.array_index(name)?;
        if self.resident[i] == 0 {
            return Err(AccError::Binding(format!(
                "array `{name}` is not device-resident"
            )));
        }
        self.exit_binding(i, DataDir::Copy)
    }

    /// `#pragma acc update host(name)`: refresh the host copy from the
    /// device without ending residency.
    pub fn update_host(&mut self, name: &str) -> Result<(), AccError> {
        let i = self.array_index(name)?;
        let (handle, elems) = self.dev_arrays[i]
            .ok_or_else(|| AccError::Binding(format!("array `{name}` has no device buffer")))?;
        let decl_ty = self.prog.arrays[i].ty;
        if self.arrays[i].is_none() {
            self.arrays[i] = Some(HostBuffer::new(decl_ty, elems as usize));
        }
        let host = self.arrays[i].as_mut().unwrap();
        let mut bytes = vec![0u8; host.bytes().len()];
        self.device.memcpy_d2h(handle, &mut bytes)?;
        host.bytes_mut().copy_from_slice(&bytes);
        Ok(())
    }

    /// `#pragma acc update device(name)`: push the host copy to the device
    /// without ending residency.
    pub fn update_device(&mut self, name: &str) -> Result<(), AccError> {
        let i = self.array_index(name)?;
        let (handle, _) = self.dev_arrays[i]
            .ok_or_else(|| AccError::Binding(format!("array `{name}` has no device buffer")))?;
        let host = self.arrays[i]
            .as_ref()
            .ok_or_else(|| AccError::Binding(format!("array `{name}` is not bound")))?;
        let bytes = host.bytes().to_vec();
        self.device.memcpy_h2d(handle, &bytes)?;
        Ok(())
    }

    /// Execute the program's host assignments (idempotent; runs once).
    pub fn run_host_assigns(&mut self) -> Result<(), AccError> {
        if self.host_assigns_done {
            return Ok(());
        }
        let assigns = self.prog.host_assigns.clone();
        for ha in &assigns {
            let v = eval_host_expr(&ha.value, &self.scalars)?;
            let ty = machine_ty(self.prog.hosts[ha.host].ty);
            self.scalars[ha.host] = v.convert(ty);
            self.scalar_bound[ha.host] = true;
        }
        self.host_assigns_done = true;
        Ok(())
    }

    /// Run the whole program: host assignments, then every region in order,
    /// entering/exiting structured `acc data` scopes at their boundaries.
    pub fn run(&mut self) -> Result<(), AccError> {
        self.run_host_assigns()?;
        let scopes = self.prog.data_scopes.clone();
        let n = self.prog.regions.len();
        for p in 0..=n {
            // Exits first (scopes ending before region p), innermost first.
            let mut exiting: Vec<&accparse::hir::DataScope> =
                scopes.iter().filter(|s| s.end_region == p).collect();
            exiting.sort_by_key(|s| std::cmp::Reverse(s.first_region));
            for sc in exiting {
                for &(a, dir) in &sc.bindings {
                    self.exit_binding(a, dir)?;
                }
            }
            // Then enters (scopes starting at region p), outermost first.
            let mut entering: Vec<&accparse::hir::DataScope> = scopes
                .iter()
                .filter(|s| s.first_region == p && s.end_region > p)
                .collect();
            entering.sort_by_key(|s| std::cmp::Reverse(s.end_region));
            for sc in entering {
                for &(a, dir) in &sc.bindings {
                    self.enter_binding(a, dir)?;
                }
            }
            if p < n {
                self.run_region(p)?;
            }
        }
        Ok(())
    }

    /// Resolve launch dims for a region from its clauses (falling back to
    /// the runner defaults; `num_workers` defaults to 1 unless the region
    /// names worker parallelism).
    pub fn resolve_dims(&self, region: usize) -> Result<LaunchDims, AccError> {
        let r = &self.prog.regions[region];
        let gangs = match &r.num_gangs {
            Some(e) => eval_host_extent(e, &self.scalars, "num_gangs")? as u32,
            None => self.default_dims.gangs,
        };
        let mut uses_worker = false;
        let mut uses_vector = false;
        accparse::hir::visit_loops(&r.body, &mut |l| {
            for lv in &l.sched {
                match lv {
                    accparse::ast::Level::Worker => uses_worker = true,
                    accparse::ast::Level::Vector => uses_vector = true,
                    _ => {}
                }
            }
        });
        let workers = match &r.num_workers {
            Some(e) => eval_host_extent(e, &self.scalars, "num_workers")? as u32,
            None => {
                if uses_worker {
                    self.default_dims.workers
                } else {
                    1
                }
            }
        };
        let vector = match &r.vector_length {
            Some(e) => eval_host_extent(e, &self.scalars, "vector_length")? as u32,
            None => {
                if uses_vector {
                    self.default_dims.vector
                } else {
                    1
                }
            }
        };
        Ok(LaunchDims {
            gangs,
            workers,
            vector,
        })
    }

    /// Execute one region: compile (cached), move data in, launch the main
    /// kernel and any finalize kernels, fold gang-reduction results into
    /// host scalars, read mailbox writebacks, move data out.
    pub fn run_region(&mut self, region: usize) -> Result<(), AccError> {
        self.run_host_assigns()?;
        let dims = self.resolve_dims(region)?;

        // Compile: per-session instance cache first, then the shared
        // artifact cache (when attached), then actual codegen.
        let key = (region, dims.gangs, dims.workers, dims.vector);
        if !self.instances.contains_key(&key) {
            let t_codegen = self.obs_now();
            let compiled: Arc<CompiledRegion> = match &self.region_cache {
                Some((cache, program_key)) => {
                    let ck = RegionKey {
                        program: *program_key,
                        region,
                        dims,
                    };
                    let (prog, opts) = (self.prog.clone(), self.opts.clone());
                    let mut compiled_here = false;
                    let artifact = cache.get_or_compile(ck, || {
                        compiled_here = true;
                        uhacc_core::compile_region(&prog, region, dims, &opts)
                    })?;
                    self.compiles += compiled_here as u64;
                    artifact
                }
                None => {
                    self.compiles += 1;
                    Arc::new(uhacc_core::compile_region(
                        &self.prog, region, dims, &self.opts,
                    )?)
                }
            };
            let mut temp_buffers = Vec::new();
            for spec in &compiled.buffers {
                let h = self
                    .device
                    .alloc(spec.elems.max(1) * machine_ty(spec.ty).size() as u64)?;
                temp_buffers.push(h);
            }
            self.instances.insert(
                key,
                RegionInstance {
                    compiled,
                    temp_buffers,
                },
            );
            let dur = self.obs_record(&format!("codegen.region{region}"), t_codegen);
            if let Some(h) = self.obs.as_ref().and_then(|o| o.compile_hist.as_ref()) {
                h.observe(dur);
            }
        }

        // Validate bindings and stage arrays.
        let t_h2d = self.obs_now();
        let data = self.prog.regions[region].data.clone();
        for db in &data {
            let decl = self.prog.arrays[db.array].clone();
            let elems: u64 = {
                let mut n = 1u64;
                for d in &decl.dims {
                    n *= eval_host_extent(
                        d,
                        &self.scalars,
                        &format!("dimension of `{}`", decl.name),
                    )?;
                }
                n
            };
            // Ensure a device buffer of the right size exists.
            let need_bytes = elems * machine_ty(decl.ty).size() as u64;
            let realloc = match self.dev_arrays[db.array] {
                Some((_, have)) => have != elems,
                None => true,
            };
            if realloc {
                if db.dir == DataDir::Present {
                    return Err(AccError::Binding(format!(
                        "array `{}` marked present but not on the device",
                        decl.name
                    )));
                }
                let h = self.device.alloc(need_bytes)?;
                self.dev_arrays[db.array] = Some((h, elems));
            }
            let (handle, _) = self.dev_arrays[db.array].unwrap();
            let resident = self.resident[db.array] > 0;
            let needs_in = !resident && matches!(db.dir, DataDir::CopyIn | DataDir::Copy);
            let needs_host = needs_in || (!resident && matches!(db.dir, DataDir::CopyOut));
            if needs_host {
                let host = self.arrays[db.array].as_ref().ok_or_else(|| {
                    AccError::Binding(format!("array `{}` is not bound", decl.name))
                })?;
                if host.len() as u64 != elems {
                    return Err(AccError::Binding(format!(
                        "array `{}` declared with {elems} element(s) but bound with {}",
                        decl.name,
                        host.len()
                    )));
                }
            }
            if needs_in {
                let bytes = self.arrays[db.array].as_ref().unwrap().bytes().to_vec();
                self.device.memcpy_h2d(handle, &bytes)?;
            }
        }
        self.obs_record(&format!("h2d.region{region}"), t_h2d);

        // Check host scalars used are bound (assignments count as binding).
        for &h in &self.prog.regions[region].hosts_used {
            if !self.scalar_bound[h] {
                return Err(AccError::Binding(format!(
                    "host scalar `{}` is used by the region but never bound",
                    self.prog.hosts[h].name
                )));
            }
        }

        // Build parameter list.
        let inst = &self.instances[&key];
        let mut params: Vec<Value> = Vec::with_capacity(inst.compiled.params.len());
        for p in &inst.compiled.params {
            params.push(match p {
                ParamSpec::ArrayBase(a) => {
                    let (h, _) = self.dev_arrays[*a].ok_or_else(|| {
                        AccError::Binding(format!(
                            "array `{}` has no device buffer",
                            self.prog.arrays[*a].name
                        ))
                    })?;
                    Value::U64(h.addr)
                }
                ParamSpec::ArrayDim { array, dim } => {
                    let e = &self.prog.arrays[*array].dims[*dim];
                    Value::I32(eval_host_extent(e, &self.scalars, "dimension")? as i32)
                }
                ParamSpec::HostScalar(h) => self.scalars[*h],
                ParamSpec::TempBuffer(i) => Value::U64(inst.temp_buffers[*i].addr),
            });
        }

        // Initialize accumulator buffers (atomic gang strategy) before
        // every launch.
        {
            let inst = &self.instances[&key];
            let inits: Vec<(gpsim::BufferHandle, gpsim::Value)> = inst
                .compiled
                .buffers
                .iter()
                .zip(&inst.temp_buffers)
                .filter_map(|(spec, h)| spec.init.map(|v| (*h, v)))
                .collect();
            for (h, v) in inits {
                self.device.poke(h.addr, v)?;
            }
        }

        // Launch.
        let cfg = LaunchConfig::gwv(dims.gangs, dims.workers, dims.vector);
        let main = inst.compiled.main.clone();
        let finalize: Vec<_> = inst.compiled.finalize.clone();
        let results = inst.compiled.results.clone();
        let writebacks = inst.compiled.writebacks.clone();
        let mailbox = inst.compiled.mailbox;
        let temp_buffers = inst.temp_buffers.clone();

        // The mailbox buffer is deliberately multi-writer: lane 0 of every
        // block writes the same host-scalar slots. Blocks commit in linear
        // block-id order on both the sequential and parallel executors, so
        // the final value is well-defined: the highest block id wins.
        // Exempt it from global racecheck so the sanitizer only reports
        // unintended sharing.
        if self.device.sanitizer().level.enabled() {
            self.device.sanitizer_mut().global_ignore = mailbox
                .map(|mb| {
                    let b = temp_buffers[mb];
                    (b.addr, b.end())
                })
                .into_iter()
                .collect();
        }

        // Translation validation (redcert), pre-launch: symbolically
        // execute the plan and compare against the source region at the
        // current scalar bindings and extents. Observational only.
        if let Some(ccfg) = self.device.certifier().copied() {
            let extents: Vec<Vec<u64>> = self
                .prog
                .arrays
                .iter()
                .map(|a| {
                    a.dims
                        .iter()
                        .map(|e| eval_host_extent(e, &self.scalars, "dimension"))
                        .collect::<Result<Vec<u64>, _>>()
                        .unwrap_or_default()
                })
                .collect();
            let report = uhacc_core::certify_region(
                &self.prog,
                region,
                &self.instances[&key].compiled,
                dims,
                &self.scalars,
                &extents,
                &ccfg,
            );
            self.device.push_cert_report(report);
        }

        let t_launch = self.obs_now();
        self.device.launch(&main, cfg, &params)?;
        for fp in &finalize {
            let buf = temp_buffers[fp.buffer];
            self.device.launch(
                &fp.kernel,
                LaunchConfig::d1(1, fp.threads),
                &[Value::U64(buf.addr), Value::I32(fp.elems as i32)],
            )?;
        }

        // Gang-reduction results: fold into host scalars.
        for rr in &results {
            let buf = temp_buffers[rr.buffer];
            let cty = self.prog.hosts[rr.host].ty;
            let v = self.device.peek(machine_ty(cty), buf.addr)?;
            let old = self.scalars[rr.host];
            self.scalars[rr.host] = if rr.fold {
                apply_host(rr.op, cty, old, v)
            } else {
                v.convert(machine_ty(cty))
            };
            self.scalar_bound[rr.host] = true;
        }
        // Mailbox writebacks.
        if let Some(mb) = mailbox {
            let base = temp_buffers[mb].addr;
            for wb in &writebacks {
                let cty = self.prog.hosts[wb.host].ty;
                let v = self.device.peek(machine_ty(cty), base + wb.slot * 8)?;
                self.scalars[wb.host] = v;
                self.scalar_bound[wb.host] = true;
            }
        }
        self.obs_record(&format!("launch.region{region}"), t_launch);

        // Data out.
        let t_d2h = self.obs_now();
        for db in &data {
            if self.resident[db.array] > 0 {
                continue; // device-resident: host copy refreshed at scope exit
            }
            if matches!(db.dir, DataDir::CopyOut | DataDir::Copy) {
                let (handle, elems) = self.dev_arrays[db.array].unwrap();
                let decl_ty = self.prog.arrays[db.array].ty;
                if self.arrays[db.array].is_none() {
                    self.arrays[db.array] = Some(HostBuffer::new(decl_ty, elems as usize));
                }
                let host = self.arrays[db.array].as_mut().unwrap();
                let mut bytes = vec![0u8; host.bytes().len()];
                self.device.memcpy_d2h(handle, &mut bytes)?;
                host.bytes_mut().copy_from_slice(&bytes);
            }
        }
        self.obs_record(&format!("d2h.region{region}"), t_d2h);
        Ok(())
    }

    /// Bind every host scalar and array to a deterministic input set:
    /// integer scalars to `n`, float scalars to 0, arrays (after host
    /// assignments resolve their extents) to the fixed pattern
    /// `(7i + 3) mod 101 - 50` — the same inputs `uhacc-cc --profile`
    /// and the `uhaccd` `/run` and `/profile` endpoints use, so the same
    /// source yields byte-identical results on every surface.
    pub fn bind_deterministic_inputs(&mut self, n: u64) -> Result<(), AccError> {
        let hosts: Vec<(String, CType)> = self
            .prog
            .hosts
            .iter()
            .map(|h| (h.name.clone(), h.ty))
            .collect();
        for (name, ty) in &hosts {
            match ty {
                CType::Int | CType::Long => self.bind_int(name, n as i64)?,
                CType::Float | CType::Double => self.bind_float(name, 0.0)?,
            }
        }
        self.run_host_assigns()?;
        let arrays = self.prog.arrays.clone();
        // Multi-dimensional arrays scale super-linearly in `n`; refuse
        // absurd allocations with a diagnostic instead of aborting OOM.
        const MAX_ELEMS: u64 = 1 << 28;
        for a in &arrays {
            let mut elems = 1u64;
            for d in &a.dims {
                elems = elems.saturating_mul(eval_host_extent(
                    d,
                    &self.scalars,
                    &format!("dimension of `{}`", a.name),
                )?);
            }
            if elems > MAX_ELEMS {
                return Err(AccError::Binding(format!(
                    "array `{}` needs {elems} elements at n={n}; the deterministic input \
                     binder caps arrays at {MAX_ELEMS} elements — pass a smaller n",
                    a.name
                )));
            }
            let mut buf = HostBuffer::new(a.ty, elems as usize);
            for i in 0..elems as usize {
                let k = (i as i64 * 7 + 3) % 101 - 50;
                let v = match a.ty {
                    CType::Int | CType::Long => Value::I64(k),
                    CType::Float | CType::Double => Value::F64(k as f64 / 101.0),
                };
                buf.set(i, v);
            }
            self.bind_array(&a.name, buf)?;
        }
        Ok(())
    }

    /// Read one value from a device-resident array without a full copy-out
    /// (verification/debug helper).
    pub fn peek_device_array(&self, name: &str, index: u64) -> Result<Value, AccError> {
        let i = self.array_index(name)?;
        let (h, elems) = self.dev_arrays[i]
            .ok_or_else(|| AccError::Binding(format!("array `{name}` has no device buffer")))?;
        if index >= elems {
            return Err(AccError::Binding(format!(
                "index {index} out of range ({elems})"
            )));
        }
        let ty = machine_ty(self.prog.arrays[i].ty);
        Ok(self.device.peek(ty, h.addr + index * ty.size() as u64)?)
    }
}
