//! Host-side evaluation of HIR expressions (array dimensions, launch
//! clauses, host assignments). Mirrors the kernel's arithmetic semantics
//! exactly, so host-computed bounds agree with device-computed bounds.

use crate::error::AccError;
use accparse::ast::{BinOpKind, CType, UnOpKind};
use accparse::hir::{HExpr, HExprKind, MathFunc, Sym};
use gpsim::{eval_bin, eval_cmp, eval_un, BinOp, CmpOp, Ty, UnOp, Value};

fn machine_ty(ct: CType) -> Ty {
    match ct {
        CType::Int => Ty::I32,
        CType::Long => Ty::I64,
        CType::Float => Ty::F32,
        CType::Double => Ty::F64,
    }
}

/// Evaluate a host expression against the current scalar values.
///
/// Only `Sym::Host` references are legal (sema guarantees this for host
/// contexts); anything else is reported as a binding error.
pub fn eval_host_expr(e: &HExpr, scalars: &[Value]) -> Result<Value, AccError> {
    let ty = machine_ty(e.ty);
    Ok(match &e.kind {
        HExprKind::Int(v) => match ty {
            Ty::I64 => Value::I64(*v),
            _ => Value::I32(*v as i32),
        },
        HExprKind::Float(v) => match ty {
            Ty::F32 => Value::F32(*v as f32),
            _ => Value::F64(*v),
        },
        HExprKind::Sym(Sym::Host(i)) => scalars
            .get(*i)
            .copied()
            .ok_or_else(|| AccError::Binding(format!("host scalar #{i} out of range")))?,
        HExprKind::Sym(Sym::Local(_)) | HExprKind::Load { .. } => {
            return Err(AccError::Binding(
                "host expression references kernel-only state".into(),
            ))
        }
        HExprKind::Un { op, operand } => {
            let v = eval_host_expr(operand, scalars)?;
            match op {
                UnOpKind::Neg => eval_un(UnOp::Neg, ty, v)?,
                UnOpKind::BitNot => eval_un(UnOp::Not, ty, v)?,
                UnOpKind::Not => Value::I32(if v.as_bool() { 0 } else { 1 }),
            }
        }
        HExprKind::Bin {
            op,
            cmp_ty,
            lhs,
            rhs,
        } => {
            let a = eval_host_expr(lhs, scalars)?;
            let b = eval_host_expr(rhs, scalars)?;
            match op {
                BinOpKind::Add => eval_bin(BinOp::Add, ty, a, b)?,
                BinOpKind::Sub => eval_bin(BinOp::Sub, ty, a, b)?,
                BinOpKind::Mul => eval_bin(BinOp::Mul, ty, a, b)?,
                BinOpKind::Div => eval_bin(BinOp::Div, ty, a, b)?,
                BinOpKind::Rem => eval_bin(BinOp::Rem, ty, a, b)?,
                BinOpKind::Shl => eval_bin(BinOp::Shl, ty, a, b)?,
                BinOpKind::Shr => eval_bin(BinOp::Shr, ty, a, b)?,
                BinOpKind::BitAnd => eval_bin(BinOp::And, ty, a, b)?,
                BinOpKind::BitOr => eval_bin(BinOp::Or, ty, a, b)?,
                BinOpKind::BitXor => eval_bin(BinOp::Xor, ty, a, b)?,
                BinOpKind::Lt
                | BinOpKind::Le
                | BinOpKind::Gt
                | BinOpKind::Ge
                | BinOpKind::Eq
                | BinOpKind::Ne => {
                    let cop = match op {
                        BinOpKind::Lt => CmpOp::Lt,
                        BinOpKind::Le => CmpOp::Le,
                        BinOpKind::Gt => CmpOp::Gt,
                        BinOpKind::Ge => CmpOp::Ge,
                        BinOpKind::Eq => CmpOp::Eq,
                        _ => CmpOp::Ne,
                    };
                    let r = eval_cmp(cop, machine_ty(*cmp_ty), a, b);
                    Value::I32(r as i32)
                }
                BinOpKind::LogAnd => Value::I32((a.as_bool() && b.as_bool()) as i32),
                BinOpKind::LogOr => Value::I32((a.as_bool() || b.as_bool()) as i32),
            }
        }
        HExprKind::Cond { cond, then, els } => {
            let c = eval_host_expr(cond, scalars)?;
            if c.as_bool() {
                eval_host_expr(then, scalars)?.convert(ty)
            } else {
                eval_host_expr(els, scalars)?.convert(ty)
            }
        }
        HExprKind::Call { func, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_host_expr(a, scalars))
                .collect::<Result<_, _>>()?;
            match func {
                MathFunc::FMax | MathFunc::IMax => eval_bin(BinOp::Max, ty, vals[0], vals[1])?,
                MathFunc::FMin | MathFunc::IMin => eval_bin(BinOp::Min, ty, vals[0], vals[1])?,
                MathFunc::FAbs | MathFunc::IAbs => eval_un(UnOp::Abs, ty, vals[0])?,
                MathFunc::Sqrt => eval_un(UnOp::Sqrt, ty, vals[0])?,
            }
        }
        HExprKind::Cast { operand } => eval_host_expr(operand, scalars)?.convert(ty),
    })
}

/// Evaluate a host expression to a positive integer (array dims, launch
/// clauses).
pub fn eval_host_extent(e: &HExpr, scalars: &[Value], what: &str) -> Result<u64, AccError> {
    let v = eval_host_expr(e, scalars)?;
    let n = v.as_i64();
    if n <= 0 {
        return Err(AccError::Binding(format!(
            "{what} must be positive, got {n}"
        )));
    }
    Ok(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accparse::diag::Span;

    fn int(v: i64) -> HExpr {
        HExpr {
            ty: CType::Int,
            kind: HExprKind::Int(v),
            span: Span::default(),
        }
    }

    fn host(i: usize, ty: CType) -> HExpr {
        HExpr {
            ty,
            kind: HExprKind::Sym(Sym::Host(i)),
            span: Span::default(),
        }
    }

    fn bin(op: BinOpKind, l: HExpr, r: HExpr, ty: CType) -> HExpr {
        HExpr {
            ty,
            kind: HExprKind::Bin {
                op,
                cmp_ty: CType::promote(l.ty, r.ty),
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
            span: Span::default(),
        }
    }

    #[test]
    fn arithmetic_and_refs() {
        let scalars = vec![Value::I32(6), Value::F64(1.5)];
        let e = bin(BinOpKind::Mul, host(0, CType::Int), int(7), CType::Int);
        assert_eq!(eval_host_expr(&e, &scalars).unwrap(), Value::I32(42));
        let e = bin(
            BinOpKind::Add,
            host(1, CType::Double),
            int(1),
            CType::Double,
        );
        assert_eq!(eval_host_expr(&e, &scalars).unwrap(), Value::F64(2.5));
    }

    #[test]
    fn comparisons_yield_c_ints() {
        let scalars = vec![Value::I32(6)];
        let e = bin(BinOpKind::Lt, host(0, CType::Int), int(10), CType::Int);
        assert_eq!(eval_host_expr(&e, &scalars).unwrap(), Value::I32(1));
    }

    #[test]
    fn extent_validation() {
        let scalars = vec![Value::I32(0)];
        assert!(eval_host_extent(&host(0, CType::Int), &scalars, "dim").is_err());
        assert_eq!(eval_host_extent(&int(5), &scalars, "dim").unwrap(), 5);
    }
}
