//! Shared compiled-artifact cache.
//!
//! A [`RegionCache`] maps `(program fingerprint, region index, launch
//! dims)` to the immutable [`CompiledRegion`] artifact, so one
//! compilation serves every concurrent session running the same
//! `(source, options)` pair — the artifact half of the `uhaccd`
//! content-addressed cache. The program fingerprint is the caller's
//! responsibility and should come from
//! [`uhacc_core::program_key`]`(source, options)` so that both the
//! source text *and* every codegen knob participate in the key.
//!
//! The cache is `Send + Sync`; entries are `Arc`s of immutable artifacts
//! (kernels are themselves `Arc`s inside [`CompiledRegion`]), so a hit is
//! a pointer bump. Eviction is least-recently-used with a configurable
//! entry capacity, and every outcome is counted: hits, misses, evictions
//! and actual compiles (a miss that lost an insert race still counts the
//! compile it performed — the counters answer "how much codegen work did
//! we do", not just "how often did lookup fail").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uhacc_core::{CompiledRegion, LaunchDims};

/// Key of one compiled-region artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// Content fingerprint of `(source, CompilerOptions)` — see
    /// [`uhacc_core::program_key`].
    pub program: u64,
    /// Region index within the program.
    pub region: usize,
    /// Launch geometry the region was compiled for.
    pub dims: LaunchDims,
}

/// Monotonic counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Number of times the compile closure actually ran (parse/codegen
    /// work performed). A warm path leaves this unchanged.
    pub compiles: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Inner {
    map: HashMap<RegionKey, Arc<CompiledRegion>>,
    /// Keys in least-recently-used-first order.
    lru: Vec<RegionKey>,
}

/// A bounded, thread-safe, LRU cache of compiled region artifacts.
pub struct RegionCache {
    cap: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    compiles: AtomicU64,
}

impl std::fmt::Debug for RegionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("RegionCache")
            .field("cap", &self.cap)
            .field("counters", &c)
            .finish()
    }
}

impl RegionCache {
    /// A cache holding at most `cap` compiled regions (`cap == 0` is
    /// clamped to 1: a cache that can hold nothing would turn every
    /// lookup into a miss while still paying the bookkeeping).
    pub fn new(cap: usize) -> Self {
        RegionCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
        }
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Look up `key`, compiling (and inserting) on a miss. The compile
    /// runs *outside* the cache lock so a slow compilation never blocks
    /// other sessions' hits; if two sessions race to fill the same key,
    /// the first insert wins and both get the same artifact (the loser's
    /// compile is still counted in [`CacheCounters::compiles`]).
    pub fn get_or_compile<E>(
        &self,
        key: RegionKey,
        compile: impl FnOnce() -> Result<CompiledRegion, E>,
    ) -> Result<Arc<CompiledRegion>, E> {
        if let Some(hit) = self.lookup(key) {
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile()?);
        Ok(self.insert(key, compiled))
    }

    /// Plain lookup (counts a hit and refreshes LRU order on success;
    /// does *not* count a miss — `get_or_compile` owns that).
    pub fn lookup(&self, key: RegionKey) -> Option<Arc<CompiledRegion>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.map.get(&key).cloned() {
            if let Some(pos) = inner.lru.iter().position(|k| *k == key) {
                inner.lru.remove(pos);
                inner.lru.push(key);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        None
    }

    /// Insert `compiled` under `key`, evicting the least-recently-used
    /// entry if over capacity. Returns the resident artifact (the
    /// existing one if another session filled the key first).
    fn insert(&self, key: RegionKey, compiled: Arc<CompiledRegion>) -> Arc<CompiledRegion> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.map.get(&key).cloned() {
            return existing;
        }
        inner.map.insert(key, compiled.clone());
        inner.lru.push(key);
        while inner.map.len() > self.cap {
            let victim = inner.lru.remove(0);
            inner.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        compiled
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        let entries = self.inner.lock().unwrap().map.len() as u64;
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhacc_core::CompilerOptions;

    fn compile_fixture(src: &str, dims: LaunchDims) -> CompiledRegion {
        let prog = accparse::compile(src).unwrap();
        uhacc_core::compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap()
    }

    const SRC: &str = "int N; int s;\ns = 0;\n#pragma acc parallel loop gang \
                       reduction(+:s)\nfor (int i = 0; i < N; i++) { s += 1; }\n";

    fn key(program: u64, dims: LaunchDims) -> RegionKey {
        RegionKey {
            program,
            region: 0,
            dims,
        }
    }

    #[test]
    fn hit_skips_compile_and_shares_artifact() {
        let cache = RegionCache::new(8);
        let dims = LaunchDims::paper();
        let a = cache
            .get_or_compile::<()>(key(1, dims), || Ok(compile_fixture(SRC, dims)))
            .unwrap();
        let b = cache
            .get_or_compile::<()>(key(1, dims), || panic!("warm hit must not compile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit returns the shared artifact");
        assert!(Arc::ptr_eq(&a.main, &b.main), "kernels are shared too");
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.compiles, c.entries), (1, 1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_counted() {
        let cache = RegionCache::new(2);
        let dims = LaunchDims::paper();
        for p in 1..=3u64 {
            cache
                .get_or_compile::<()>(key(p, dims), || Ok(compile_fixture(SRC, dims)))
                .unwrap();
        }
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
        // Key 1 was least recently used and is gone; 2 and 3 remain.
        assert!(cache.lookup(key(1, dims)).is_none());
        assert!(cache.lookup(key(3, dims)).is_some());
        // Touching 2 then inserting 4 evicts 3, not 2.
        assert!(cache.lookup(key(2, dims)).is_some());
        cache
            .get_or_compile::<()>(key(4, dims), || Ok(compile_fixture(SRC, dims)))
            .unwrap();
        assert!(cache.lookup(key(2, dims)).is_some());
        assert!(cache.lookup(key(3, dims)).is_none());
    }

    #[test]
    fn compile_errors_propagate_and_insert_nothing() {
        let cache = RegionCache::new(2);
        let dims = LaunchDims::paper();
        let r = cache.get_or_compile(key(9, dims), || Err("boom"));
        assert_eq!(r.err(), Some("boom"));
        assert_eq!(cache.counters().entries, 0);
        // The failed fill counted as a miss + compile, not a hit.
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.compiles), (0, 1, 1));
    }
}
