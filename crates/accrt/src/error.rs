//! Runtime error type.

use accparse::diag::Diag;
use gpsim::SimError;
use std::fmt;

/// Errors from the OpenACC runtime: front-end/compiler diagnostics,
/// simulated device faults, or host binding problems.
#[derive(Debug, Clone, PartialEq)]
pub enum AccError {
    /// Parse/semantic/codegen diagnostic.
    Compile(Diag),
    /// Simulated device error.
    Device(SimError),
    /// Host-side binding problem (missing scalar, size mismatch, ...).
    Binding(String),
}

impl fmt::Display for AccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccError::Compile(d) => write!(f, "compile error: {d}"),
            AccError::Device(e) => write!(f, "device error: {e}"),
            AccError::Binding(m) => write!(f, "binding error: {m}"),
        }
    }
}

impl std::error::Error for AccError {}

impl From<Diag> for AccError {
    fn from(d: Diag) -> Self {
        AccError::Compile(d)
    }
}

impl From<SimError> for AccError {
    fn from(e: SimError) -> Self {
        AccError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accparse::diag::Span;

    #[test]
    fn display_and_from() {
        let e: AccError = Diag::new("bad", Span::at(0)).into();
        assert!(e.to_string().contains("compile error"));
        let e: AccError = SimError::DivisionByZero.into();
        assert!(e.to_string().contains("device error"));
        let e = AccError::Binding("missing `N`".into());
        assert!(e.to_string().contains("missing `N`"));
    }
}
