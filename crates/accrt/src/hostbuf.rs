//! Typed host-side array storage bound to program arrays.

use accparse::ast::CType;
use gpsim::{Ty, Value};

fn machine_ty(ct: CType) -> Ty {
    match ct {
        CType::Int => Ty::I32,
        CType::Long => Ty::I64,
        CType::Float => Ty::F32,
        CType::Double => Ty::F64,
    }
}

/// A host array: element type plus raw little-endian storage, the host
/// half of an OpenACC data clause.
#[derive(Debug, Clone, PartialEq)]
pub struct HostBuffer {
    ty: CType,
    len: usize,
    data: Vec<u8>,
}

impl HostBuffer {
    /// A zero-filled buffer of `len` elements of `ty`.
    pub fn new(ty: CType, len: usize) -> Self {
        HostBuffer {
            ty,
            len,
            data: vec![0; len * ty.size()],
        }
    }

    /// Build from `i32` data.
    pub fn from_i32(vals: &[i32]) -> Self {
        let mut b = HostBuffer::new(CType::Int, vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(i, Value::I32(*v));
        }
        b
    }

    /// Build from `i64` data.
    pub fn from_i64(vals: &[i64]) -> Self {
        let mut b = HostBuffer::new(CType::Long, vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(i, Value::I64(*v));
        }
        b
    }

    /// Build from `f32` data.
    pub fn from_f32(vals: &[f32]) -> Self {
        let mut b = HostBuffer::new(CType::Float, vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(i, Value::F32(*v));
        }
        b
    }

    /// Build from `f64` data.
    pub fn from_f64(vals: &[f64]) -> Self {
        let mut b = HostBuffer::new(CType::Double, vals.len());
        for (i, v) in vals.iter().enumerate() {
            b.set(i, Value::F64(*v));
        }
        b
    }

    /// Element type.
    pub fn ty(&self) -> CType {
        self.ty
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    pub fn get(&self, i: usize) -> Value {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Value::from_bytes(machine_ty(self.ty), &self.data[i * self.ty.size()..])
    }

    /// Write element `i` (converted to the buffer's type).
    pub fn set(&mut self, i: usize, v: Value) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let v = v.convert(machine_ty(self.ty));
        let (bytes, n) = v.to_bytes();
        self.data[i * self.ty.size()..i * self.ty.size() + n].copy_from_slice(&bytes[..n]);
    }

    /// Raw bytes (for device transfers).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw bytes (for device transfers).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// All elements widened to `f64` (verification helper).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.get(i).as_f64()).collect()
    }

    /// All elements as `i64` (verification helper).
    pub fn to_i64_vec(&self) -> Vec<i64> {
        (0..self.len).map(|i| self.get(i).as_i64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let b = HostBuffer::from_i32(&[1, -2, 3]);
        assert_eq!(b.get(1), Value::I32(-2));
        assert_eq!(b.len(), 3);
        let b = HostBuffer::from_f64(&[1.5, -2.5]);
        assert_eq!(b.get(0), Value::F64(1.5));
        let b = HostBuffer::from_f32(&[0.25]);
        assert_eq!(b.get(0), Value::F32(0.25));
        let b = HostBuffer::from_i64(&[1 << 40]);
        assert_eq!(b.get(0), Value::I64(1 << 40));
    }

    #[test]
    fn set_converts() {
        let mut b = HostBuffer::new(CType::Float, 2);
        b.set(0, Value::F64(2.5));
        assert_eq!(b.get(0), Value::F32(2.5));
        b.set(1, Value::I32(3));
        assert_eq!(b.get(1), Value::F32(3.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let b = HostBuffer::new(CType::Int, 1);
        let _ = b.get(1);
    }

    #[test]
    fn helpers() {
        let b = HostBuffer::from_i32(&[4, 5]);
        assert_eq!(b.to_i64_vec(), vec![4, 5]);
        assert_eq!(b.to_f64_vec(), vec![4.0, 5.0]);
        assert_eq!(b.bytes().len(), 8);
        assert!(!b.is_empty());
        assert!(HostBuffer::new(CType::Int, 0).is_empty());
    }
}
