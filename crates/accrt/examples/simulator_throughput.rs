//! Host-side throughput microbenchmark: how many simulated lane
//! instructions per second the interpreter sustains on this machine
//! (useful when choosing testsuite sizes).
//!
//! Run with: `cargo run --release -p accrt --example simulator_throughput`
//!
//! Set `UHACC_HOST_THREADS` to control how many host worker threads execute
//! independent thread blocks (1 = sequential); results are bit-identical at
//! any setting, only the host wall-clock changes.

use accrt::{AccRunner, HostBuffer};
use gpsim::{Device, DeviceConfig};
use std::time::Instant;
use uhacc_core::{CompilerOptions, LaunchDims};

fn main() {
    println!(
        "host worker threads: {} (override with UHACC_HOST_THREADS)",
        DeviceConfig::default().resolved_host_threads()
    );
    let src = r#"
        int N; long sum;
        int a[N];
        sum = 0;
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang worker vector reduction(+:sum)
            for (int i = 0; i < N; i++) {
                sum += a[i];
            }
        }
    "#;
    for n in [1usize << 17, 1 << 20] {
        let t0 = Instant::now();
        let mut r = AccRunner::with_options(
            src,
            CompilerOptions::openuh(),
            LaunchDims::paper(),
            Device::default(),
        )
        .unwrap();
        r.bind_int("N", n as i64).unwrap();
        let a: Vec<i32> = (0..n).map(|x| (x % 3) as i32).collect();
        r.bind_array("a", HostBuffer::from_i32(&a)).unwrap();
        r.run().unwrap();
        let dt = t0.elapsed();
        let st = r.device().stats();
        println!(
            "n={n:>8}  host {dt:>12.3?}  lane-insts {:>9}  sim {:>7.3} ms  -> {:>6.1}M lane-insts/s",
            st.totals.lane_insts,
            r.elapsed_ms(),
            st.totals.lane_insts as f64 / dt.as_secs_f64() / 1e6
        );
        assert_eq!(
            r.scalar("sum").unwrap().as_i64(),
            a.iter().map(|&v| v as i64).sum::<i64>()
        );
    }
}
