//! Differential tests: the compiled execution tier must be **bit-identical**
//! to the reference interpreter in every observable output — memory
//! contents, [`LaunchStats`], modelled cycles, profile attribution, hazard
//! reports, traces, and error values — across randomly generated kernels
//! and the full harness matrix (host_threads × sanitize × profile).
//!
//! Kernels come from a deterministic xorshift generator: structured random
//! programs with uniform and divergent arithmetic, global/shared
//! loads/stores, atomics, barriers, and forward branches (forward-only, so
//! every generated kernel terminates without leaning on the watchdog).

use gpsim::{
    AtomOp, BinOp, CmpOp, Device, ExecTier, Kernel, KernelBuilder, LaunchConfig, MemRef,
    ProfileConfig, SanitizerConfig, SanitizerLevel, SpecialReg, Ty, UnOp, Value,
};

/// xorshift64* — deterministic, no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Number of i32 elements in the data buffer the kernels chew on.
const DATA_ELEMS: u64 = 256;

/// Generate a structured random kernel. Shape: an i64 index register
/// derived from lane/block identity, a pool of i32 value registers, a
/// sequence of segments (ALU / memory / atomic ops), optional barriers
/// and forward-branch skips, then a writeback of the pool so register
/// state is observable in memory.
fn gen_kernel(seed: u64) -> Kernel {
    let mut rng = Rng::new(seed);
    let mut b = KernelBuilder::new(format!("diff_{seed}"));
    let data = b.param(0); // base of DATA_ELEMS i32s
    let out = b.param(1); // base of the writeback area
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);
    let ntid = b.special(SpecialReg::NTidX);
    let lin = {
        let t = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        b.bin(BinOp::Add, Ty::I32, t, tid)
    };
    let shared_elems: usize = 64;
    b.alloc_shared(shared_elems * 4, 4);

    // Value pool: a mix of divergent (lane-derived) and uniform seeds.
    let mut pool: Vec<gpsim::Reg> = vec![
        lin,
        tid,
        b.mov_imm(Value::I32(seed as i32 & 0xffff)),
        b.bin(BinOp::Add, Ty::I32, ctaid, Value::I32(7)),
    ];

    // An in-bounds i64 element index: (lin * m + c) & (DATA_ELEMS-1).
    let data_index = |b: &mut KernelBuilder, rng: &mut Rng, v: gpsim::Reg| {
        let m = 1 + rng.below(7) as i32;
        let c = rng.below(DATA_ELEMS) as i32;
        let t = b.bin(BinOp::Mul, Ty::I32, v, Value::I32(m));
        let t = b.bin(BinOp::Add, Ty::I32, t, Value::I32(c));
        let t = b.bin(BinOp::And, Ty::I32, t, Value::I32(DATA_ELEMS as i32 - 1));
        b.cvt(Ty::I64, t)
    };

    let segments = 3 + rng.below(5);
    for _ in 0..segments {
        // Optionally skip the whole segment with a forward branch on a
        // divergent or uniform predicate.
        let skip = if rng.chance(40) {
            let v = pool[rng.below(pool.len() as u64) as usize];
            let c = b.cmp(
                CmpOp::Lt,
                Ty::I32,
                v,
                Value::I32(rng.below(200) as i32 - 60),
            );
            let l = b.new_label();
            if rng.chance(50) {
                b.bra_if(c, l);
            } else {
                b.bra_unless(c, l);
            }
            Some(l)
        } else {
            None
        };
        let ops = 1 + rng.below(4);
        for _ in 0..ops {
            let a = pool[rng.below(pool.len() as u64) as usize];
            let x = pool[rng.below(pool.len() as u64) as usize];
            match rng.below(10) {
                0..=3 => {
                    let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Xor, BinOp::Or]
                        [rng.below(5) as usize];
                    pool.push(b.bin(op, Ty::I32, a, x));
                }
                4 => {
                    let c = b.cmp(CmpOp::Gt, Ty::I32, a, x);
                    pool.push(b.select(c, a, x));
                }
                5 => {
                    // Divide by a non-zero value (SFU path).
                    let d = b.bin(BinOp::Or, Ty::I32, x, Value::I32(1));
                    pool.push(b.bin(BinOp::Div, Ty::I32, a, d));
                }
                6 => {
                    let i = data_index(&mut b, &mut rng, a);
                    pool.push(b.ld_global(Ty::I32, MemRef::indexed(data, i, 4)));
                }
                7 => {
                    let i = data_index(&mut b, &mut rng, a);
                    b.st_global(Ty::I32, MemRef::indexed(data, i, 4), x);
                }
                8 => {
                    // Shared: index by lane identity masked into the window.
                    let t = b.bin(BinOp::And, Ty::I32, a, Value::I32(shared_elems as i32 - 1));
                    let i = b.cvt(Ty::I64, t);
                    if rng.chance(50) {
                        b.st_shared(Ty::I32, MemRef::indexed(Value::U64(0), i, 4), x);
                    } else {
                        // Store-then-load so initcheck stays quiet on the
                        // sanitize legs of the matrix.
                        b.st_shared(Ty::I32, MemRef::indexed(Value::U64(0), i, 4), a);
                        pool.push(b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(0), i, 4)));
                    }
                }
                _ => {
                    let i = data_index(&mut b, &mut rng, tid);
                    let want_old = rng.chance(50);
                    if let Some(old) = b.atom_global(
                        AtomOp::Add,
                        Ty::I32,
                        MemRef::indexed(data, i, 4),
                        x,
                        want_old,
                    ) {
                        pool.push(old);
                    }
                }
            }
        }
        if let Some(l) = skip {
            b.place(l);
        } else if rng.chance(50) {
            // Barriers only outside branched regions, so the generator
            // never manufactures a barrier-divergence deadlock.
            b.bar();
        }
    }

    // Observable writeback: fold the pool and store per-lane.
    let mut acc = pool[0];
    for &v in &pool[1..] {
        acc = b.bin(BinOp::Xor, Ty::I32, acc, v);
    }
    let neg = b.un(UnOp::Neg, Ty::I32, acc);
    let i = b.cvt(Ty::I64, lin);
    b.st_global(Ty::I32, MemRef::indexed(out, i, 4), neg);
    b.finish()
}

/// Generate a structured random *float* kernel: F32 arithmetic (including
/// Div and Min/Max, which manufacture and propagate NaNs — the data
/// buffer's integer init already contains NaN/denormal/infinity bit
/// patterns when reinterpreted as f32), F64 round-trips, saturating
/// float↔int conversions, float compares and selects, shared-memory
/// traffic, and float atomics. Exercises every typed-tier float path.
fn gen_float_kernel(seed: u64) -> Kernel {
    let mut rng = Rng::new(seed ^ 0xf10a7);
    let mut b = KernelBuilder::new(format!("fdiff_{seed}"));
    let data = b.param(0); // base of DATA_ELEMS f32-reinterpreted elements
    let out = b.param(1);
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);
    let ntid = b.special(SpecialReg::NTidX);
    let lin = {
        let t = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        b.bin(BinOp::Add, Ty::I32, t, tid)
    };
    let shared_elems: usize = 64;
    b.alloc_shared(shared_elems * 4, 4);

    let mut pool: Vec<gpsim::Reg> = vec![
        b.cvt(Ty::F32, lin),
        b.cvt(Ty::F32, tid),
        b.mov_imm(Value::F32(f32::NAN)),
        b.mov_imm(Value::F32(-0.0)),
        b.mov_imm(Value::F32(seed as f32 * 0.37 - 3.0)),
    ];

    let data_index = |b: &mut KernelBuilder, rng: &mut Rng| {
        let m = 1 + rng.below(7) as i32;
        let c = rng.below(DATA_ELEMS) as i32;
        let t = b.bin(BinOp::Mul, Ty::I32, lin, Value::I32(m));
        let t = b.bin(BinOp::Add, Ty::I32, t, Value::I32(c));
        let t = b.bin(BinOp::And, Ty::I32, t, Value::I32(DATA_ELEMS as i32 - 1));
        b.cvt(Ty::I64, t)
    };

    let segments = 3 + rng.below(4);
    for _ in 0..segments {
        let skip = if rng.chance(40) {
            let v = pool[rng.below(pool.len() as u64) as usize];
            let c = b.cmp(
                CmpOp::Lt,
                Ty::F32,
                v,
                Value::F32(rng.below(100) as f32 - 30.0),
            );
            let l = b.new_label();
            if rng.chance(50) {
                b.bra_if(c, l);
            } else {
                b.bra_unless(c, l);
            }
            Some(l)
        } else {
            None
        };
        let ops = 1 + rng.below(4);
        for _ in 0..ops {
            let a = pool[rng.below(pool.len() as u64) as usize];
            let x = pool[rng.below(pool.len() as u64) as usize];
            match rng.below(10) {
                0..=2 => {
                    let op = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Min,
                        BinOp::Max,
                    ][rng.below(6) as usize];
                    pool.push(b.bin(op, Ty::F32, a, x));
                }
                3 => {
                    // F64 round-trip: widen, combine, narrow (the narrow
                    // quiets signaling NaNs exactly like the interpreter).
                    let a64 = b.cvt(Ty::F64, a);
                    let x64 = b.cvt(Ty::F64, x);
                    let op = [BinOp::Add, BinOp::Mul, BinOp::Div][rng.below(3) as usize];
                    let r = b.bin(op, Ty::F64, a64, x64);
                    pool.push(b.cvt(Ty::F32, r));
                }
                4 => {
                    let c = b.cmp(
                        [CmpOp::Gt, CmpOp::Ne, CmpOp::Le][rng.below(3) as usize],
                        Ty::F32,
                        a,
                        x,
                    );
                    pool.push(b.select(c, a, x));
                }
                5 => {
                    let op = [UnOp::Neg, UnOp::Abs, UnOp::Sqrt][rng.below(3) as usize];
                    pool.push(b.un(op, Ty::F32, a));
                }
                6 => {
                    // Saturating F32→I32 (NaN→0) and back.
                    let i = b.cvt(Ty::I32, a);
                    pool.push(b.cvt(Ty::F32, i));
                }
                7 => {
                    let i = data_index(&mut b, &mut rng);
                    pool.push(b.ld_global(Ty::F32, MemRef::indexed(data, i, 4)));
                }
                8 => {
                    let i = data_index(&mut b, &mut rng);
                    if rng.chance(50) {
                        b.st_global(Ty::F32, MemRef::indexed(data, i, 4), x);
                    } else {
                        let t = b.bin(BinOp::And, Ty::I32, lin, Value::I32(63));
                        let si = b.cvt(Ty::I64, t);
                        b.st_shared(Ty::F32, MemRef::indexed(Value::U64(0), si, 4), a);
                        pool.push(b.ld_shared(Ty::F32, MemRef::indexed(Value::U64(0), si, 4)));
                    }
                }
                _ => {
                    // Float atomic add: ordered replay must preserve the
                    // exact (non-associative) accumulation order.
                    let i = data_index(&mut b, &mut rng);
                    b.atom_global(AtomOp::Add, Ty::F32, MemRef::indexed(data, i, 4), x, false);
                }
            }
        }
        if let Some(l) = skip {
            b.place(l);
        } else if rng.chance(40) {
            b.bar();
        }
    }

    // Fold with Add (NaN bit patterns propagate) and write back.
    let mut acc = pool[0];
    for &v in &pool[1..] {
        acc = b.bin(BinOp::Add, Ty::F32, acc, v);
    }
    let i = b.cvt(Ty::I64, lin);
    b.st_global(Ty::F32, MemRef::indexed(out, i, 4), acc);
    b.finish()
}

/// Everything observable about one launch, rendered to comparable form.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: String,
    data: Vec<u8>,
    out: Vec<u8>,
    hazards: String,
    profile: Option<String>,
    trace: String,
}

fn run_once(
    kernel: &Kernel,
    tier: ExecTier,
    host_threads: u32,
    sanitize: bool,
    profile: bool,
) -> Outcome {
    let mut dev = Device::test_small();
    dev.set_exec_tier(tier);
    dev.set_host_threads(host_threads);
    if sanitize {
        dev.set_sanitizer(SanitizerConfig {
            level: SanitizerLevel::Full,
            ..SanitizerConfig::default()
        });
    }
    if profile {
        dev.set_profiler(Some(ProfileConfig::default()));
    }
    let data = dev.alloc_elems(Ty::I32, DATA_ELEMS).unwrap();
    let out = dev.alloc_elems(Ty::I32, 4 * 96).unwrap();
    let init: Vec<Value> = (0..DATA_ELEMS)
        .map(|i| Value::I32((i as i32).wrapping_mul(2654435761u32 as i32)))
        .collect();
    dev.upload_values(data, &init).unwrap();
    let cfg = LaunchConfig::d1(4, 96); // 3 warps per block, last one partial
    let result = dev.launch_traced(
        kernel,
        cfg,
        &[Value::U64(data.addr), Value::U64(out.addr)],
        1 << 14,
    );
    let (res_str, trace_str) = match &result {
        Ok((stats, trace)) => (format!("{stats:?}"), format!("{trace:?}")),
        Err(e) => (format!("err: {e:?}"), String::new()),
    };
    let mut data_bytes = vec![0u8; (DATA_ELEMS * 4) as usize];
    dev.memcpy_d2h(data, &mut data_bytes).unwrap();
    let mut out_bytes = vec![0u8; 4 * 96 * 4];
    dev.memcpy_d2h(out, &mut out_bytes).unwrap();
    Outcome {
        result: res_str,
        data: data_bytes,
        out: out_bytes,
        hazards: format!("{:?}", dev.take_hazards()),
        profile: profile.then(|| format!("{:?}", dev.take_profile())),
        trace: trace_str,
    }
}

/// Assert interpreter ≡ compiled for one kernel across the harness matrix.
fn assert_tiers_agree(kernel: &Kernel, seed: u64) {
    for &host_threads in &[1u32, 4] {
        for &sanitize in &[false, true] {
            for &profile in &[false, true] {
                let a = run_once(kernel, ExecTier::Interpret, host_threads, sanitize, profile);
                let b = run_once(kernel, ExecTier::Compiled, host_threads, sanitize, profile);
                assert_eq!(
                    a,
                    b,
                    "tier divergence: seed={seed} host_threads={host_threads} \
                     sanitize={sanitize} profile={profile}\n{}",
                    kernel.disasm()
                );
            }
        }
    }
}

#[test]
fn random_kernels_bit_identical_across_tiers() {
    for seed in 1..=24u64 {
        let kernel = gen_kernel(seed);
        assert_tiers_agree(&kernel, seed);
    }
}

#[test]
fn random_float_kernels_bit_identical_across_tiers() {
    for seed in 1..=12u64 {
        let kernel = gen_float_kernel(seed);
        assert_tiers_agree(&kernel, seed);
    }
}

/// Curated NaN factory: 0/0, sqrt(-1), min/max against NaN, NaN compare
/// driving a select, signaling-NaN quieting through an F64 round-trip,
/// and the saturating NaN→0 integer conversion. Every resulting bit
/// pattern lands in memory and must match across tiers.
#[test]
fn nan_edge_cases_bit_identical_across_tiers() {
    let mut b = KernelBuilder::new("nan_edges");
    let _data = b.param(0);
    let out = b.param(1);
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);
    let ntid = b.special(SpecialReg::NTidX);
    let lin = {
        let t = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        b.bin(BinOp::Add, Ty::I32, t, tid)
    };
    let flin = b.cvt(Ty::F32, lin);
    let z = b.mov_imm(Value::F32(0.0));
    let nz = b.mov_imm(Value::F32(-0.0));
    let zz = b.bin(BinOp::Div, Ty::F32, z, z); // 0/0 = NaN
    let m1 = b.mov_imm(Value::F32(-1.0));
    let s = b.un(UnOp::Sqrt, Ty::F32, m1); // sqrt(-1) = NaN
    let mn = b.bin(BinOp::Min, Ty::F32, zz, flin);
    let mx = b.bin(BinOp::Max, Ty::F32, flin, s);
    let c = b.cmp(CmpOp::Ne, Ty::F32, zz, zz); // NaN != NaN → true
    let sel = b.select(c, mn, mx);
    let snan = b.mov_imm(Value::F32(f32::from_bits(0x7f80_0001)));
    let wide = b.cvt(Ty::F64, snan);
    let quieted = b.cvt(Ty::F32, wide); // F64 round-trip quiets the sNaN
    let sat = b.cvt(Ty::I32, zz); // NaN → 0, saturating
    let fsat = b.cvt(Ty::F32, sat);
    let nzdiv = b.bin(BinOp::Div, Ty::F32, flin, nz); // ±inf with sign
    let mut acc = sel;
    for v in [quieted, fsat, nzdiv] {
        acc = b.bin(BinOp::Add, Ty::F32, acc, v);
    }
    let i = b.cvt(Ty::I64, lin);
    b.st_global(Ty::F32, MemRef::indexed(out, i, 4), acc);
    let k = b.finish();
    assert_tiers_agree(&k, 0);
}

/// A register reused at two different types defeats the typed plan's
/// flow-insensitive inference; the compiled tier must fall back to its
/// generic `Value` rows and still agree bit-for-bit.
#[test]
fn mixed_type_register_reuse_agrees_across_tiers() {
    let mut b = KernelBuilder::new("mixed_reuse");
    let _data = b.param(0);
    let out = b.param(1);
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);
    let ntid = b.special(SpecialReg::NTidX);
    let lin = {
        let t = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        b.bin(BinOp::Add, Ty::I32, t, tid)
    };
    let r = b.mov_imm(Value::I32(5));
    let acc = b.bin(BinOp::Add, Ty::I32, r, lin);
    let f = b.cvt(Ty::F32, tid);
    // Same destination register, now written at F32.
    b.bin_to(r, BinOp::Add, Ty::F32, f, Value::F32(0.5));
    let fold = b.cvt(Ty::I32, r);
    let fold = b.bin(BinOp::Xor, Ty::I32, fold, acc);
    let i = b.cvt(Ty::I64, lin);
    b.st_global(Ty::I32, MemRef::indexed(out, i, 4), fold);
    let k = b.finish();
    assert_tiers_agree(&k, 0);
}

/// Lane-dependent trip counts around a backward branch: the warp
/// diverges into multiple persistent groups whose interleaving the
/// interpreter's min-pc scheduler defines. The typed tier's group
/// chasing must not reorder their shared-memory and atomic traffic (the
/// trace comparison pins the exact instruction order).
#[test]
fn divergent_backward_loops_bit_identical_across_tiers() {
    let mut b = KernelBuilder::new("divloop");
    let data = b.param(0);
    let out = b.param(1);
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaIdX);
    let ntid = b.special(SpecialReg::NTidX);
    let lin = {
        let t = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        b.bin(BinOp::Add, Ty::I32, t, tid)
    };
    b.alloc_shared(64 * 4, 4);
    let trips = b.bin(BinOp::And, Ty::I32, tid, Value::I32(7));
    let i = b.mov_imm(Value::I32(0));
    let acc = b.mov_imm(Value::I32(0));
    let top = b.new_label();
    let exit = b.new_label();
    b.place(top);
    let done = b.cmp(CmpOp::Ge, Ty::I32, i, trips);
    b.bra_if(done, exit);
    // Shared read-modify-write at the lane's slot.
    let slot = b.bin(BinOp::And, Ty::I32, lin, Value::I32(63));
    let si = b.cvt(Ty::I64, slot);
    b.st_shared(Ty::I32, MemRef::indexed(Value::U64(0), si, 4), acc);
    let sv = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(0), si, 4));
    b.bin_to(acc, BinOp::Add, Ty::I32, sv, i);
    // A forward skip inside the body splits it into several runs.
    let odd = b.bin(BinOp::And, Ty::I32, i, Value::I32(1));
    let skip = b.cmp(CmpOp::Gt, Ty::I32, odd, Value::I32(0));
    let over = b.new_label();
    b.bra_if(skip, over);
    let di = b.bin(BinOp::Mul, Ty::I32, lin, Value::I32(3));
    let di = b.bin(BinOp::Add, Ty::I32, di, i);
    let di = b.bin(BinOp::And, Ty::I32, di, Value::I32(DATA_ELEMS as i32 - 1));
    let dii = b.cvt(Ty::I64, di);
    b.atom_global(
        AtomOp::Add,
        Ty::I32,
        MemRef::indexed(data, dii, 4),
        acc,
        false,
    );
    b.place(over);
    b.bin_to(i, BinOp::Add, Ty::I32, i, Value::I32(1));
    b.bra(top);
    b.place(exit);
    let oi = b.cvt(Ty::I64, lin);
    b.st_global(Ty::I32, MemRef::indexed(out, oi, 4), acc);
    let k = b.finish();
    assert_tiers_agree(&k, 0);
}

/// Error values must match bit-for-bit too: a wild global address aborts
/// both tiers with the same `SimError`.
#[test]
fn error_paths_bit_identical_across_tiers() {
    let mut b = KernelBuilder::new("oob");
    let out = b.param(0);
    let tid = b.special(SpecialReg::TidX);
    let big = b.bin(BinOp::Add, Ty::I32, tid, Value::I32(1 << 22));
    let i = b.cvt(Ty::I64, big);
    b.st_global(Ty::I32, MemRef::indexed(out, i, 4), tid);
    let k = b.finish();
    assert_tiers_agree(&k, 0);

    // Missing parameter: the BadParams error (and its payload) must match.
    let mut b = KernelBuilder::new("badparams");
    let p = b.param(3);
    let tid = b.special(SpecialReg::TidX);
    let i = b.cvt(Ty::I64, tid);
    b.st_global(Ty::I32, MemRef::indexed(p, i, 4), tid);
    let k = b.finish();
    for &tier in &[ExecTier::Interpret, ExecTier::Compiled] {
        let mut dev = Device::test_small();
        dev.set_exec_tier(tier);
        let r = dev.launch(&k, LaunchConfig::d1(1, 32), &[Value::U64(0)]);
        assert_eq!(
            format!("{r:?}"),
            r#"Err(BadParams { expected: 4, got: 1 })"#,
            "tier {tier}"
        );
    }
}

/// The watchdog must trip at the identical instruction count in both
/// tiers (it is checked after every instruction, not per run).
#[test]
fn watchdog_trips_identically_across_tiers() {
    let mut b = KernelBuilder::new("spin");
    let top = b.new_label();
    b.place(top);
    let c = b.mov_imm(Value::Pred(true));
    b.bra_if(c, top);
    b.ret();
    let k = b.finish();
    let mut outcomes = Vec::new();
    for &tier in &[ExecTier::Interpret, ExecTier::Compiled] {
        let mut dev = Device::test_small();
        dev.set_exec_tier(tier);
        dev.cost_model_mut().watchdog_warp_insts = 10_000;
        let r = dev.launch(&k, LaunchConfig::d1(1, 64), &[]);
        assert!(r.is_err(), "watchdog must fire ({tier})");
        outcomes.push(format!("{r:?}"));
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

/// Forcing the compiled tier on a kernel it cannot model silently falls
/// back to the interpreter instead of failing.
#[test]
fn compiled_tier_falls_back_on_unmodelled_shapes() {
    let mut b = KernelBuilder::new("tailbar");
    let tid = b.special(SpecialReg::TidX);
    let p = b.param(0);
    let i = b.cvt(Ty::I64, tid);
    b.st_global(Ty::I32, MemRef::indexed(p, i, 4), tid);
    b.bar();
    let k = b.finish(); // builder appends ret; still compilable
    assert!(gpsim::CompiledKernel::compile(&k).is_some());

    // A branch target one past the end of the stream (legal per the
    // builder, reachable only if taken) is not modelled; compile()
    // refuses, and the launch interprets — here the branch is never
    // taken, so interpretation succeeds.
    let k2 = Kernel {
        name: "off_end_target".into(),
        insts: vec![
            gpsim::Inst::MovImm {
                dst: gpsim::Reg(0),
                value: Value::Pred(false),
            },
            gpsim::Inst::Bra {
                target: gpsim::Label(0),
                cond: Some((gpsim::Reg(0), true)),
            },
            gpsim::Inst::Ret,
        ],
        label_targets: vec![3],
        num_regs: 1,
        shared_bytes: 0,
        num_params: 0,
        lines: vec![],
    };
    assert!(gpsim::CompiledKernel::compile(&k2).is_none());
    let mut dev = Device::test_small();
    dev.set_exec_tier(ExecTier::Compiled);
    dev.launch(&k2, LaunchConfig::d1(1, 32), &[]).unwrap();
}
