//! Property-based tests for the simulator core: arithmetic semantics,
//! coalescing/bank-conflict analysis, and kernel-level invariants.

use gpsim::coalesce::{bank_conflict_degree, global_transactions};
use gpsim::{
    eval_bin, eval_cmp, BinOp, CmpOp, Device, KernelBuilder, LaunchConfig, MemRef, SpecialReg, Ty,
    Value,
};
use proptest::prelude::*;

proptest! {
    /// Reduction-relevant operators are associative and commutative on
    /// integers (the property §3 of the paper builds on).
    #[test]
    fn int_ops_assoc_comm(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max, BinOp::And, BinOp::Or, BinOp::Xor] {
            let f = |x: Value, y: Value| eval_bin(op, Ty::I32, x, y).unwrap();
            let (va, vb, vc) = (Value::I32(a), Value::I32(b), Value::I32(c));
            prop_assert_eq!(f(f(va, vb), vc), f(va, f(vb, vc)), "{:?} assoc", op);
            prop_assert_eq!(f(va, vb), f(vb, va), "{:?} comm", op);
        }
    }

    /// Conversions preserve i32 values through i64 and back.
    #[test]
    fn convert_roundtrip_i32(v in any::<i32>()) {
        let w = Value::I32(v).convert(Ty::I64).convert(Ty::I32);
        prop_assert_eq!(w, Value::I32(v));
    }

    /// Byte encode/decode round-trips for every type.
    #[test]
    fn value_bytes_roundtrip(v in any::<i64>(), f in any::<f64>()) {
        for val in [Value::I64(v), Value::I32(v as i32), Value::F64(f), Value::F32(f as f32), Value::U64(v as u64)] {
            let (bytes, n) = val.to_bytes();
            prop_assert_eq!(Value::from_bytes(val.ty(), &bytes[..n]), val);
        }
    }

    /// Comparison trichotomy on integers.
    #[test]
    fn cmp_trichotomy(a in any::<i64>(), b in any::<i64>()) {
        let lt = eval_cmp(CmpOp::Lt, Ty::I64, Value::I64(a), Value::I64(b));
        let eq = eval_cmp(CmpOp::Eq, Ty::I64, Value::I64(a), Value::I64(b));
        let gt = eval_cmp(CmpOp::Gt, Ty::I64, Value::I64(a), Value::I64(b));
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1);
        prop_assert_eq!(eval_cmp(CmpOp::Le, Ty::I64, Value::I64(a), Value::I64(b)), lt || eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ne, Ty::I64, Value::I64(a), Value::I64(b)), !eq);
    }

    /// Transaction counts: bounded by lane count and segment-permutation
    /// invariant.
    #[test]
    fn transactions_bounded_and_permutation_invariant(
        mut addrs in prop::collection::vec(0u64..100_000, 1..32),
        size in prop_oneof![Just(4usize), Just(8usize)],
    ) {
        let acc: Vec<(u64, usize)> = addrs.iter().map(|&a| (a, size)).collect();
        let t = global_transactions(&acc, 128);
        prop_assert!(t >= 1);
        prop_assert!(t <= acc.len() as u64 * 2, "each lane touches at most 2 segments");
        addrs.reverse();
        let acc2: Vec<(u64, usize)> = addrs.iter().map(|&a| (a, size)).collect();
        prop_assert_eq!(global_transactions(&acc2, 128), t);
    }

    /// A fully coalesced aligned warp access is always 1 transaction.
    #[test]
    fn coalesced_access_is_one_transaction(base in 0u64..1000) {
        let acc: Vec<(u64, usize)> = (0..32u64).map(|i| (base * 128 + i * 4, 4)).collect();
        prop_assert_eq!(global_transactions(&acc, 128), 1);
    }

    /// Bank conflict degree is between 1 and the lane count.
    #[test]
    fn conflict_degree_bounds(offsets in prop::collection::vec(0u64..4096, 1..32)) {
        let acc: Vec<(u64, usize)> = offsets.iter().map(|&o| (o * 4, 4)).collect();
        let d = bank_conflict_degree(&acc, 32);
        prop_assert!(d >= 1);
        prop_assert!(d <= acc.len() as u64);
    }

    /// Kernel-level: a grid-stride sum over random data is exact for any
    /// thread/block geometry.
    #[test]
    fn device_sum_matches_host(
        data in prop::collection::vec(-1000i32..1000, 1..400),
        blocks in 1u32..4,
        threads in prop_oneof![Just(32u32), Just(64), Just(96), Just(17)],
    ) {
        let mut b = KernelBuilder::new("sum");
        let inp = b.param(0);
        let out = b.param(1);
        let n = b.param(2);
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let ntid = b.special(SpecialReg::NTidX);
        let nctaid = b.special(SpecialReg::NCtaIdX);
        let base = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        let gid = b.bin(BinOp::Add, Ty::I32, base, tid);
        let total = b.bin(BinOp::Mul, Ty::I32, ntid, nctaid);
        let acc = b.mov_imm(Value::I64(0));
        let i = b.mov(gid);
        let top = b.new_label();
        let done = b.new_label();
        b.place(top);
        let p = b.cmp(CmpOp::Ge, Ty::I32, i, n);
        b.bra_if(p, done);
        let i64r = b.cvt(Ty::I64, i);
        let v = b.ld_global(Ty::I32, MemRef::indexed(inp, i64r, 4));
        let v64 = b.cvt(Ty::I64, v);
        b.bin_to(acc, BinOp::Add, Ty::I64, acc, v64);
        b.bin_to(i, BinOp::Add, Ty::I32, i, total);
        b.bra(top);
        b.place(done);
        // Atomically fold the per-thread partials (tests atomics too).
        b.atom_global(gpsim::AtomOp::Add, Ty::I64, MemRef::direct(out), acc, false);
        let k = b.finish();

        let mut dev = Device::test_small();
        let ibuf = dev.alloc_elems(Ty::I32, data.len() as u64).unwrap();
        let obuf = dev.alloc_elems(Ty::I64, 1).unwrap();
        let vals: Vec<Value> = data.iter().map(|&v| Value::I32(v)).collect();
        dev.upload_values(ibuf, &vals).unwrap();
        dev.poke(obuf.addr, Value::I64(0)).unwrap();
        dev.launch(
            &k,
            LaunchConfig::d1(blocks, threads),
            &[Value::U64(ibuf.addr), Value::U64(obuf.addr), Value::I32(data.len() as i32)],
        )
        .unwrap();
        let got = dev.peek(Ty::I64, obuf.addr).unwrap().as_i64();
        let want: i64 = data.iter().map(|&v| v as i64).sum();
        prop_assert_eq!(got, want);
    }

    /// Stats sanity on random launches: lane-insts never exceed 32x
    /// warp-insts, cycles are positive.
    #[test]
    fn stats_invariants(blocks in 1u32..4, threads in 1u32..130) {
        let mut b = KernelBuilder::new("nop_work");
        let tid = b.special(SpecialReg::TidX);
        let _ = b.bin(BinOp::Mul, Ty::I32, tid, Value::I32(3));
        let k = b.finish();
        let mut dev = Device::test_small();
        let st = dev.launch(&k, LaunchConfig::d1(blocks, threads), &[]).unwrap();
        prop_assert!(st.lane_insts <= st.warp_insts * 32);
        prop_assert!(st.lane_insts >= st.warp_insts, "at least one lane per warp-inst");
        prop_assert!(st.cycles > 0);
        prop_assert_eq!(st.blocks, blocks as u64);
    }
}
