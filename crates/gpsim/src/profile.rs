//! Source-correlated profiling: per-PC / per-barrier-interval / per-SM
//! attribution of modelled cycles and stall reasons, with report, JSON and
//! Chrome-trace export.
//!
//! # Attribution model
//!
//! The interpreter charges every warp-instruction a cycle cost built from
//! the [`crate::cost::CostModel`] knobs. The profiler splits that cost
//! into *stall reasons* whose sum reproduces the charged cycles exactly:
//!
//! - `issue` — the per-instruction issue cost,
//! - `alu` — ALU work including the FP64 and SFU surcharges,
//! - `mem` — the first (unavoidable) global-memory transaction,
//! - `mem_serial` — the `tx - 1` *extra* transactions an uncoalesced
//!   access serializes into,
//! - `shared` — the first (conflict-free) shared-memory way,
//! - `conflict` — the `ways - 1` extra ways bank conflicts serialize into,
//! - `atomic` — per-lane atomic serialization,
//! - `barrier` — barrier arrival cost.
//!
//! Deltas are bucketed three ways simultaneously: by PC, by *barrier
//! interval* (the span between two barrier releases — interval `k` covers
//! everything a block executed after its `k`-th release), and by warp (for
//! the timeline). Per-PC buckets roll up to source lines through the
//! kernel's line table ([`crate::ir::Kernel::lines`]).
//!
//! All attributed cycles are **raw** warp cycles, before the warp-overlap
//! divisor; block/launch totals on the timeline are modelled (overlapped)
//! cycles. Shares within a kernel are therefore exact, while absolute
//! per-PC numbers are upper bounds on the modelled time.
//!
//! # Determinism
//!
//! Per-block profiles are merged in linear block-id order on both the
//! sequential and the parallel executor path, so every exported byte is
//! identical at any `host_threads` setting — the same guarantee traces and
//! hazard reports have. All exports use integer cycle counts and sorted
//! containers; nothing depends on wall-clock time or map iteration order.

use crate::exec::LaunchConfig;
use crate::ir::Kernel;
use std::fmt::Write as _;
use std::ops::AddAssign;

/// Profiler configuration (set on
/// [`DeviceConfig::profile`](crate::cost::DeviceConfig) /
/// [`Device::set_profiler`](crate::Device::set_profiler)).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// Maximum per-block timeline spans kept per launch; blocks beyond
    /// this are still fully counted in every bucket, only their timeline
    /// spans are dropped (and reported in `spans_dropped`).
    pub timeline_blocks: usize,
    /// Emit per-warp sub-spans inside each block's timeline span.
    pub per_warp_spans: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            timeline_blocks: 256,
            per_warp_spans: true,
        }
    }
}

/// One attribution bucket: counters plus the stall-reason cycle split.
/// The same struct serves as the per-step delta the interpreter produces
/// and as the per-PC / per-interval accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PcCounters {
    /// Warp-instructions charged to this bucket.
    pub warp_insts: u64,
    /// Lane-instructions (warp-insts weighted by active lanes).
    pub lane_insts: u64,
    /// Issue cost cycles.
    pub issue_cycles: u64,
    /// ALU cycles (including FP64/SFU surcharges).
    pub alu_cycles: u64,
    /// First-transaction global memory cycles.
    pub mem_cycles: u64,
    /// Extra cycles from memory-transaction serialization (`tx - 1`
    /// segments of an uncoalesced access).
    pub mem_serial_cycles: u64,
    /// First-way shared memory cycles.
    pub shared_cycles: u64,
    /// Extra cycles from bank-conflict serialization (`ways - 1`).
    pub conflict_cycles: u64,
    /// Atomic per-lane serialization cycles.
    pub atomic_cycles: u64,
    /// Barrier arrival cycles.
    pub barrier_cycles: u64,
    /// Global memory instructions (warp-level).
    pub global_accesses: u64,
    /// Global memory transactions.
    pub global_transactions: u64,
    /// Shared memory instructions (warp-level).
    pub shared_accesses: u64,
    /// Bank-conflict serialization ways.
    pub shared_ways: u64,
    /// Atomic instructions (warp-level).
    pub atomics: u64,
    /// Barrier arrivals (warp-level).
    pub barriers: u64,
}

impl PcCounters {
    /// Total raw cycles in this bucket — by construction exactly the
    /// cycles the interpreter charged (the stall split is a partition).
    pub fn cycles(&self) -> u64 {
        self.issue_cycles
            + self.alu_cycles
            + self.mem_cycles
            + self.mem_serial_cycles
            + self.shared_cycles
            + self.conflict_cycles
            + self.atomic_cycles
            + self.barrier_cycles
    }
}

impl AddAssign for PcCounters {
    fn add_assign(&mut self, o: Self) {
        self.warp_insts += o.warp_insts;
        self.lane_insts += o.lane_insts;
        self.issue_cycles += o.issue_cycles;
        self.alu_cycles += o.alu_cycles;
        self.mem_cycles += o.mem_cycles;
        self.mem_serial_cycles += o.mem_serial_cycles;
        self.shared_cycles += o.shared_cycles;
        self.conflict_cycles += o.conflict_cycles;
        self.atomic_cycles += o.atomic_cycles;
        self.barrier_cycles += o.barrier_cycles;
        self.global_accesses += o.global_accesses;
        self.global_transactions += o.global_transactions;
        self.shared_accesses += o.shared_accesses;
        self.shared_ways += o.shared_ways;
        self.atomics += o.atomics;
        self.barriers += o.barriers;
    }
}

/// Per-block profile collected while a block executes; merged into a
/// [`LaunchProfile`] in linear block-id order.
#[derive(Debug, Clone)]
pub struct BlockProfile {
    /// Linear block id.
    pub block_id: u32,
    /// Per-PC buckets, indexed by instruction index.
    pub pcs: Vec<PcCounters>,
    /// Per-barrier-interval buckets (interval 0 = before the first
    /// release).
    pub intervals: Vec<PcCounters>,
    /// Raw cycles per warp (for the timeline's warp sub-spans).
    pub warp_cycles: Vec<u64>,
    /// Modelled (overlapped) block cycles; 0 until the block completes.
    pub cycles: u64,
    interval: u32,
}

impl BlockProfile {
    /// Fresh profile for a block of `num_warps` warps running a kernel of
    /// `num_insts` instructions.
    pub fn new(block_id: u32, num_insts: usize, num_warps: usize) -> Self {
        BlockProfile {
            block_id,
            pcs: vec![PcCounters::default(); num_insts],
            intervals: vec![PcCounters::default()],
            warp_cycles: vec![0; num_warps],
            cycles: 0,
            interval: 0,
        }
    }

    /// Record one warp-step delta at `pc` on warp `warp`.
    pub fn record(&mut self, pc: usize, warp: u32, d: &PcCounters) {
        self.pcs[pc] += *d;
        let iv = self.interval as usize;
        self.intervals[iv] += *d;
        self.warp_cycles[warp as usize] += d.cycles();
    }

    /// A barrier released: subsequent deltas belong to the next interval.
    pub fn barrier_release(&mut self) {
        self.interval += 1;
        self.intervals.push(PcCounters::default());
    }
}

/// One block's span on the modelled per-SM timeline.
#[derive(Debug, Clone)]
pub struct BlockSpan {
    /// Linear block id.
    pub block: u32,
    /// SM the block was scheduled on (`block % num_sms`).
    pub sm: u32,
    /// Start cycle relative to the launch start.
    pub start: u64,
    /// Modelled block cycles.
    pub cycles: u64,
    /// Raw per-warp cycles (scaled into sub-spans at export time).
    pub warp_cycles: Vec<u64>,
}

/// Aggregated profile of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchProfile {
    /// Kernel name.
    pub kernel: String,
    /// Grid dimensions.
    pub grid: (u32, u32),
    /// Block dimensions.
    pub block: (u32, u32),
    /// Disassembly text per PC.
    pub inst_text: Vec<String>,
    /// Source line per PC (0 = unknown); empty when the kernel carries no
    /// line table.
    pub lines: Vec<u32>,
    /// Per-PC buckets summed over all blocks.
    pub pcs: Vec<PcCounters>,
    /// Per-barrier-interval buckets summed over all blocks.
    pub intervals: Vec<PcCounters>,
    /// Blocks merged so far.
    pub blocks: u64,
    /// Modelled cycles accumulated per SM (round-robin block placement).
    pub sm_cycles: Vec<u64>,
    /// Per-block timeline spans (bounded by
    /// [`ProfileConfig::timeline_blocks`]).
    pub block_spans: Vec<BlockSpan>,
    /// Blocks whose timeline spans were dropped by the bound.
    pub spans_dropped: u64,
    /// Fixed launch overhead included in `cycles`.
    pub launch_overhead: u64,
    /// Modelled launch cycles (max over SMs + launch overhead).
    pub cycles: u64,
    /// False when the launch errored out (partial attribution kept).
    pub completed: bool,
    cfg: ProfileConfig,
}

impl LaunchProfile {
    /// Fresh profile for launching `kernel` with geometry `cfg` on a
    /// device with `num_sms` SMs.
    pub fn new(kernel: &Kernel, cfg: LaunchConfig, num_sms: u32, pc: &ProfileConfig) -> Self {
        LaunchProfile {
            kernel: kernel.name.clone(),
            grid: cfg.grid,
            block: cfg.block,
            inst_text: kernel.insts.iter().map(crate::ir::format_inst).collect(),
            lines: kernel.lines.clone(),
            pcs: vec![PcCounters::default(); kernel.insts.len()],
            intervals: Vec::new(),
            blocks: 0,
            sm_cycles: vec![0; num_sms as usize],
            block_spans: Vec::new(),
            spans_dropped: 0,
            launch_overhead: 0,
            cycles: 0,
            completed: false,
            cfg: pc.clone(),
        }
    }

    /// Merge one block's profile. **Must** be called in linear block-id
    /// order — the per-SM start cycles (and therefore every exported
    /// timeline byte) depend on it. Both executor paths do so.
    pub fn merge_block(&mut self, bp: BlockProfile) {
        self.blocks += 1;
        for (dst, src) in self.pcs.iter_mut().zip(&bp.pcs) {
            *dst += *src;
        }
        for (i, iv) in bp.intervals.iter().enumerate() {
            if self.intervals.len() <= i {
                self.intervals.push(PcCounters::default());
            }
            self.intervals[i] += *iv;
        }
        let sm = bp.block_id as usize % self.sm_cycles.len();
        let start = self.sm_cycles[sm];
        self.sm_cycles[sm] += bp.cycles;
        if self.block_spans.len() < self.cfg.timeline_blocks {
            self.block_spans.push(BlockSpan {
                block: bp.block_id,
                sm: sm as u32,
                start,
                cycles: bp.cycles,
                warp_cycles: bp.warp_cycles,
            });
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Finalize the launch's modelled cycle count (max over SMs plus the
    /// fixed launch overhead — mirroring the executor's formula).
    pub fn finish(&mut self, launch_overhead: u64, completed: bool) {
        self.launch_overhead = launch_overhead;
        self.cycles = self.sm_cycles.iter().copied().max().unwrap_or(0) + launch_overhead;
        self.completed = completed;
    }

    /// Sum of all per-PC buckets (raw cycles and counters).
    pub fn totals(&self) -> PcCounters {
        let mut t = PcCounters::default();
        for p in &self.pcs {
            t += *p;
        }
        t
    }

    /// Roll per-PC buckets up to source lines (ascending line order; line
    /// 0 collects PCs with no line info). Empty when the kernel carries no
    /// line table.
    pub fn line_rollup(&self) -> Vec<(u32, PcCounters)> {
        if self.lines.is_empty() {
            return Vec::new();
        }
        let mut map = std::collections::BTreeMap::<u32, PcCounters>::new();
        for (pc, c) in self.pcs.iter().enumerate() {
            let line = self.lines.get(pc).copied().unwrap_or(0);
            *map.entry(line).or_default() += *c;
        }
        map.into_iter().collect()
    }
}

/// Kind of a session timeline span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Host-to-device transfer.
    H2d,
    /// Device-to-host transfer.
    D2h,
    /// Kernel launch (index into [`SessionProfile::launches`]).
    Kernel,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::H2d => "h2d",
            SpanKind::D2h => "d2h",
            SpanKind::Kernel => "kernel",
        }
    }
}

/// One span on the session's modelled timeline.
#[derive(Debug, Clone)]
pub struct TimelineSpan {
    /// Span kind.
    pub kind: SpanKind,
    /// Display name (kernel name, or `h2d`/`d2h`).
    pub name: String,
    /// Start cycle on the session timeline.
    pub start: u64,
    /// Duration in modelled cycles.
    pub cycles: u64,
    /// Bytes moved (transfers only).
    pub bytes: u64,
}

/// Whole-session profile: every launch's [`LaunchProfile`] plus the
/// modelled timeline of transfers and kernels, in program order.
#[derive(Debug, Clone, Default)]
pub struct SessionProfile {
    /// Modelled-cycle cursor (next span starts here).
    pub cursor: u64,
    /// Timeline spans in program order.
    pub timeline: Vec<TimelineSpan>,
    /// Per-launch profiles in launch order.
    pub launches: Vec<LaunchProfile>,
}

impl SessionProfile {
    /// Record a host<->device transfer span and advance the cursor.
    pub fn add_transfer(&mut self, kind: SpanKind, bytes: u64, cycles: u64) {
        self.timeline.push(TimelineSpan {
            kind,
            name: kind.label().to_string(),
            start: self.cursor,
            cycles,
            bytes,
        });
        self.cursor += cycles;
    }

    /// Record a finished launch and its kernel span; advances the cursor
    /// by the launch's modelled cycles.
    pub fn add_launch(&mut self, lp: LaunchProfile) {
        self.timeline.push(TimelineSpan {
            kind: SpanKind::Kernel,
            name: lp.kernel.clone(),
            start: self.cursor,
            cycles: lp.cycles,
            bytes: 0,
        });
        self.cursor += lp.cycles;
        self.launches.push(lp);
    }

    /// Human-readable profile report. When `source` is given, per-line
    /// rows quote the source line text.
    pub fn report(&self, source: Option<&str>) -> String {
        let src_lines: Vec<&str> = source.map(|s| s.lines().collect()).unwrap_or_default();
        let mut out = String::new();
        let _ = writeln!(out, "== uhprof: {} launch(es) ==", self.launches.len());
        for lp in &self.launches {
            render_launch(&mut out, lp, &src_lines);
        }
        if !self.timeline.is_empty() {
            let _ = writeln!(out, "timeline (modelled cycles):");
            for s in &self.timeline {
                let extra = if s.bytes > 0 {
                    format!("  {} bytes", s.bytes)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  {:>12} +{:<12} {:<8} {}{}",
                    s.start,
                    s.cycles,
                    s.kind.label(),
                    s.name,
                    extra
                );
            }
        }
        out
    }

    /// Stable machine-readable JSON. Integer cycle counts only; key order
    /// and formatting are fixed, so output is byte-identical across runs
    /// and `host_threads` settings.
    pub fn to_json(&self) -> String {
        let mut launches = Vec::new();
        for lp in &self.launches {
            let t = lp.totals();
            let mut fields = vec![
                format!("\"kernel\":\"{}\"", json_escape(&lp.kernel)),
                format!("\"grid\":[{},{}]", lp.grid.0, lp.grid.1),
                format!("\"block\":[{},{}]", lp.block.0, lp.block.1),
                format!("\"blocks\":{}", lp.blocks),
                format!("\"cycles\":{}", lp.cycles),
                format!("\"launch_overhead\":{}", lp.launch_overhead),
                format!("\"completed\":{}", lp.completed),
                format!("\"totals\":{}", counters_json(&t)),
                format!(
                    "\"sm_cycles\":[{}]",
                    lp.sm_cycles
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            ];
            let line_rows: Vec<String> = lp
                .line_rollup()
                .iter()
                .filter(|(_, c)| c.warp_insts > 0)
                .map(|(line, c)| format!("{{\"line\":{line},\"counters\":{}}}", counters_json(c)))
                .collect();
            fields.push(format!("\"lines\":[{}]", line_rows.join(",")));
            let pc_rows: Vec<String> = lp
                .pcs
                .iter()
                .enumerate()
                .filter(|(_, c)| c.warp_insts > 0)
                .map(|(pc, c)| {
                    format!(
                        "{{\"pc\":{pc},\"line\":{},\"inst\":\"{}\",\"counters\":{}}}",
                        lp.lines.get(pc).copied().unwrap_or(0),
                        json_escape(&lp.inst_text[pc]),
                        counters_json(c)
                    )
                })
                .collect();
            fields.push(format!("\"pcs\":[{}]", pc_rows.join(",")));
            let iv_rows: Vec<String> = lp
                .intervals
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{{\"interval\":{i},\"counters\":{}}}", counters_json(c)))
                .collect();
            fields.push(format!("\"intervals\":[{}]", iv_rows.join(",")));
            fields.push(format!("\"spans_dropped\":{}", lp.spans_dropped));
            launches.push(format!("{{{}}}", fields.join(",")));
        }
        let timeline: Vec<String> = self
            .timeline
            .iter()
            .map(|s| {
                format!(
                    "{{\"kind\":\"{}\",\"name\":\"{}\",\"start\":{},\"cycles\":{},\"bytes\":{}}}",
                    s.kind.label(),
                    json_escape(&s.name),
                    s.start,
                    s.cycles,
                    s.bytes
                )
            })
            .collect();
        format!(
            "{{\"version\":1,\"total_cycles\":{},\"launches\":[{}],\"timeline\":[{}]}}",
            self.cursor,
            launches.join(","),
            timeline.join(",")
        )
    }

    /// Chrome-trace (`chrome://tracing` / Perfetto) JSON. Timestamps and
    /// durations are modelled cycles. Process 0 carries the runtime
    /// stream (transfers + kernel spans); process 1 carries per-SM tracks
    /// with block spans and (optionally) scaled warp sub-spans.
    pub fn to_chrome_trace(&self) -> String {
        format!(
            "{{\"traceEvents\":[{}]}}",
            self.chrome_trace_events(0, 0, "").join(",")
        )
    }

    /// The session timeline as individual Chrome-trace event objects,
    /// remapped for splicing: `ts_offset` is added to every timestamp,
    /// `pid_base` to both process ids, and `label` prefixes the process
    /// names. `(0, 0, "")` reproduces [`Self::to_chrome_trace`]'s event
    /// list byte-for-byte; the observability layer uses non-zero offsets
    /// to merge this device timeline into a unified request trace on a
    /// shared timebase (device durations stay modelled cycles, anchored
    /// at the request's execution instant).
    pub fn chrome_trace_events(&self, ts_offset: u64, pid_base: u32, label: &str) -> Vec<String> {
        let stream_pid = pid_base;
        let sm_pid = pid_base + 1;
        let mut ev: Vec<String> = vec![
            meta_event(
                "process_name",
                stream_pid,
                None,
                &format!("{label}accrt runtime"),
            ),
            meta_event("thread_name", stream_pid, Some(0), "stream"),
            meta_event("process_name", sm_pid, None, &format!("{label}gpsim SMs")),
        ];
        let mut sms_named = std::collections::BTreeSet::new();
        let mut kernel_idx = 0usize;
        for s in &self.timeline {
            let args = if s.bytes > 0 {
                format!(",\"args\":{{\"bytes\":{}}}", s.bytes)
            } else {
                String::new()
            };
            ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{stream_pid},\"tid\":0{}}}",
                json_escape(&s.name),
                ts_offset + s.start,
                s.cycles,
                args
            ));
            if s.kind != SpanKind::Kernel {
                continue;
            }
            let lp = &self.launches[kernel_idx];
            kernel_idx += 1;
            for bs in &lp.block_spans {
                if sms_named.insert(bs.sm) {
                    ev.push(meta_event(
                        "thread_name",
                        sm_pid,
                        Some(bs.sm),
                        &format!("SM {}", bs.sm),
                    ));
                }
                let ts = ts_offset + s.start + bs.start;
                ev.push(format!(
                    "{{\"name\":\"{} b{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{sm_pid},\"tid\":{}}}",
                    json_escape(&lp.kernel),
                    bs.block,
                    bs.cycles,
                    bs.sm
                ));
                if lp.cfg.per_warp_spans && bs.warp_cycles.len() > 1 {
                    for (w, dur) in scale_warp_spans(&bs.warp_cycles, bs.cycles) {
                        let mut off = 0u64;
                        // Recompute offset as prefix sum of earlier warps.
                        for (pw, pdur) in scale_warp_spans(&bs.warp_cycles, bs.cycles) {
                            if pw < w {
                                off += pdur;
                            }
                        }
                        if dur == 0 {
                            continue;
                        }
                        ev.push(format!(
                            "{{\"name\":\"w{w}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\"pid\":{sm_pid},\"tid\":{}}}",
                            ts + off,
                            bs.sm
                        ));
                    }
                }
            }
        }
        ev
    }
}

/// Scale raw per-warp cycles into integer sub-span durations summing to
/// exactly `block_cycles` (largest-remainder apportionment; deterministic).
fn scale_warp_spans(warp_cycles: &[u64], block_cycles: u64) -> Vec<(usize, u64)> {
    let raw_total: u64 = warp_cycles.iter().sum();
    if raw_total == 0 || block_cycles == 0 {
        return warp_cycles
            .iter()
            .enumerate()
            .map(|(w, _)| (w, 0))
            .collect();
    }
    let mut out: Vec<(usize, u64)> = warp_cycles
        .iter()
        .enumerate()
        .map(|(w, &c)| (w, c * block_cycles / raw_total))
        .collect();
    let assigned: u64 = out.iter().map(|&(_, d)| d).sum();
    let mut rest = block_cycles - assigned;
    // Hand the integer remainder to the earliest warps (deterministic).
    for slot in out.iter_mut() {
        if rest == 0 {
            break;
        }
        slot.1 += 1;
        rest -= 1;
    }
    out
}

fn meta_event(name: &str, pid: u32, tid: Option<u32>, value: &str) -> String {
    let tid = tid.map_or(String::new(), |t| format!(",\"tid\":{t}"));
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid}{tid},\"args\":{{\"name\":\"{}\"}}}}",
        json_escape(value)
    )
}

fn counters_json(c: &PcCounters) -> String {
    format!(
        "{{\"cycles\":{},\"warp_insts\":{},\"lane_insts\":{},\
         \"stalls\":{{\"issue\":{},\"alu\":{},\"mem\":{},\"mem_serial\":{},\
         \"shared\":{},\"conflict\":{},\"atomic\":{},\"barrier\":{}}},\
         \"global_accesses\":{},\"global_transactions\":{},\
         \"shared_accesses\":{},\"shared_ways\":{},\"atomics\":{},\"barriers\":{}}}",
        c.cycles(),
        c.warp_insts,
        c.lane_insts,
        c.issue_cycles,
        c.alu_cycles,
        c.mem_cycles,
        c.mem_serial_cycles,
        c.shared_cycles,
        c.conflict_cycles,
        c.atomic_cycles,
        c.barrier_cycles,
        c.global_accesses,
        c.global_transactions,
        c.shared_accesses,
        c.shared_ways,
        c.atomics,
        c.barriers
    )
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

fn render_launch(out: &mut String, lp: &LaunchProfile, src_lines: &[&str]) {
    let t = lp.totals();
    let total = t.cycles();
    let _ = writeln!(
        out,
        "\nkernel `{}`  grid {}x{}  block {}x{}  blocks {}  {} cycles{}",
        lp.kernel,
        lp.grid.0,
        lp.grid.1,
        lp.block.0,
        lp.block.1,
        lp.blocks,
        lp.cycles,
        if lp.completed { "" } else { "  [FAILED]" }
    );
    let _ = writeln!(out, "  stall breakdown (raw warp cycles):");
    for (label, v) in [
        ("issue", t.issue_cycles),
        ("alu", t.alu_cycles),
        ("mem (first tx)", t.mem_cycles),
        ("mem serialization", t.mem_serial_cycles),
        ("shared (first way)", t.shared_cycles),
        ("bank conflict", t.conflict_cycles),
        ("atomic serialization", t.atomic_cycles),
        ("barrier", t.barrier_cycles),
    ] {
        if v > 0 {
            let _ = writeln!(out, "    {label:<22} {v:>12}  {:5.1}%", pct(v, total));
        }
    }
    let _ = writeln!(
        out,
        "    {:<22} {:>12}  (once per launch)",
        "launch overhead", lp.launch_overhead
    );
    let rollup = lp.line_rollup();
    if !rollup.is_empty() {
        let _ = writeln!(
            out,
            "  per-line attribution:\n    {:>5} {:>12} {:>6} {:>8} {:>8} {:>8}  source",
            "line", "cycles", "%", "gl.tx", "ways", "insts"
        );
        for (line, c) in rollup.iter().filter(|(_, c)| c.warp_insts > 0) {
            let text = if *line == 0 {
                "<runtime/unattributed>".to_string()
            } else {
                src_lines
                    .get(*line as usize - 1)
                    .map(|s| s.trim().to_string())
                    .unwrap_or_default()
            };
            let _ = writeln!(
                out,
                "    {:>5} {:>12} {:>5.1}% {:>8} {:>8} {:>8}  {}",
                if *line == 0 {
                    "?".to_string()
                } else {
                    line.to_string()
                },
                c.cycles(),
                pct(c.cycles(), total),
                c.global_transactions,
                c.shared_ways,
                c.warp_insts,
                text
            );
        }
    }
    // Hottest PCs by raw cycles (stable order: cycles desc, then pc asc).
    let mut hot: Vec<(usize, &PcCounters)> = lp
        .pcs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.warp_insts > 0)
        .collect();
    hot.sort_by(|a, b| b.1.cycles().cmp(&a.1.cycles()).then(a.0.cmp(&b.0)));
    let _ = writeln!(
        out,
        "  hottest pcs:\n    {:>4} {:>5} {:>12} {:>6}  inst",
        "pc", "line", "cycles", "%"
    );
    for (pc, c) in hot.iter().take(10) {
        let _ = writeln!(
            out,
            "    {:>4} {:>5} {:>12} {:>5.1}%  {}",
            pc,
            lp.lines.get(*pc).copied().unwrap_or(0),
            c.cycles(),
            pct(c.cycles(), total),
            lp.inst_text[*pc]
        );
    }
    if lp.intervals.len() > 1 {
        let _ = writeln!(
            out,
            "  barrier intervals:\n    {:>8} {:>12} {:>6} {:>10} {:>10}",
            "interval", "cycles", "%", "mem", "conflict"
        );
        for (i, c) in lp.intervals.iter().enumerate() {
            if c.warp_insts == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "    {:>8} {:>12} {:>5.1}% {:>10} {:>10}",
                i,
                c.cycles(),
                pct(c.cycles(), total),
                c.mem_cycles + c.mem_serial_cycles,
                c.conflict_cycles
            );
        }
    }
    if lp.spans_dropped > 0 {
        let _ = writeln!(
            out,
            "  (timeline: {} block span(s) dropped beyond the {}-block bound)",
            lp.spans_dropped, lp.cfg.timeline_blocks
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive-field aggregation coverage (same pattern as the
    /// `LaunchStats` test): the literal lists every field without
    /// `..Default::default()` so adding a counter forces an update here,
    /// and each assertion fails until `AddAssign` sums it.
    #[test]
    fn pc_counters_add_assign_covers_every_field() {
        let b = PcCounters {
            warp_insts: 1,
            lane_insts: 2,
            issue_cycles: 3,
            alu_cycles: 4,
            mem_cycles: 5,
            mem_serial_cycles: 6,
            shared_cycles: 7,
            conflict_cycles: 8,
            atomic_cycles: 9,
            barrier_cycles: 10,
            global_accesses: 11,
            global_transactions: 12,
            shared_accesses: 13,
            shared_ways: 14,
            atomics: 15,
            barriers: 16,
        };
        let mut a = b;
        a += b;
        let PcCounters {
            warp_insts,
            lane_insts,
            issue_cycles,
            alu_cycles,
            mem_cycles,
            mem_serial_cycles,
            shared_cycles,
            conflict_cycles,
            atomic_cycles,
            barrier_cycles,
            global_accesses,
            global_transactions,
            shared_accesses,
            shared_ways,
            atomics,
            barriers,
        } = a;
        assert_eq!(warp_insts, 2 * b.warp_insts);
        assert_eq!(lane_insts, 2 * b.lane_insts);
        assert_eq!(issue_cycles, 2 * b.issue_cycles);
        assert_eq!(alu_cycles, 2 * b.alu_cycles);
        assert_eq!(mem_cycles, 2 * b.mem_cycles);
        assert_eq!(mem_serial_cycles, 2 * b.mem_serial_cycles);
        assert_eq!(shared_cycles, 2 * b.shared_cycles);
        assert_eq!(conflict_cycles, 2 * b.conflict_cycles);
        assert_eq!(atomic_cycles, 2 * b.atomic_cycles);
        assert_eq!(barrier_cycles, 2 * b.barrier_cycles);
        assert_eq!(global_accesses, 2 * b.global_accesses);
        assert_eq!(global_transactions, 2 * b.global_transactions);
        assert_eq!(shared_accesses, 2 * b.shared_accesses);
        assert_eq!(shared_ways, 2 * b.shared_ways);
        assert_eq!(atomics, 2 * b.atomics);
        assert_eq!(barriers, 2 * b.barriers);
        // The stall split is a partition of the charged cycles.
        assert_eq!(b.cycles(), 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10);
    }

    #[test]
    fn warp_span_scaling_sums_to_block_cycles() {
        for (warps, cycles) in [
            (vec![100u64, 50, 50], 67u64),
            (vec![1, 1, 1], 100),
            (vec![0, 0], 10),
            (vec![7], 3),
        ] {
            let spans = scale_warp_spans(&warps, cycles);
            let sum: u64 = spans.iter().map(|&(_, d)| d).sum();
            let raw: u64 = warps.iter().sum();
            if raw > 0 {
                assert_eq!(sum, cycles, "warps {warps:?}");
            } else {
                assert_eq!(sum, 0);
            }
        }
    }

    #[test]
    fn block_profile_intervals_split_at_barrier_release() {
        let mut bp = BlockProfile::new(0, 4, 2);
        let d = PcCounters {
            warp_insts: 1,
            issue_cycles: 4,
            ..Default::default()
        };
        bp.record(0, 0, &d);
        bp.barrier_release();
        bp.record(1, 1, &d);
        bp.record(1, 1, &d);
        assert_eq!(bp.intervals.len(), 2);
        assert_eq!(bp.intervals[0].warp_insts, 1);
        assert_eq!(bp.intervals[1].warp_insts, 2);
        assert_eq!(bp.warp_cycles, vec![4, 8]);
        assert_eq!(bp.pcs[1].warp_insts, 2);
    }

    #[test]
    fn session_json_is_wellformed_and_stable() {
        let mut s = SessionProfile::default();
        s.add_transfer(SpanKind::H2d, 128, 7015);
        let j1 = s.to_json();
        let j2 = s.to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"version\":1,"));
        assert!(j1.contains("\"kind\":\"h2d\""));
        let ct = s.to_chrome_trace();
        assert!(ct.starts_with("{\"traceEvents\":["));
        assert!(ct.contains("\"ph\":\"X\""));
    }

    #[test]
    fn chrome_trace_events_remap_and_identity() {
        let mut s = SessionProfile::default();
        s.add_transfer(SpanKind::H2d, 128, 7015);
        // (0, 0, "") must reproduce the standalone trace byte-for-byte.
        let identity = format!(
            "{{\"traceEvents\":[{}]}}",
            s.chrome_trace_events(0, 0, "").join(",")
        );
        assert_eq!(identity, s.to_chrome_trace());
        // Offsets shift timestamps and pids, label prefixes process names.
        let ev = s.chrome_trace_events(500, 1000, "req 3 ");
        let joined = ev.join(",");
        assert!(joined.contains("\"pid\":1000"), "{joined}");
        assert!(joined.contains("req 3 accrt runtime"), "{joined}");
        assert!(joined.contains("req 3 gpsim SMs"), "{joined}");
        assert!(joined.contains("\"ts\":500"), "{joined}");
        assert!(!joined.contains("\"pid\":0,"), "{joined}");
    }
}
