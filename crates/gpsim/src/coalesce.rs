//! Memory access pattern analysis: global-memory coalescing and shared-
//! memory bank conflicts.
//!
//! These two functions are the heart of the performance model — they are
//! what makes the paper's layout choices (Fig. 6b vs 6c, Fig. 8b vs 8c)
//! and the window-sliding schedule measurably different.

use std::collections::HashSet;

/// Number of distinct aligned `segment_bytes` segments touched by a warp's
/// active lanes, i.e. the number of global-memory transactions issued
/// (Fermi+ coalescing rule).
///
/// `accesses` holds `(byte_address, access_size)` per active lane.
pub fn global_transactions(accesses: &[(u64, usize)], segment_bytes: u64) -> u64 {
    // A non-power-of-two segment size is rejected up front by
    // `DeviceConfig::validate` (at device construction and on every
    // launch); the assert documents the invariant for direct callers.
    debug_assert!(segment_bytes.is_power_of_two());
    let mut segments: HashSet<u64> = HashSet::with_capacity(accesses.len());
    for &(addr, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = addr / segment_bytes;
        // Saturating: a wild pointer near `u64::MAX` must not overflow the
        // end-of-access computation (debug builds would panic; the access
        // itself is rejected by the bounds check afterwards). Clamping adds
        // at most one segment, keeping the range loop bounded.
        let last = addr.saturating_add(len as u64 - 1) / segment_bytes;
        for s in first..=last {
            segments.insert(s);
        }
    }
    segments.len() as u64
}

/// Shared-memory bank conflict degree for one warp access: the maximum
/// number of active lanes hitting the same bank with *different* 32-bit
/// words. Lanes reading the same word broadcast (no conflict), as on real
/// hardware.
///
/// Returns the serialization factor: 1 for conflict-free (or broadcast),
/// `n` when the access replays `n` times. 64-bit accesses count both words.
pub fn bank_conflict_degree(accesses: &[(u64, usize)], num_banks: u32) -> u64 {
    if accesses.is_empty() {
        return 0;
    }
    // bank -> set of distinct word indices accessed in that bank
    let mut per_bank: std::collections::HashMap<u64, HashSet<u64>> =
        std::collections::HashMap::new();
    for &(off, len) in accesses {
        if len == 0 {
            continue;
        }
        let first_word = off / 4;
        // Saturating, same rationale as `global_transactions`: wild offsets
        // are values here, bounds are enforced at the access itself.
        let last_word = off.saturating_add(len as u64 - 1) / 4;
        for w in first_word..=last_word {
            per_bank.entry(w % num_banks as u64).or_default().insert(w);
        }
    }
    per_bank
        .values()
        .map(|words| words.len() as u64)
        .max()
        .unwrap_or(0)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes_f32(offsets: impl IntoIterator<Item = u64>) -> Vec<(u64, usize)> {
        offsets.into_iter().map(|o| (o, 4)).collect()
    }

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        // 32 consecutive f32 loads starting at a segment boundary.
        let acc = lanes_f32((0..32).map(|i| i * 4));
        assert_eq!(global_transactions(&acc, 128), 1);
    }

    #[test]
    fn strided_warp_explodes_transactions() {
        // Stride of 128 bytes: every lane in its own segment.
        let acc = lanes_f32((0..32).map(|i| i * 128));
        assert_eq!(global_transactions(&acc, 128), 32);
    }

    #[test]
    fn misaligned_warp_takes_two_transactions() {
        // 32 consecutive f32 loads starting 64 bytes into a segment.
        let acc = lanes_f32((0..32).map(|i| 64 + i * 4));
        assert_eq!(global_transactions(&acc, 128), 2);
    }

    #[test]
    fn f64_consecutive_takes_two_segments() {
        let acc: Vec<_> = (0..32u64).map(|i| (i * 8, 8)).collect();
        assert_eq!(global_transactions(&acc, 128), 2);
    }

    #[test]
    fn empty_and_zero_len() {
        assert_eq!(global_transactions(&[], 128), 0);
        assert_eq!(global_transactions(&[(100, 0)], 128), 0);
    }

    #[test]
    fn straddling_access_counts_both_segments() {
        let acc = [(126u64, 4usize)];
        assert_eq!(global_transactions(&acc, 128), 2);
    }

    #[test]
    fn conflict_free_consecutive_words() {
        let acc = lanes_f32((0..32).map(|i| i * 4));
        assert_eq!(bank_conflict_degree(&acc, 32), 1);
    }

    #[test]
    fn same_word_broadcasts() {
        let acc = lanes_f32(std::iter::repeat_n(16, 32));
        assert_eq!(bank_conflict_degree(&acc, 32), 1);
    }

    #[test]
    fn stride_32_words_is_full_conflict() {
        // All lanes hit bank 0 with distinct words: 32-way conflict.
        let acc = lanes_f32((0..32).map(|i| i * 32 * 4));
        assert_eq!(bank_conflict_degree(&acc, 32), 32);
    }

    #[test]
    fn stride_2_words_is_two_way_conflict() {
        let acc = lanes_f32((0..32).map(|i| i * 2 * 4));
        assert_eq!(bank_conflict_degree(&acc, 32), 2);
    }

    #[test]
    fn f64_access_touches_two_banks() {
        // Consecutive f64: lane i touches words 2i, 2i+1 -> with 32 lanes the
        // 64 words cover each bank twice with distinct words: 2-way replay.
        let acc: Vec<_> = (0..32u64).map(|i| (i * 8, 8)).collect();
        assert_eq!(bank_conflict_degree(&acc, 32), 2);
    }

    #[test]
    fn empty_access_has_zero_degree() {
        assert_eq!(bank_conflict_degree(&[], 32), 0);
    }

    /// Regression: accesses ending at the address-space limit must not
    /// overflow the end-of-access computation (debug builds panicked).
    #[test]
    fn wild_pointer_near_u64_max_does_not_overflow() {
        let acc = [(u64::MAX - 1, 4usize), (u64::MAX, 8usize)];
        // Counts are clamped, not meaningful — the access itself is
        // rejected later by the bounds check; this must merely not panic
        // and stay bounded.
        assert!(global_transactions(&acc, 128) >= 1);
        assert!(bank_conflict_degree(&acc, 32) >= 1);
    }
}
