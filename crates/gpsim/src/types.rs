//! Scalar types and dynamically typed values used by the kernel IR interpreter.
//!
//! The simulator is a register machine: every virtual register holds a
//! [`Value`], and every arithmetic instruction is annotated with the [`Ty`]
//! it operates at, mirroring PTX's typed instructions (`add.s32`,
//! `mul.f64`, ...). Conversions are explicit ([`Value::convert`]).

use std::fmt;

/// Scalar machine types supported by the simulated device.
///
/// `I32`/`I64` are the C `int`/`long` of the paper's testsuite, `F32`/`F64`
/// its `float`/`double`. `U64` is the pointer/byte-address type. `Pred` is a
/// 1-bit predicate register as produced by comparison instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    I32,
    I64,
    F32,
    F64,
    U64,
    Pred,
}

impl Ty {
    /// Size of the type in bytes when stored to memory.
    pub fn size(self) -> usize {
        match self {
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 | Ty::U64 => 8,
            Ty::Pred => 1,
        }
    }

    /// True for the two IEEE-754 floating point types.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// True for the integer types (including the address type).
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 | Ty::I64 | Ty::U64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I32 => "s32",
            Ty::I64 => "s64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::U64 => "u64",
            Ty::Pred => "pred",
        };
        f.write_str(s)
    }
}

/// Canonicalize an `f32` ALU result: any NaN becomes the canonical quiet
/// NaN `0x7fc00000`.
///
/// GPU float units do not propagate NaN payloads — PTX specifies that
/// operations producing a NaN return a single canonical quiet NaN — and
/// the simulator must not either: host codegen is free to commute a
/// two-NaN `a + b` (x86 `addss` returns the *first* operand's payload),
/// so payload propagation would make results depend on which execution
/// tier's machine code the optimizer happened to emit.
#[inline(always)]
pub(crate) fn canon_f32(x: f32) -> f32 {
    if x.is_nan() {
        f32::from_bits(0x7fc0_0000)
    } else {
        x
    }
}

/// `f64` counterpart of [`canon_f32`]: NaN results become `0x7ff8…0`.
#[inline(always)]
pub(crate) fn canon_f64(x: f64) -> f64 {
    if x.is_nan() {
        f64::from_bits(0x7ff8_0000_0000_0000)
    } else {
        x
    }
}

/// A dynamically typed scalar value held in a virtual register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    U64(u64),
    Pred(bool),
}

impl Value {
    /// The type tag of this value.
    pub fn ty(self) -> Ty {
        match self {
            Value::I32(_) => Ty::I32,
            Value::I64(_) => Ty::I64,
            Value::F32(_) => Ty::F32,
            Value::F64(_) => Ty::F64,
            Value::U64(_) => Ty::U64,
            Value::Pred(_) => Ty::Pred,
        }
    }

    /// The zero value of `ty`.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::I32 => Value::I32(0),
            Ty::I64 => Value::I64(0),
            Ty::F32 => Value::F32(0.0),
            Ty::F64 => Value::F64(0.0),
            Ty::U64 => Value::U64(0),
            Ty::Pred => Value::Pred(false),
        }
    }

    /// Interpret the value as `i64`, the common integer domain used by
    /// address and index arithmetic. Predicates map to 0/1; floats truncate.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I32(v) => v as i64,
            Value::I64(v) => v,
            Value::F32(v) => v as i64,
            Value::F64(v) => v as i64,
            Value::U64(v) => v as i64,
            Value::Pred(v) => v as i64,
        }
    }

    /// Interpret the value as `u64` (byte address domain).
    pub fn as_u64(self) -> u64 {
        match self {
            Value::U64(v) => v,
            other => other.as_i64() as u64,
        }
    }

    /// Interpret the value as `f64` (widest float domain).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::U64(v) => v as f64,
            Value::Pred(v) => v as u8 as f64,
        }
    }

    /// Interpret the value as a predicate. Non-zero is true, matching C.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Pred(v) => v,
            Value::I32(v) => v != 0,
            Value::I64(v) => v != 0,
            Value::U64(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// Convert the value to `ty` with C-like conversion semantics
    /// (truncation for float->int, wrapping for narrowing int casts).
    pub fn convert(self, ty: Ty) -> Value {
        match ty {
            Ty::I32 => Value::I32(match self {
                Value::F32(v) => v as i32,
                Value::F64(v) => v as i32,
                other => other.as_i64() as i32,
            }),
            Ty::I64 => Value::I64(match self {
                Value::F32(v) => v as i64,
                Value::F64(v) => v as i64,
                other => other.as_i64(),
            }),
            Ty::F32 => Value::F32(self.as_f64() as f32),
            Ty::F64 => Value::F64(self.as_f64()),
            Ty::U64 => Value::U64(self.as_u64()),
            Ty::Pred => Value::Pred(self.as_bool()),
        }
    }

    /// Encode the value to little-endian bytes for a memory store.
    ///
    /// The returned buffer has exactly `self.ty().size()` bytes.
    pub fn to_bytes(self) -> ([u8; 8], usize) {
        let mut buf = [0u8; 8];
        let n = self.ty().size();
        match self {
            Value::I32(v) => buf[..4].copy_from_slice(&v.to_le_bytes()),
            Value::F32(v) => buf[..4].copy_from_slice(&v.to_le_bytes()),
            Value::I64(v) => buf[..8].copy_from_slice(&v.to_le_bytes()),
            Value::F64(v) => buf[..8].copy_from_slice(&v.to_le_bytes()),
            Value::U64(v) => buf[..8].copy_from_slice(&v.to_le_bytes()),
            Value::Pred(v) => buf[0] = v as u8,
        }
        (buf, n)
    }

    /// Decode a value of type `ty` from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is shorter than `ty.size()`.
    pub fn from_bytes(ty: Ty, bytes: &[u8]) -> Value {
        match ty {
            Ty::I32 => Value::I32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Ty::F32 => Value::F32(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Ty::I64 => Value::I64(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Ty::F64 => Value::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Ty::U64 => Value::U64(u64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Ty::Pred => Value::Pred(bytes[0] != 0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v:#x}"),
            Value::Pred(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::F32.size(), 4);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::F64.size(), 8);
        assert_eq!(Ty::U64.size(), 8);
        assert_eq!(Ty::Pred.size(), 1);
    }

    #[test]
    fn ty_class_predicates() {
        assert!(Ty::F32.is_float());
        assert!(Ty::F64.is_float());
        assert!(!Ty::I32.is_float());
        assert!(Ty::I32.is_int());
        assert!(Ty::U64.is_int());
        assert!(!Ty::F64.is_int());
        assert!(!Ty::Pred.is_int());
    }

    #[test]
    fn value_roundtrip_bytes() {
        let cases = [
            Value::I32(-7),
            Value::I64(1 << 40),
            Value::F32(3.5),
            Value::F64(-2.25e100),
            Value::U64(0xdead_beef),
            Value::Pred(true),
        ];
        for v in cases {
            let (buf, n) = v.to_bytes();
            assert_eq!(n, v.ty().size());
            assert_eq!(Value::from_bytes(v.ty(), &buf[..n]), v);
        }
    }

    #[test]
    fn value_convert_c_semantics() {
        assert_eq!(Value::F64(3.9).convert(Ty::I32), Value::I32(3));
        assert_eq!(Value::F64(-3.9).convert(Ty::I32), Value::I32(-3));
        assert_eq!(Value::I32(-1).convert(Ty::I64), Value::I64(-1));
        assert_eq!(
            Value::I64(i64::from(u32::MAX) + 1).convert(Ty::I32),
            Value::I32(0)
        );
        assert_eq!(Value::I32(5).convert(Ty::F64), Value::F64(5.0));
        assert_eq!(Value::I32(0).convert(Ty::Pred), Value::Pred(false));
        assert_eq!(Value::F32(0.5).convert(Ty::Pred), Value::Pred(true));
    }

    #[test]
    fn value_as_bool_is_c_truthiness() {
        assert!(Value::I32(-3).as_bool());
        assert!(!Value::F64(0.0).as_bool());
        assert!(Value::U64(1).as_bool());
    }
}
