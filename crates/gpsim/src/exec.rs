//! The SIMT interpreter.
//!
//! Execution model:
//! - A launch is a grid of thread blocks; blocks are independent (no
//!   inter-block synchronization — the property the paper's gang-reduction
//!   strategy works around with a second kernel).
//! - Within a block, threads are grouped into warps of 32 consecutive
//!   linear ids (`tid.y * ntid.x + tid.x`), executed in lockstep.
//! - Divergence uses *min-PC reconvergence*: a warp repeatedly executes the
//!   instruction at the smallest program counter among its runnable lanes,
//!   with the active mask being exactly the lanes at that PC. For the
//!   structured control flow our compilers emit this reconverges at the
//!   immediate post-dominator, like hardware.
//! - Warps are scheduled run-to-block: each warp executes until all its
//!   lanes have exited or arrived at a barrier, then the next warp runs.
//!   This is deterministic; racy programs (e.g. a missing
//!   `__syncthreads()`) produce deterministic *wrong* answers, which is how
//!   the baseline compilers' miscompilations manifest, rather than flaky
//!   tests.
//! - A barrier releases when every non-exited thread of the block has
//!   arrived; if all warps block and the barrier cannot fill, the launch
//!   fails with [`SimError::BarrierDeadlock`].
//!
//! # Parallel block execution
//!
//! Blocks may execute on multiple host worker threads
//! ([`DeviceConfig::host_threads`], `UHACC_HOST_THREADS`), with a hard
//! guarantee: **every observable output — memory contents, results,
//! [`LaunchStats`], modelled cycles, traces, hazard reports, and errors —
//! is bit-identical to the sequential executor at any thread count.**
//!
//! The scheme: each block runs against a frozen snapshot of global memory
//! through a copy-on-write [`BlockOverlay`] that buffers its writes,
//! defers its atomics into a log, and records which pages it read. When
//! all blocks finish, a serial committer folds the overlays back **in
//! linear block-id order** — dirty bytes first, then the atomic log (so
//! cross-block atomic combination, including floating point where order
//! changes the bits, happens in exactly the sequential order). Traces and
//! sanitizer logs are captured per block and merged in the same order.
//!
//! Programs whose blocks genuinely communicate can't be replayed this way
//! bit-identically, so the executor detects them and falls back to the
//! sequential path before any state is mutated:
//! - statically, a kernel using value-returning atomics (`dst`) never
//!   takes the parallel path (the returned "old" value depends on
//!   inter-block order);
//! - dynamically, a block mixing plain and atomic accesses to one address
//!   aborts the parallel attempt;
//! - at commit, a block that read any page an earlier block wrote aborts
//!   the commit (conservative, page-granular read/write overlap check).
//!
//! The fallback re-runs the whole launch sequentially on the untouched
//! base memory, so fallbacks cost time but never change results. Errors
//! are deterministic too: the committed prefix is exactly blocks `0..=k`
//! where `k` is the lowest block id that failed, and `k`'s error is the
//! one returned — the same partial state a sequential run leaves behind.

use crate::coalesce::{bank_conflict_degree, global_transactions};
use crate::cost::{CostModel, DeviceConfig};
use crate::error::SimError;
use crate::ir::{AtomOp, BinOp, CmpOp, Inst, Kernel, MemRef, Operand, SpecialReg, UnOp};
use crate::memory::{
    AccessAbort, AddrSet, AtomicLogEntry, BlockOverlay, GlobalMemory, OverlayData, SharedMemory,
};
use crate::profile::{BlockProfile, LaunchProfile, PcCounters};
use crate::sanitizer::{AccessKind, BlockSanitizer, LaunchSanitizer, SanitizerConfig};
use crate::stats::LaunchStats;
use crate::trace::{MemTouch, Trace, TraceEvent, TraceSpace};
use crate::types::{Ty, Value};

/// Grid/block geometry for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// `(gridDim.x, gridDim.y)`
    pub grid: (u32, u32),
    /// `(blockDim.x, blockDim.y)`
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// 1-D launch helper: `grid_x` blocks of `block_x` threads.
    pub fn d1(grid_x: u32, block_x: u32) -> Self {
        LaunchConfig {
            grid: (grid_x, 1),
            block: (block_x, 1),
        }
    }

    /// 2-D block helper with a 1-D grid, the paper's gang/worker/vector
    /// shape: `gangs` blocks of `vector x workers` threads.
    pub fn gwv(gangs: u32, workers: u32, vector: u32) -> Self {
        LaunchConfig {
            grid: (gangs, 1),
            block: (vector, workers),
        }
    }

    /// Threads per block. Saturating: absurd dimensions must reach
    /// [`LaunchConfig::validate`]'s rejection path, not panic on the
    /// multiply in debug builds (validate re-checks the exact product).
    pub fn threads_per_block(&self) -> u32 {
        self.block.0.saturating_mul(self.block.1)
    }

    /// Number of blocks in the grid (saturating, same rationale as
    /// [`LaunchConfig::threads_per_block`]).
    pub fn num_blocks(&self) -> u32 {
        self.grid.0.saturating_mul(self.grid.1)
    }

    /// Warps per block given `warp_size`.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block().div_ceil(warp_size)
    }

    /// Block coordinates of linear block id `id` (the sequential executor
    /// iterates `by` outer, `bx` inner, so linear id is `by * grid.0 + bx`).
    fn block_coords(&self, id: usize) -> (u32, u32) {
        ((id as u32) % self.grid.0, (id as u32) / self.grid.0)
    }

    /// Validate against device limits.
    pub fn validate(&self, dev: &DeviceConfig) -> Result<(), SimError> {
        if self.threads_per_block() == 0 || self.num_blocks() == 0 {
            return Err(SimError::InvalidLaunch {
                reason: "empty grid or block".into(),
            });
        }
        // Exact (u64) products: the u32 accessors saturate, so re-derive
        // the true sizes here to reject dimension combinations whose
        // products overflow `u32` instead of silently clamping them.
        let threads = self.block.0 as u64 * self.block.1 as u64;
        if threads > dev.max_threads_per_block as u64 {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "{threads} threads per block exceeds device limit {}",
                    dev.max_threads_per_block
                ),
            });
        }
        let blocks = self.grid.0 as u64 * self.grid.1 as u64;
        if blocks > u32::MAX as u64 {
            return Err(SimError::InvalidLaunch {
                reason: format!("grid of {blocks} blocks exceeds the u32 block-id space"),
            });
        }
        Ok(())
    }
}

/// Per-thread execution state.
pub(crate) struct Thread {
    pub(crate) pc: usize,
    pub(crate) exited: bool,
    pub(crate) at_barrier: bool,
    pub(crate) regs: Vec<Value>,
}

impl Thread {
    pub(crate) fn runnable(&self) -> bool {
        !self.exited && !self.at_barrier
    }
}

/// A block's view of global memory: direct (sequential executor, mutating
/// the real memory in place) or buffered through a copy-on-write overlay
/// (parallel executor; committed later in block-id order).
pub(crate) enum MemView<'g> {
    Direct(&'g mut GlobalMemory),
    Overlay(BlockOverlay<'g>),
}

impl MemView<'_> {
    pub(crate) fn read(&mut self, ty: Ty, addr: u64) -> Result<Value, AccessAbort> {
        match self {
            MemView::Direct(g) => Ok(g.read(ty, addr)?),
            MemView::Overlay(o) => o.read(ty, addr),
        }
    }

    pub(crate) fn write(&mut self, addr: u64, v: Value) -> Result<(), AccessAbort> {
        match self {
            MemView::Direct(g) => Ok(g.write(addr, v)?),
            MemView::Overlay(o) => o.write(addr, v),
        }
    }

    /// Bit-encoding read for the compiled tier's typed fast mode (identical
    /// bounds, fallback, and bit semantics to [`MemView::read`]).
    pub(crate) fn read_bits(&mut self, ty: Ty, addr: u64) -> Result<u64, AccessAbort> {
        match self {
            MemView::Direct(g) => Ok(g.read_bits(ty, addr)?),
            MemView::Overlay(o) => o.read_bits(ty, addr),
        }
    }

    /// Bit-encoding write for the compiled tier's typed fast mode.
    pub(crate) fn write_bits(&mut self, ty: Ty, addr: u64, bits: u64) -> Result<(), AccessAbort> {
        match self {
            MemView::Direct(g) => Ok(g.write_bits(ty, addr, bits)?),
            MemView::Overlay(o) => o.write_bits(ty, addr, bits),
        }
    }

    /// Coalesced span read; `false` means the caller must replay per-lane
    /// (the fast path has then touched nothing).
    pub(crate) fn read_span_bits(&mut self, ty: Ty, addr: u64, out: &mut [u64]) -> bool {
        match self {
            MemView::Direct(g) => g.read_span_bits(ty, addr, out),
            MemView::Overlay(o) => o.read_span_bits(ty, addr, out),
        }
    }

    /// Coalesced span write; `false` means the caller must replay per-lane.
    pub(crate) fn write_span_bits(&mut self, ty: Ty, addr: u64, src: &[u64]) -> bool {
        match self {
            MemView::Direct(g) => g.write_span_bits(ty, addr, src),
            MemView::Overlay(o) => o.write_span_bits(ty, addr, src),
        }
    }

    /// Perform (direct) or defer (overlay) one lane's atomic; `v` is
    /// already converted to `ty`. Returns the old value when it is
    /// immediately known, i.e. on the direct path only.
    pub(crate) fn atom(
        &mut self,
        op: AtomOp,
        ty: Ty,
        addr: u64,
        v: Value,
    ) -> Result<Option<Value>, AccessAbort> {
        match self {
            MemView::Direct(g) => {
                let old = g.read(ty, addr)?;
                let new = apply_atom(op, ty, old, v)?;
                g.write(addr, new)?;
                Ok(Some(old))
            }
            MemView::Overlay(o) => {
                // Same error precedence as the direct path: bounds first
                // (the `read`), then operation validity (the `eval_bin`).
                // AtomOp has no Div/Rem, so validity depends only on
                // (op, ty) — a dry run against `v` itself surfaces the
                // identical TypeError the deferred replay would hit.
                o.check(addr, ty.size())?;
                apply_atom(op, ty, v, v)?;
                o.log_atomic(AtomicLogEntry {
                    op,
                    ty,
                    addr,
                    val: v,
                })?;
                Ok(None)
            }
        }
    }
}

/// Combine one atomic operation; `old` and `v` are already at type `ty`.
pub(crate) fn apply_atom(op: AtomOp, ty: Ty, old: Value, v: Value) -> Result<Value, SimError> {
    Ok(match op {
        AtomOp::Add => eval_bin(BinOp::Add, ty, old, v)?,
        AtomOp::Min => eval_bin(BinOp::Min, ty, old, v)?,
        AtomOp::Max => eval_bin(BinOp::Max, ty, old, v)?,
        AtomOp::And => eval_bin(BinOp::And, ty, old, v)?,
        AtomOp::Or => eval_bin(BinOp::Or, ty, old, v)?,
        AtomOp::Xor => eval_bin(BinOp::Xor, ty, old, v)?,
        AtomOp::Exch => v,
    })
}

/// Executes one block; owns the block's threads, shared memory, memory
/// view, and (when enabled) its trace buffer and sanitizer shadow.
pub(crate) struct BlockExec<'a, 'g> {
    pub(crate) kernel: &'a Kernel,
    pub(crate) params: &'a [Value],
    pub(crate) threads: Vec<Thread>,
    pub(crate) shared: SharedMemory,
    pub(crate) block_idx: (u32, u32),
    pub(crate) cfg: LaunchConfig,
    pub(crate) dev: &'a DeviceConfig,
    pub(crate) cost: &'a CostModel,
    pub(crate) stats: LaunchStats,
    pub(crate) cycles_raw: u64,
    // scratch buffers reused across warp steps
    pub(crate) scratch_addr: Vec<(u64, usize)>,
    pub(crate) view: MemView<'g>,
    pub(crate) trace: Option<Trace>,
    pub(crate) san: Option<BlockSanitizer>,
    pub(crate) prof: Option<BlockProfile>,
    /// Pre-decoded form of `kernel`; `Some` routes [`BlockExec::run`]
    /// through the compiled tier (see [`crate::compiled`]).
    pub(crate) ck: Option<&'a crate::compiled::CompiledKernel>,
}

impl<'a, 'g> BlockExec<'a, 'g> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        kernel: &'a Kernel,
        params: &'a [Value],
        block_idx: (u32, u32),
        cfg: LaunchConfig,
        dev: &'a DeviceConfig,
        cost: &'a CostModel,
        view: MemView<'g>,
        ck: Option<&'a crate::compiled::CompiledKernel>,
    ) -> Self {
        let n = cfg.threads_per_block() as usize;
        // The compiled tier keeps registers in its own SoA file; skip the
        // per-thread register vectors entirely on that path.
        let thread_regs = if ck.is_some() {
            0
        } else {
            kernel.num_regs as usize
        };
        let threads = (0..n)
            .map(|_| Thread {
                pc: 0,
                exited: false,
                at_barrier: false,
                regs: vec![Value::I32(0); thread_regs],
            })
            .collect();
        BlockExec {
            kernel,
            params,
            threads,
            shared: SharedMemory::new(kernel.shared_bytes),
            block_idx,
            cfg,
            dev,
            cost,
            stats: LaunchStats::default(),
            cycles_raw: 0,
            scratch_addr: Vec::with_capacity(32),
            view,
            trace: None,
            san: None,
            prof: None,
            ck,
        }
    }

    fn lane_tid(&self, lane: usize) -> (u32, u32) {
        let l = lane as u32;
        (l % self.cfg.block.0, l / self.cfg.block.0)
    }

    pub(crate) fn special(&self, lane: usize, sr: SpecialReg) -> Value {
        let (tx, ty) = self.lane_tid(lane);
        let v = match sr {
            SpecialReg::TidX => tx,
            SpecialReg::TidY => ty,
            SpecialReg::TidZ => 0,
            SpecialReg::NTidX => self.cfg.block.0,
            SpecialReg::NTidY => self.cfg.block.1,
            SpecialReg::NTidZ => 1,
            SpecialReg::CtaIdX => self.block_idx.0,
            SpecialReg::CtaIdY => self.block_idx.1,
            SpecialReg::NCtaIdX => self.cfg.grid.0,
            SpecialReg::NCtaIdY => self.cfg.grid.1,
            SpecialReg::LaneLinear => lane as u32,
        };
        Value::I32(v as i32)
    }

    fn operand(&self, lane: usize, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => self.threads[lane].regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn resolve_mref(&self, lane: usize, m: &MemRef) -> u64 {
        let base = self.operand(lane, m.base).as_u64();
        let idx = m
            .index
            .map_or(0, |r| self.threads[lane].regs[r.0 as usize].as_i64());
        mref_addr(base, idx, m.scale as i64, m.disp)
    }

    /// Post-access bookkeeping shared by the memory arms: annotate the
    /// just-recorded trace event with the warp's touched address range
    /// (`scratch_addr` holds the per-lane accesses) and feed the sanitizer.
    pub(crate) fn observe_mem(
        &mut self,
        space: TraceSpace,
        mask: &[usize],
        warp_id: u32,
        pc: usize,
        kind: AccessKind,
        recorded: bool,
    ) {
        if recorded {
            // Saturating: a wild pointer near `u64::MAX` must clamp the
            // annotation, not overflow (the access itself is rejected by
            // the bounds check — which for shared loads runs *after* this
            // observation point).
            let lo = self.scratch_addr.iter().map(|&(a, _)| a).min().unwrap_or(0);
            let hi = self
                .scratch_addr
                .iter()
                .map(|&(a, s)| a.saturating_add(s as u64))
                .max()
                .unwrap_or(0);
            if let Some(t) = self.trace.as_mut() {
                t.annotate_mem(MemTouch { space, lo, hi });
            }
        }
        if let Some(s) = self.san.as_mut() {
            for (i, &l) in mask.iter().enumerate() {
                let (a, sz) = self.scratch_addr[i];
                match space {
                    TraceSpace::Shared => {
                        s.shared_access(l as u32, warp_id, pc, a, sz, kind.writes())
                    }
                    TraceSpace::Global => s.global_access(l as u32, warp_id, pc, a, sz, kind),
                }
            }
        }
    }

    /// Run the block to completion. On success, `stats.cycles` holds the
    /// block's modelled cycle count.
    fn run(&mut self) -> Result<(), AccessAbort> {
        if let Some(ck) = self.ck {
            return crate::compiled::run_block(ck, self);
        }
        let warp = self.dev.warp_size as usize;
        let n = self.threads.len();
        let num_warps = n.div_ceil(warp);
        loop {
            // Run every warp until it blocks (exit or barrier).
            for w in 0..num_warps {
                let lo = w * warp;
                let hi = ((w + 1) * warp).min(n);
                loop {
                    // Find min PC among runnable lanes of this warp.
                    let mut min_pc = usize::MAX;
                    for l in lo..hi {
                        let t = &self.threads[l];
                        if t.runnable() && t.pc < min_pc {
                            min_pc = t.pc;
                        }
                    }
                    if min_pc == usize::MAX {
                        break; // warp fully blocked or exited
                    }
                    self.step(lo, hi, min_pc)?;
                    self.watchdog()?;
                }
            }
            // All warps are blocked: barrier bookkeeping.
            if !self.barrier_round()? {
                break;
            }
        }
        self.finish_block(num_warps);
        Ok(())
    }

    /// Abort the launch when the per-block warp-instruction watchdog
    /// tripped. Checked after every warp-step on both executor tiers.
    pub(crate) fn watchdog(&self) -> Result<(), AccessAbort> {
        if self.cost.watchdog_warp_insts > 0
            && self.stats.warp_insts > self.cost.watchdog_warp_insts
        {
            return Err(SimError::Watchdog {
                executed_insts: self.stats.warp_insts,
            }
            .into());
        }
        Ok(())
    }

    /// All warps are blocked: release the barrier if every live thread
    /// arrived (strictly at one site), or fail. Returns `Ok(false)` when
    /// every thread has exited (the block is done), `Ok(true)` after a
    /// successful release.
    pub(crate) fn barrier_round(&mut self) -> Result<bool, AccessAbort> {
        {
            let alive = self.threads.iter().filter(|t| !t.exited).count();
            if alive == 0 {
                return Ok(false);
            }
            let arrived = self.threads.iter().filter(|t| t.at_barrier).count();
            if arrived == alive {
                // Strict check: every arriving thread must be at the same
                // barrier instruction. Mixed barrier sites mean
                // __syncthreads() under divergent control flow.
                let mut site: Option<usize> = None;
                for t in self.threads.iter().filter(|t| t.at_barrier) {
                    match site {
                        None => site = Some(t.pc),
                        Some(p) if p != t.pc => {
                            let (pc_a, pc_b) = (p - 1, t.pc - 1);
                            if let Some(s) = self.san.as_mut() {
                                let mut per_site: Vec<(usize, usize)> = Vec::new();
                                for th in self.threads.iter().filter(|t| t.at_barrier) {
                                    match per_site.iter_mut().find(|(pc, _)| *pc == th.pc) {
                                        Some((_, n)) => *n += 1,
                                        None => per_site.push((th.pc, 1)),
                                    }
                                }
                                let detail = per_site
                                    .iter()
                                    .map(|(pc, n)| format!("{n} thread(s) at pc {}", pc - 1))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                s.sync_divergence(pc_a, pc_b, detail);
                            }
                            return Err(SimError::BarrierDivergence {
                                block: self.block_idx,
                                pc_a,
                                pc_b,
                            }
                            .into());
                        }
                        _ => {}
                    }
                }
                for t in &mut self.threads {
                    t.at_barrier = false;
                }
                if let Some(s) = self.san.as_mut() {
                    s.barrier_release();
                }
                if let Some(p) = self.prof.as_mut() {
                    p.barrier_release();
                }
            } else {
                if let Some(s) = self.san.as_mut() {
                    let waiting: Vec<String> = self
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.at_barrier)
                        .take(8)
                        .map(|(i, t)| format!("t{i}@pc {}", t.pc - 1))
                        .collect();
                    s.sync_deadlock(arrived, alive, format!("waiting: {}", waiting.join(", ")));
                }
                return Err(SimError::BarrierDeadlock {
                    block: self.block_idx,
                    arrived,
                    expected: alive,
                }
                .into());
            }
        }
        Ok(true)
    }

    /// Final block bookkeeping shared by both tiers: fold the raw cycle
    /// accumulator through the warp-overlap divisor into `stats.cycles`.
    pub(crate) fn finish_block(&mut self, num_warps: usize) {
        self.stats.blocks = 1;
        let overlap = self.cost.overlap(num_warps as u32);
        self.stats.cycles = (self.cycles_raw as f64 / overlap).ceil() as u64;
        if let Some(p) = self.prof.as_mut() {
            p.cycles = self.stats.cycles;
        }
    }

    /// Execute one warp-instruction: the instruction at `pc` for every lane
    /// in `[lo, hi)` whose PC equals `pc`.
    fn step(&mut self, lo: usize, hi: usize, pc: usize) -> Result<(), AccessAbort> {
        debug_assert!(
            pc < self.kernel.insts.len(),
            "pc fell off the end of the kernel"
        );
        let inst = self.kernel.insts[pc].clone();
        // Collect the active mask.
        let mut mask: Vec<usize> = Vec::with_capacity(hi - lo);
        for l in lo..hi {
            let t = &self.threads[l];
            if t.runnable() && t.pc == pc {
                mask.push(l);
            }
        }
        debug_assert!(!mask.is_empty());
        let warp_id = (lo / self.dev.warp_size as usize) as u32;
        // True when this step's event made it into the bounded trace buffer
        // (memory arms annotate it with the touched address range).
        let recorded = match self.trace.as_mut() {
            Some(t) => t.record(TraceEvent {
                block: self.block_idx,
                warp: warp_id,
                pc,
                active: mask.len() as u32,
                text: crate::ir::format_inst(&inst),
                mem: None,
            }),
            None => false,
        };
        self.stats.warp_insts += 1;
        self.stats.lane_insts += mask.len() as u64;
        // Per-step stall-reason delta. The bucket fields partition the
        // step's cycle charge exactly — `d.cycles()` replaces the old
        // scalar accumulator, so modelled time is unchanged whether or
        // not a profiler consumes the delta.
        let mut d = PcCounters {
            warp_insts: 1,
            lane_insts: mask.len() as u64,
            issue_cycles: self.cost.issue,
            ..PcCounters::default()
        };

        let mut advance = true; // advance pc by 1 for the mask afterwards
        match &inst {
            Inst::MovImm { dst, value } => {
                for &l in &mask {
                    self.threads[l].regs[dst.0 as usize] = *value;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::Mov { dst, src } => {
                for &l in &mask {
                    let v = self.threads[l].regs[src.0 as usize];
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::ReadSpecial { dst, sr } => {
                for &l in &mask {
                    let v = self.special(l, *sr);
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::ReadParam { dst, idx } => {
                let v = *self.params.get(*idx as usize).ok_or(SimError::BadParams {
                    expected: self.kernel.num_params,
                    got: self.params.len() as u32,
                })?;
                for &l in &mask {
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::Bin { op, ty, dst, a, b } => {
                for &l in &mask {
                    let av = self.operand(l, *a);
                    let bv = self.operand(l, *b);
                    let r = eval_bin(*op, *ty, av, bv)?;
                    self.threads[l].regs[dst.0 as usize] = r;
                }
                d.alu_cycles = alu_cost(self.cost, *ty, matches!(op, BinOp::Div | BinOp::Rem));
            }
            Inst::Cmp { op, ty, dst, a, b } => {
                for &l in &mask {
                    let av = self.operand(l, *a).convert(*ty);
                    let bv = self.operand(l, *b).convert(*ty);
                    let r = eval_cmp(*op, *ty, av, bv);
                    self.threads[l].regs[dst.0 as usize] = Value::Pred(r);
                }
                d.alu_cycles = alu_cost(self.cost, *ty, false);
            }
            Inst::Un { op, ty, dst, a } => {
                for &l in &mask {
                    let av = self.operand(l, *a);
                    let r = eval_un(*op, *ty, av)?;
                    self.threads[l].regs[dst.0 as usize] = r;
                }
                d.alu_cycles = alu_cost(self.cost, *ty, matches!(op, UnOp::Sqrt));
            }
            Inst::Select { dst, cond, a, b } => {
                for &l in &mask {
                    let c = self.threads[l].regs[cond.0 as usize].as_bool();
                    let v = if c {
                        self.operand(l, *a)
                    } else {
                        self.operand(l, *b)
                    };
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::Cvt { dst, ty, src } => {
                for &l in &mask {
                    let v = self.operand(l, *src).convert(*ty);
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                d.alu_cycles = self.cost.alu;
            }
            Inst::LdGlobal { ty, dst, mref } => {
                self.scratch_addr.clear();
                for &l in &mask {
                    self.scratch_addr
                        .push((self.resolve_mref(l, mref), ty.size()));
                }
                let tx = global_transactions(&self.scratch_addr, self.dev.segment_bytes);
                self.stats.global_accesses += 1;
                self.stats.global_transactions += tx;
                d.global_accesses = 1;
                d.global_transactions = tx;
                // First transaction is unavoidable; the rest are the
                // serialization penalty of an uncoalesced access.
                d.mem_cycles = self.cost.global_segment;
                d.mem_serial_cycles = (tx - 1) * self.cost.global_segment;
                for (i, &l) in mask.iter().enumerate() {
                    let v = self.view.read(*ty, self.scratch_addr[i].0)?;
                    self.threads[l].regs[dst.0 as usize] = v;
                }
                self.observe_mem(
                    TraceSpace::Global,
                    &mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
            }
            Inst::StGlobal { ty, src, mref } => {
                self.scratch_addr.clear();
                for &l in &mask {
                    self.scratch_addr
                        .push((self.resolve_mref(l, mref), ty.size()));
                }
                let tx = global_transactions(&self.scratch_addr, self.dev.segment_bytes);
                self.stats.global_accesses += 1;
                self.stats.global_transactions += tx;
                d.global_accesses = 1;
                d.global_transactions = tx;
                // First transaction is unavoidable; the rest are the
                // serialization penalty of an uncoalesced access.
                d.mem_cycles = self.cost.global_segment;
                d.mem_serial_cycles = (tx - 1) * self.cost.global_segment;
                for (i, &l) in mask.iter().enumerate() {
                    let v = self.operand(l, *src).convert(*ty);
                    self.view.write(self.scratch_addr[i].0, v)?;
                }
                self.observe_mem(
                    TraceSpace::Global,
                    &mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
            Inst::LdShared { ty, dst, mref } => {
                self.scratch_addr.clear();
                for &l in &mask {
                    self.scratch_addr
                        .push((self.resolve_mref(l, mref), ty.size()));
                }
                let ways = bank_conflict_degree(&self.scratch_addr, self.dev.shared_banks);
                self.stats.shared_accesses += 1;
                self.stats.shared_ways += ways;
                d.shared_accesses = 1;
                d.shared_ways = ways;
                // First way is conflict-free; extra ways are the
                // bank-conflict serialization penalty.
                d.shared_cycles = self.cost.shared_way;
                d.conflict_cycles = (ways - 1) * self.cost.shared_way;
                self.observe_mem(
                    TraceSpace::Shared,
                    &mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
                for (i, &l) in mask.iter().enumerate() {
                    let v = self.shared.read(*ty, self.scratch_addr[i].0)?;
                    self.threads[l].regs[dst.0 as usize] = v;
                }
            }
            Inst::StShared { ty, src, mref } => {
                self.scratch_addr.clear();
                for &l in &mask {
                    self.scratch_addr
                        .push((self.resolve_mref(l, mref), ty.size()));
                }
                let ways = bank_conflict_degree(&self.scratch_addr, self.dev.shared_banks);
                self.stats.shared_accesses += 1;
                self.stats.shared_ways += ways;
                d.shared_accesses = 1;
                d.shared_ways = ways;
                // First way is conflict-free; extra ways are the
                // bank-conflict serialization penalty.
                d.shared_cycles = self.cost.shared_way;
                d.conflict_cycles = (ways - 1) * self.cost.shared_way;
                for (i, &l) in mask.iter().enumerate() {
                    let v = self.operand(l, *src).convert(*ty);
                    self.shared.write(self.scratch_addr[i].0, v)?;
                }
                self.observe_mem(
                    TraceSpace::Shared,
                    &mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
            Inst::AtomGlobal {
                op,
                ty,
                mref,
                src,
                dst,
            } => {
                self.stats.atomics += 1;
                self.stats.global_accesses += 1;
                d.atomics = 1;
                d.global_accesses = 1;
                d.global_transactions = mask.len() as u64;
                d.atomic_cycles = mask.len() as u64 * self.cost.atomic_lane;
                self.scratch_addr.clear();
                for &l in &mask {
                    self.scratch_addr
                        .push((self.resolve_mref(l, mref), ty.size()));
                }
                self.observe_mem(
                    TraceSpace::Global,
                    &mask,
                    warp_id,
                    pc,
                    AccessKind::Atomic,
                    recorded,
                );
                if dst.is_some() && matches!(self.view, MemView::Overlay(_)) {
                    // The launch prescan routes kernels with value-returning
                    // atomics to the sequential path; this is the dynamic
                    // backstop (e.g. for unreachable-at-prescan paths).
                    return Err(AccessAbort::NeedsSequential("atomic with a result operand"));
                }
                // Atomics serialize lane by lane.
                for (i, &l) in mask.iter().enumerate() {
                    let addr = self.scratch_addr[i].0;
                    let v = self.operand(l, *src).convert(*ty);
                    if let Some(old) = self.view.atom(*op, *ty, addr, v)? {
                        if let Some(d) = dst {
                            self.threads[l].regs[d.0 as usize] = old;
                        }
                    }
                }
                self.stats.global_transactions += mask.len() as u64;
            }
            Inst::Bar => {
                self.stats.barriers += 1;
                d.barriers = 1;
                d.barrier_cycles = self.cost.barrier;
                for &l in &mask {
                    self.threads[l].at_barrier = true;
                    self.threads[l].pc = pc + 1;
                }
                advance = false;
            }
            Inst::Bra { target, cond } => {
                let tpc = self.kernel.target(*target);
                for &l in &mask {
                    let take = match cond {
                        None => true,
                        Some((r, expect)) => {
                            self.threads[l].regs[r.0 as usize].as_bool() == *expect
                        }
                    };
                    self.threads[l].pc = if take { tpc } else { pc + 1 };
                }
                d.alu_cycles = self.cost.alu;
                advance = false;
            }
            Inst::Ret => {
                for &l in &mask {
                    self.threads[l].exited = true;
                }
                advance = false;
            }
        }
        if advance {
            for &l in &mask {
                self.threads[l].pc = pc + 1;
            }
        }
        self.cycles_raw += d.cycles();
        if let Some(p) = self.prof.as_mut() {
            p.record(pc, warp_id, &d);
        }
        Ok(())
    }
}

/// Byte address of a memory operand: `base + index * scale + disp`, with
/// the wrapping two's-complement arithmetic real address units perform.
/// Wild pointers are *values* here — bounds enforcement happens at the
/// access, so overflow must wrap identically in debug and release builds
/// instead of panicking in one and wrapping in the other.
pub(crate) fn mref_addr(base: u64, idx: i64, scale: i64, disp: i64) -> u64 {
    (base as i64)
        .wrapping_add(idx.wrapping_mul(scale))
        .wrapping_add(disp) as u64
}

pub(crate) fn alu_cost(cost: &CostModel, ty: Ty, sfu: bool) -> u64 {
    let mut c = cost.alu;
    if ty == Ty::F64 {
        c += cost.alu_f64_extra;
    }
    if sfu {
        c += cost.sfu;
    }
    c
}

/// Evaluate a typed binary operation with C semantics (wrapping integer
/// arithmetic, IEEE floats).
pub fn eval_bin(op: BinOp, ty: Ty, a: Value, b: Value) -> Result<Value, SimError> {
    let a = a.convert(ty);
    let b = b.convert(ty);
    macro_rules! int_case {
        ($av:expr, $bv:expr, $wrap:ident, $ctor:ident, $t:ty) => {{
            let (x, y) = ($av, $bv);
            let r: $t = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(SimError::DivisionByZero);
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(SimError::DivisionByZero);
                    }
                    x.wrapping_rem(y)
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl(y as u32),
                BinOp::Shr => x.wrapping_shr(y as u32),
            };
            Ok(Value::$ctor(r))
        }};
    }
    // Float results are NaN-canonicalized (see [`crate::types::canon_f32`]):
    // payload propagation would differ between the interpreter and the
    // compiled tier depending on host codegen operand order.
    macro_rules! float_case {
        ($av:expr, $bv:expr, $ctor:ident, $canon:path) => {{
            let (x, y) = ($av, $bv);
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => {
                    return Err(SimError::TypeError {
                        context: format!("bitwise {op} on float type {ty}"),
                    })
                }
            };
            Ok(Value::$ctor($canon(r)))
        }};
    }
    match ty {
        Ty::I32 => int_case!(a.as_i64() as i32, b.as_i64() as i32, wrapping, I32, i32),
        Ty::I64 => int_case!(a.as_i64(), b.as_i64(), wrapping, I64, i64),
        Ty::U64 => int_case!(a.as_u64(), b.as_u64(), wrapping, U64, u64),
        Ty::F32 => float_case!(
            match a {
                Value::F32(v) => v,
                o => o.as_f64() as f32,
            },
            match b {
                Value::F32(v) => v,
                o => o.as_f64() as f32,
            },
            F32,
            crate::types::canon_f32
        ),
        Ty::F64 => float_case!(a.as_f64(), b.as_f64(), F64, crate::types::canon_f64),
        Ty::Pred => {
            let (x, y) = (a.as_bool(), b.as_bool());
            let r = match op {
                BinOp::And => x && y,
                BinOp::Or => x || y,
                BinOp::Xor => x ^ y,
                _ => {
                    return Err(SimError::TypeError {
                        context: format!("arithmetic {op} on predicate"),
                    })
                }
            };
            Ok(Value::Pred(r))
        }
    }
}

/// Evaluate a typed comparison.
pub fn eval_cmp(op: CmpOp, ty: Ty, a: Value, b: Value) -> bool {
    use std::cmp::Ordering;
    let ord = match ty {
        Ty::F32 | Ty::F64 => a.as_f64().partial_cmp(&b.as_f64()),
        Ty::U64 => Some(a.as_u64().cmp(&b.as_u64())),
        _ => Some(a.as_i64().cmp(&b.as_i64())),
    };
    match (op, ord) {
        (CmpOp::Eq, Some(Ordering::Equal)) => true,
        (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
        (CmpOp::Ne, None) => true, // NaN != anything
        (CmpOp::Lt, Some(Ordering::Less)) => true,
        (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
        (CmpOp::Gt, Some(Ordering::Greater)) => true,
        (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
        _ => false,
    }
}

/// Evaluate a typed unary operation.
///
/// Float results are NaN-canonicalized like [`eval_bin`]'s.
pub fn eval_un(op: UnOp, ty: Ty, a: Value) -> Result<Value, SimError> {
    use crate::types::{canon_f32, canon_f64};
    let a = a.convert(ty);
    Ok(match (op, ty) {
        (UnOp::Neg, Ty::I32) => Value::I32((a.as_i64() as i32).wrapping_neg()),
        (UnOp::Neg, Ty::I64) => Value::I64(a.as_i64().wrapping_neg()),
        (UnOp::Neg, Ty::F32) => Value::F32(canon_f32(-(a.as_f64() as f32))),
        (UnOp::Neg, Ty::F64) => Value::F64(canon_f64(-a.as_f64())),
        (UnOp::Abs, Ty::I32) => Value::I32((a.as_i64() as i32).wrapping_abs()),
        (UnOp::Abs, Ty::I64) => Value::I64(a.as_i64().wrapping_abs()),
        (UnOp::Abs, Ty::F32) => Value::F32(canon_f32((a.as_f64() as f32).abs())),
        (UnOp::Abs, Ty::F64) => Value::F64(canon_f64(a.as_f64().abs())),
        (UnOp::Sqrt, Ty::F32) => Value::F32(canon_f32((a.as_f64() as f32).sqrt())),
        (UnOp::Sqrt, Ty::F64) => Value::F64(canon_f64(a.as_f64().sqrt())),
        (UnOp::Not, Ty::Pred) => Value::Pred(!a.as_bool()),
        (UnOp::Not, Ty::I32) => Value::I32(!(a.as_i64() as i32)),
        (UnOp::Not, Ty::I64) => Value::I64(!a.as_i64()),
        (op, ty) => {
            return Err(SimError::TypeError {
                context: format!("unary {op} at type {ty}"),
            })
        }
    })
}

/// Execute `kernel` over the whole grid, returning aggregate stats.
///
/// Blocks execute on up to [`DeviceConfig::host_threads`] host worker
/// threads when they are independent, and sequentially otherwise — the
/// results are bit-identical either way (see the module docs). Timing
/// models blocks distributed round-robin across the device's SMs: the
/// launch's modelled cycle count is `max over SMs of (sum of that SM's
/// block cycles)` plus the fixed launch overhead, at any thread count.
pub fn run_kernel(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    global: &mut GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
) -> Result<LaunchStats, SimError> {
    run_kernel_traced(kernel, cfg, params, global, dev, cost, None)
}

/// [`run_kernel`] with an optional bounded execution trace.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_traced(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    global: &mut GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
    trace: Option<&mut Trace>,
) -> Result<LaunchStats, SimError> {
    run_kernel_instrumented(kernel, cfg, params, global, dev, cost, trace, None, None)
}

/// Does the kernel use value-returning global atomics? Their "old value"
/// result observes the inter-block commit order mid-block, which the
/// deferred-replay scheme cannot reproduce — such kernels always run
/// sequentially.
fn kernel_returns_atomics(kernel: &Kernel) -> bool {
    kernel
        .insts
        .iter()
        .any(|i| matches!(i, Inst::AtomGlobal { dst: Some(_), .. }))
}

/// The full-fat entry point: [`run_kernel`] with an optional bounded trace,
/// an optional hazard sanitizer observing every memory access and barrier
/// (see [`crate::sanitizer`]), and an optional launch profiler collecting
/// per-PC / per-barrier-interval stall attribution (see [`crate::profile`]).
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_instrumented(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    global: &mut GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
    mut trace: Option<&mut Trace>,
    mut san: Option<&mut LaunchSanitizer>,
    mut profile: Option<&mut LaunchProfile>,
) -> Result<LaunchStats, SimError> {
    cfg.validate(dev)?;
    dev.validate()?;
    if kernel.shared_bytes > dev.shared_mem_per_block {
        return Err(SimError::SharedMemExceeded {
            requested: kernel.shared_bytes,
            limit: dev.shared_mem_per_block,
        });
    }
    if (params.len() as u32) < kernel.num_params {
        return Err(SimError::BadParams {
            expected: kernel.num_params,
            got: params.len() as u32,
        });
    }
    // Tier selection: pre-decode once per launch and share the compiled
    // form across every block/worker. `compile` returns `None` for the
    // (degenerate) kernels the compiled tier does not handle, in which
    // case the interpreter runs even when the tier was forced.
    let compiled = match dev.exec_tier {
        crate::cost::ExecTier::Interpret => None,
        crate::cost::ExecTier::Auto | crate::cost::ExecTier::Compiled => {
            crate::compiled::CompiledKernel::compile(kernel).map(|mut ck| {
                // Parameter types feed the typed tier's register type
                // inference, so specialization happens per launch.
                ck.specialize(params);
                ck
            })
        }
    };
    let ck = compiled.as_ref();
    let host_threads = dev.resolved_host_threads();
    if host_threads >= 2 && cfg.num_blocks() >= 2 && !kernel_returns_atomics(kernel) {
        if let Some(stats) = run_parallel(
            kernel,
            cfg,
            params,
            global,
            dev,
            cost,
            host_threads,
            ck,
            trace.as_deref_mut(),
            san.as_deref_mut(),
            profile.as_deref_mut(),
        )? {
            return Ok(stats);
        }
        // Fallback: the parallel attempt detected inter-block communication
        // and aborted without mutating anything; replay sequentially.
    }
    run_sequential(
        kernel, cfg, params, global, dev, cost, ck, trace, san, profile,
    )
}

/// The sequential executor: blocks in linear block-id order, each mutating
/// global memory directly. Per-block traces and sanitizer shadows are
/// merged immediately after each block — the same merge the parallel
/// committer performs, so both paths produce identical streams by
/// construction.
#[allow(clippy::too_many_arguments)]
fn run_sequential(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    global: &mut GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
    ck: Option<&crate::compiled::CompiledKernel>,
    mut trace: Option<&mut Trace>,
    mut san: Option<&mut LaunchSanitizer>,
    mut profile: Option<&mut LaunchProfile>,
) -> Result<LaunchStats, SimError> {
    let mut totals = LaunchStats::default();
    let mut sm_cycles = vec![0u64; dev.num_sms as usize];
    for id in 0..cfg.num_blocks() as usize {
        let block_idx = cfg.block_coords(id);
        let mut exec = BlockExec::new(
            kernel,
            params,
            block_idx,
            cfg,
            dev,
            cost,
            MemView::Direct(&mut *global),
            ck,
        );
        if let Some(t) = trace.as_deref() {
            exec.trace = Some(Trace::with_limit(t.limit()));
        }
        if let Some(s) = san.as_deref() {
            exec.san = Some(BlockSanitizer::new(
                s.config().clone(),
                block_idx,
                kernel.shared_bytes,
            ));
        }
        if profile.is_some() {
            exec.prof = Some(BlockProfile::new(
                id as u32,
                kernel.insts.len(),
                cfg.warps_per_block(dev.warp_size) as usize,
            ));
        }
        let result = exec.run();
        // Merge the block's observations before error propagation: a
        // failing block's trace events, hazard reports, and profile
        // buckets survive, exactly like its direct memory writes.
        if let (Some(dst), Some(t)) = (trace.as_deref_mut(), exec.trace.take()) {
            dst.merge_from(t);
        }
        if let (Some(dst), Some(b)) = (san.as_deref_mut(), exec.san.take()) {
            dst.merge_block(b);
        }
        if let (Some(dst), Some(p)) = (profile.as_deref_mut(), exec.prof.take()) {
            dst.merge_block(p);
        }
        match result {
            Ok(()) => {
                let cycles = exec.stats.cycles;
                totals += exec.stats;
                sm_cycles[id % dev.num_sms as usize] += cycles;
            }
            Err(AccessAbort::Sim(e)) => return Err(e),
            Err(AccessAbort::NeedsSequential(why)) => {
                unreachable!("direct-view execution cannot request a fallback ({why})")
            }
        }
    }
    totals.cycles = sm_cycles.iter().copied().max().unwrap_or(0) + cost.launch_overhead;
    Ok(totals)
}

/// Outcome of one block's isolated (overlay) execution.
struct BlockOutcome {
    result: Result<(), SimError>,
    stats: LaunchStats,
    overlay: OverlayData,
    trace: Option<Trace>,
    san: Option<BlockSanitizer>,
    prof: Option<BlockProfile>,
}

/// Run one block against the frozen base through a copy-on-write overlay.
/// Returns `None` when the block's access pattern requires the sequential
/// path.
#[allow(clippy::too_many_arguments)]
fn run_block_overlay(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    base: &GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
    ck: Option<&crate::compiled::CompiledKernel>,
    block_idx: (u32, u32),
    trace_limit: Option<usize>,
    san_cfg: Option<&SanitizerConfig>,
    profiled: bool,
) -> Option<BlockOutcome> {
    let mut exec = BlockExec::new(
        kernel,
        params,
        block_idx,
        cfg,
        dev,
        cost,
        MemView::Overlay(BlockOverlay::new(base)),
        ck,
    );
    exec.trace = trace_limit.map(Trace::with_limit);
    exec.san = san_cfg.map(|c| BlockSanitizer::new(c.clone(), block_idx, kernel.shared_bytes));
    if profiled {
        exec.prof = Some(BlockProfile::new(
            block_idx.1 * cfg.grid.0 + block_idx.0,
            kernel.insts.len(),
            cfg.warps_per_block(dev.warp_size) as usize,
        ));
    }
    let result = match exec.run() {
        Ok(()) => Ok(()),
        Err(AccessAbort::Sim(e)) => Err(e),
        Err(AccessAbort::NeedsSequential(_)) => return None,
    };
    let BlockExec {
        stats,
        view,
        trace,
        san,
        prof,
        ..
    } = exec;
    let overlay = match view {
        MemView::Overlay(o) => o.into_data(),
        MemView::Direct(_) => unreachable!(),
    };
    Some(BlockOutcome {
        result,
        stats,
        overlay,
        trace,
        san,
        prof,
    })
}

/// The parallel executor: a worker pool claims blocks by linear id, runs
/// each against a frozen snapshot of global memory, and a serial commit
/// folds the outcomes back in linear block-id order (see module docs).
///
/// Returns `Ok(None)` when the launch needs the sequential path; in that
/// case *nothing* has been mutated. Returns `Err` with exactly the
/// sequential executor's error and partial state otherwise.
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[Value],
    global: &mut GlobalMemory,
    dev: &DeviceConfig,
    cost: &CostModel,
    host_threads: usize,
    ck: Option<&crate::compiled::CompiledKernel>,
    mut trace: Option<&mut Trace>,
    mut san: Option<&mut LaunchSanitizer>,
    mut profile: Option<&mut LaunchProfile>,
) -> Result<Option<LaunchStats>, SimError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let num_blocks = cfg.num_blocks() as usize;
    let num_workers = host_threads.min(num_blocks);
    let trace_limit = trace.as_deref().map(|t| t.limit());
    let san_cfg = san.as_deref().map(|s| s.config().clone());
    let profiled = profile.is_some();

    // Work distribution: workers claim linear block ids from a shared
    // counter. `min_err` tracks the lowest failing block id so far —
    // blocks above it cannot affect the outcome (the sequential executor
    // would never have run them), so claims above it are skipped. Since
    // `min_err` only decreases, every skipped id stays above the final
    // minimum and the committed prefix `0..=k` is always fully populated.
    let next = AtomicUsize::new(0);
    let min_err = AtomicUsize::new(usize::MAX);
    let needs_seq = AtomicBool::new(false);
    let base: &GlobalMemory = global;

    let worker_outputs: Vec<Vec<(usize, BlockOutcome)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, BlockOutcome)> = Vec::new();
                    loop {
                        let id = next.fetch_add(1, Ordering::Relaxed);
                        if id >= num_blocks || needs_seq.load(Ordering::Relaxed) {
                            break;
                        }
                        if id > min_err.load(Ordering::Relaxed) {
                            continue;
                        }
                        match run_block_overlay(
                            kernel,
                            cfg,
                            params,
                            base,
                            dev,
                            cost,
                            ck,
                            cfg.block_coords(id),
                            trace_limit,
                            san_cfg.as_ref(),
                            profiled,
                        ) {
                            None => {
                                needs_seq.store(true, Ordering::Relaxed);
                                break;
                            }
                            Some(outcome) => {
                                if outcome.result.is_err() {
                                    min_err.fetch_min(id, Ordering::Relaxed);
                                }
                                out.push((id, outcome));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("block worker panicked"))
            .collect()
    });

    if needs_seq.load(Ordering::Relaxed) {
        return Ok(None);
    }
    let mut slots: Vec<Option<BlockOutcome>> = (0..num_blocks).map(|_| None).collect();
    for (id, outcome) in worker_outputs.into_iter().flatten() {
        slots[id] = Some(outcome);
    }
    // Only blocks up to the first error are observable; later ones are
    // discarded exactly as the sequential executor never runs them.
    let first_err = min_err.load(Ordering::Relaxed);
    let last = first_err.min(num_blocks - 1);

    // Divergence check: if any committed block read a page an earlier
    // block writes, its overlay run observed pre-launch state where the
    // sequential run would have observed the earlier block's output.
    // Conservative (page-granular, read-vs-write only) but cheap.
    let mut cum_writes = AddrSet::default();
    for slot in slots.iter().take(last + 1) {
        let o = slot
            .as_ref()
            .expect("every block up to the first error was executed");
        if o.overlay.reads_overlap(&cum_writes) {
            return Ok(None);
        }
        cum_writes.extend(o.overlay.write_pages());
    }

    // Serial commit in linear block-id order.
    let mut totals = LaunchStats::default();
    let mut sm_cycles = vec![0u64; dev.num_sms as usize];
    for (id, slot) in slots.iter_mut().enumerate().take(last + 1) {
        let o = slot.take().expect("checked above");
        for (&page, p) in &o.overlay.pages {
            global.apply_overlay_page(page, p);
        }
        for e in &o.overlay.atomics {
            let old = global
                .read(e.ty, e.addr)
                .expect("atomic target was bounds-checked at log time");
            let new =
                apply_atom(e.op, e.ty, old, e.val).expect("atomic op was validated at log time");
            global
                .write(e.addr, new)
                .expect("atomic target was bounds-checked at log time");
        }
        if let (Some(dst), Some(t)) = (trace.as_deref_mut(), o.trace) {
            dst.merge_from(t);
        }
        if let (Some(dst), Some(b)) = (san.as_deref_mut(), o.san) {
            dst.merge_block(b);
        }
        if let (Some(dst), Some(p)) = (profile.as_deref_mut(), o.prof) {
            dst.merge_block(p);
        }
        match o.result {
            Ok(()) => {
                let cycles = o.stats.cycles;
                totals += o.stats;
                sm_cycles[id % dev.num_sms as usize] += cycles;
            }
            // The failing block's partial effects are committed (matching
            // the sequential executor's in-place mutations), then its
            // error surfaces.
            Err(e) => return Err(e),
        }
    }
    totals.cycles = sm_cycles.iter().copied().max().unwrap_or(0) + cost.launch_overhead;
    Ok(Some(totals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::MemRef;
    use crate::memory::GLOBAL_ALLOC_ALIGN;

    fn dev() -> DeviceConfig {
        DeviceConfig::test_small()
    }

    fn dev_threads(n: u32) -> DeviceConfig {
        DeviceConfig {
            host_threads: n,
            ..DeviceConfig::test_small()
        }
    }

    fn run(
        k: &Kernel,
        cfg: LaunchConfig,
        params: &[Value],
        mem: &mut GlobalMemory,
    ) -> Result<LaunchStats, SimError> {
        run_kernel(k, cfg, params, mem, &dev(), &CostModel::default())
    }

    fn run_threads(
        k: &Kernel,
        cfg: LaunchConfig,
        params: &[Value],
        mem: &mut GlobalMemory,
        n: u32,
    ) -> Result<LaunchStats, SimError> {
        run_kernel(k, cfg, params, mem, &dev_threads(n), &CostModel::default())
    }

    /// Snapshot the allocated range of a memory for bitwise comparison.
    fn dump(mem: &GlobalMemory) -> Vec<u8> {
        let mut buf = vec![0u8; mem.used() as usize];
        mem.read_bytes(GLOBAL_ALLOC_ALIGN, &mut buf).unwrap();
        buf
    }

    /// Each thread writes its global linear id to out[gid].
    #[test]
    fn threads_write_their_ids() {
        let mut b = KernelBuilder::new("ids");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let ntid = b.special(SpecialReg::NTidX);
        let base = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        let gid = b.bin(BinOp::Add, Ty::I32, base, tid);
        let gid64 = b.cvt(Ty::I64, gid);
        b.st_global(Ty::I32, MemRef::indexed(out, gid64, 4), gid);
        let k = b.finish();

        let mut mem = GlobalMemory::new(1 << 20);
        let buf = mem.alloc(4 * 64).unwrap();
        let stats = run(
            &k,
            LaunchConfig::d1(2, 32),
            &[Value::U64(buf.addr)],
            &mut mem,
        )
        .unwrap();
        for i in 0..64u64 {
            assert_eq!(
                mem.read(Ty::I32, buf.addr + i * 4).unwrap(),
                Value::I32(i as i32)
            );
        }
        assert_eq!(stats.blocks, 2);
        // The store is fully coalesced: one transaction per warp store.
        assert_eq!(stats.global_transactions, 2);
    }

    /// Grid-stride loop (the paper's window-sliding): 4 threads, 32 elements.
    #[test]
    fn grid_stride_loop_sums() {
        let mut b = KernelBuilder::new("stride");
        let inp = b.param(0);
        let out = b.param(1);
        let n = b.param(2);
        let i = b.special(SpecialReg::TidX);
        let acc = b.mov_imm(Value::I32(0));
        let top = b.new_label();
        let done = b.new_label();
        b.place(top);
        let c = b.cmp(CmpOp::Ge, Ty::I32, i, n);
        b.bra_if(c, done);
        let i64r = b.cvt(Ty::I64, i);
        let v = b.ld_global(Ty::I32, MemRef::indexed(inp, i64r, 4));
        b.bin_to(acc, BinOp::Add, Ty::I32, acc, v);
        let ntid = b.special(SpecialReg::NTidX);
        b.bin_to(i, BinOp::Add, Ty::I32, i, ntid);
        b.bra(top);
        b.place(done);
        // out[tid] = acc
        let tid = b.special(SpecialReg::TidX);
        let tid64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, tid64, 4), acc);
        let k = b.finish();

        let mut mem = GlobalMemory::new(1 << 20);
        let inp_buf = mem.alloc(4 * 32).unwrap();
        let out_buf = mem.alloc(4 * 4).unwrap();
        for i in 0..32u64 {
            mem.write(inp_buf.addr + i * 4, Value::I32(1 + i as i32))
                .unwrap();
        }
        run(
            &k,
            LaunchConfig::d1(1, 4),
            &[
                Value::U64(inp_buf.addr),
                Value::U64(out_buf.addr),
                Value::I32(32),
            ],
            &mut mem,
        )
        .unwrap();
        let mut total = 0;
        for t in 0..4u64 {
            total += match mem.read(Ty::I32, out_buf.addr + t * 4).unwrap() {
                Value::I32(v) => v,
                _ => unreachable!(),
            };
        }
        assert_eq!(total, (1..=32).sum::<i32>());
    }

    /// Divergent lanes reconverge: even lanes add 1, odd lanes add 2,
    /// then all lanes multiply by 10 after reconvergence.
    #[test]
    fn divergence_reconverges() {
        let mut b = KernelBuilder::new("div");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let two = Value::I32(2);
        let parity = b.bin(BinOp::Rem, Ty::I32, tid, two);
        let is_odd = b.cmp(CmpOp::Ne, Ty::I32, parity, Value::I32(0));
        let acc = b.mov_imm(Value::I32(0));
        let odd = b.new_label();
        let join = b.new_label();
        b.bra_if(is_odd, odd);
        b.bin_to(acc, BinOp::Add, Ty::I32, acc, Value::I32(1));
        b.bra(join);
        b.place(odd);
        b.bin_to(acc, BinOp::Add, Ty::I32, acc, Value::I32(2));
        b.place(join);
        b.bin_to(acc, BinOp::Mul, Ty::I32, acc, Value::I32(10));
        let tid64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, tid64, 4), acc);
        let k = b.finish();

        let mut mem = GlobalMemory::new(1 << 20);
        let buf = mem.alloc(4 * 8).unwrap();
        let stats = run(
            &k,
            LaunchConfig::d1(1, 8),
            &[Value::U64(buf.addr)],
            &mut mem,
        )
        .unwrap();
        for i in 0..8u64 {
            let want = if i % 2 == 0 { 10 } else { 20 };
            assert_eq!(
                mem.read(Ty::I32, buf.addr + i * 4).unwrap(),
                Value::I32(want)
            );
        }
        // Divergence visible in stats: average active lanes < 8.
        assert!(stats.avg_active_lanes().unwrap() < 8.0);
    }

    /// Shared memory + barrier: lane 0 writes, all lanes read after sync.
    #[test]
    fn shared_memory_barrier_broadcast() {
        let mut b = KernelBuilder::new("bcast");
        let out = b.param(0);
        let slot = b.alloc_shared(4, 4);
        let tid = b.special(SpecialReg::TidX);
        let is0 = b.cmp(CmpOp::Eq, Ty::I32, tid, Value::I32(0));
        let skip = b.new_label();
        b.bra_unless(is0, skip);
        b.st_shared(
            Ty::I32,
            MemRef::direct(Value::U64(slot as u64)),
            Value::I32(77),
        );
        b.place(skip);
        b.bar();
        let v = b.ld_shared(Ty::I32, MemRef::direct(Value::U64(slot as u64)));
        let tid64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, tid64, 4), v);
        let k = b.finish();

        let mut mem = GlobalMemory::new(1 << 20);
        // 64 threads = 2 warps: the barrier really synchronizes across warps.
        let buf = mem.alloc(4 * 64).unwrap();
        let stats = run(
            &k,
            LaunchConfig::d1(1, 64),
            &[Value::U64(buf.addr)],
            &mut mem,
        )
        .unwrap();
        for i in 0..64u64 {
            assert_eq!(mem.read(Ty::I32, buf.addr + i * 4).unwrap(), Value::I32(77));
        }
        assert!(stats.barriers >= 2); // one arrival per warp
    }

    /// Without the barrier, warp 1 reads stale zero — the deterministic
    /// manifestation of a missing-__syncthreads bug.
    #[test]
    fn missing_barrier_reads_stale_value() {
        let mut b = KernelBuilder::new("race");
        let out = b.param(0);
        let slot = b.alloc_shared(4, 4);
        let tid = b.special(SpecialReg::TidX);
        // Lane 32 (warp 1) writes; warp 0 reads without a barrier.
        let is_writer = b.cmp(CmpOp::Eq, Ty::I32, tid, Value::I32(32));
        let skip = b.new_label();
        b.bra_unless(is_writer, skip);
        b.st_shared(
            Ty::I32,
            MemRef::direct(Value::U64(slot as u64)),
            Value::I32(55),
        );
        b.place(skip);
        let v = b.ld_shared(Ty::I32, MemRef::direct(Value::U64(slot as u64)));
        let tid64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, tid64, 4), v);
        let k = b.finish();

        let mut mem = GlobalMemory::new(1 << 20);
        let buf = mem.alloc(4 * 64).unwrap();
        run(
            &k,
            LaunchConfig::d1(1, 64),
            &[Value::U64(buf.addr)],
            &mut mem,
        )
        .unwrap();
        // Warp 0 ran first and saw 0; warp 1 saw its own write.
        assert_eq!(mem.read(Ty::I32, buf.addr).unwrap(), Value::I32(0));
        assert_eq!(
            mem.read(Ty::I32, buf.addr + 32 * 4).unwrap(),
            Value::I32(55)
        );
    }

    /// Warps reaching *different* `__syncthreads()` sites is divergent-sync
    /// UB and is reported strictly.
    #[test]
    fn divergent_barrier_sites_detected() {
        let mut b = KernelBuilder::new("divergent_bar");
        let tid = b.special(SpecialReg::TidX);
        let low = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
        let other = b.new_label();
        let join = b.new_label();
        b.bra_unless(low, other);
        b.bar(); // barrier site A (lower warp)
        b.bra(join);
        b.place(other);
        b.bar(); // barrier site B (upper warp)
        b.place(join);
        b.ret();
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let err = run(&k, LaunchConfig::d1(1, 64), &[], &mut mem).unwrap_err();
        assert!(
            matches!(err, SimError::BarrierDivergence { .. }),
            "got {err:?}"
        );
    }

    /// A barrier some threads skip while others spin forever is caught by
    /// the watchdog (the lanes that skipped can never release it).
    #[test]
    fn barrier_plus_spin_hits_watchdog() {
        let mut b = KernelBuilder::new("spin_bar");
        let slot = b.alloc_shared(4, 4);
        let tid = b.special(SpecialReg::TidX);
        let low = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
        let waiter = b.new_label();
        b.bra_unless(low, waiter);
        b.bar(); // lower warp waits at the barrier...
        b.st_shared(
            Ty::I32,
            MemRef::direct(Value::U64(slot as u64)),
            Value::I32(1),
        );
        b.ret();
        b.place(waiter);
        // ...while the upper warp spins on a flag only set after the barrier.
        let top = b.new_label();
        b.place(top);
        let v = b.ld_shared(Ty::I32, MemRef::direct(Value::U64(slot as u64)));
        let unset = b.cmp(CmpOp::Eq, Ty::I32, v, Value::I32(0));
        b.bra_if(unset, top);
        b.ret();
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let cost = CostModel {
            watchdog_warp_insts: 50_000,
            ..Default::default()
        };
        let err =
            run_kernel(&k, LaunchConfig::d1(1, 64), &[], &mut mem, &dev(), &cost).unwrap_err();
        assert!(matches!(err, SimError::Watchdog { .. }), "got {err:?}");
    }

    /// Threads that exited don't block a barrier (CUDA semantics).
    #[test]
    fn exited_threads_release_barrier() {
        let mut b = KernelBuilder::new("exit_bar");
        let tid = b.special(SpecialReg::TidX);
        let low = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
        let cont = b.new_label();
        b.bra_if(low, cont);
        b.ret(); // upper warp exits
        b.place(cont);
        b.bar(); // lower warp syncs among survivors
        b.ret();
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        run(&k, LaunchConfig::d1(1, 64), &[], &mut mem).unwrap();
    }

    /// Watchdog catches infinite loops.
    #[test]
    fn watchdog_fires() {
        let mut b = KernelBuilder::new("spin");
        let top = b.new_label();
        b.place(top);
        b.bra(top);
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let cost = CostModel {
            watchdog_warp_insts: 10_000,
            ..Default::default()
        };
        let err =
            run_kernel(&k, LaunchConfig::d1(1, 32), &[], &mut mem, &dev(), &cost).unwrap_err();
        assert!(matches!(err, SimError::Watchdog { .. }));
    }

    #[test]
    fn atomics_accumulate_across_all_threads() {
        let mut b = KernelBuilder::new("atom");
        let out = b.param(0);
        b.atom_global(
            AtomOp::Add,
            Ty::I32,
            MemRef::direct(out),
            Value::I32(1),
            false,
        );
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let buf = mem.alloc(4).unwrap();
        let stats = run(
            &k,
            LaunchConfig::d1(4, 64),
            &[Value::U64(buf.addr)],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read(Ty::I32, buf.addr).unwrap(), Value::I32(256));
        assert_eq!(stats.atomics, 4 * 2); // one per warp
    }

    #[test]
    fn launch_validation() {
        let k = KernelBuilder::new("t").finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let err = run(&k, LaunchConfig::d1(1, 2048), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
        let err = run(&k, LaunchConfig::d1(0, 32), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
    }

    /// A malformed device config is rejected at launch, not silently
    /// mismodelled.
    #[test]
    fn bad_device_config_rejected_at_launch() {
        let k = KernelBuilder::new("t").finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let bad = DeviceConfig {
            segment_bytes: 100,
            ..DeviceConfig::test_small()
        };
        let err = run_kernel(
            &k,
            LaunchConfig::d1(1, 32),
            &[],
            &mut mem,
            &bad,
            &CostModel::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }), "got {err:?}");
    }

    #[test]
    fn missing_params_rejected() {
        let mut b = KernelBuilder::new("p");
        let p = b.param(2);
        let _ = p;
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let err = run(&k, LaunchConfig::d1(1, 32), &[Value::I32(0)], &mut mem).unwrap_err();
        assert!(matches!(
            err,
            SimError::BadParams {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn shared_overflow_rejected() {
        let mut b = KernelBuilder::new("s");
        let _ = b.alloc_shared(100 * 1024, 8);
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let err = run(&k, LaunchConfig::d1(1, 32), &[], &mut mem).unwrap_err();
        assert!(matches!(err, SimError::SharedMemExceeded { .. }));
    }

    #[test]
    fn division_by_zero_reported() {
        let mut b = KernelBuilder::new("dz");
        let z = b.mov_imm(Value::I32(0));
        let _ = b.bin(BinOp::Div, Ty::I32, Value::I32(1), z);
        let k = b.finish();
        let mut mem = GlobalMemory::new(1 << 20);
        let err = run(&k, LaunchConfig::d1(1, 32), &[], &mut mem).unwrap_err();
        assert_eq!(err, SimError::DivisionByZero);
    }

    #[test]
    fn eval_bin_int_semantics() {
        assert_eq!(
            eval_bin(BinOp::Add, Ty::I32, Value::I32(i32::MAX), Value::I32(1)).unwrap(),
            Value::I32(i32::MIN)
        );
        assert_eq!(
            eval_bin(BinOp::Max, Ty::I32, Value::I32(-5), Value::I32(3)).unwrap(),
            Value::I32(3)
        );
        assert_eq!(
            eval_bin(BinOp::Min, Ty::F64, Value::F64(-5.0), Value::F64(3.0)).unwrap(),
            Value::F64(-5.0)
        );
        assert!(eval_bin(BinOp::And, Ty::F32, Value::F32(1.0), Value::F32(2.0)).is_err());
        assert_eq!(
            eval_bin(BinOp::And, Ty::Pred, Value::Pred(true), Value::Pred(false)).unwrap(),
            Value::Pred(false)
        );
    }

    #[test]
    fn eval_cmp_nan_semantics() {
        assert!(!eval_cmp(
            CmpOp::Lt,
            Ty::F64,
            Value::F64(f64::NAN),
            Value::F64(1.0)
        ));
        assert!(eval_cmp(
            CmpOp::Ne,
            Ty::F64,
            Value::F64(f64::NAN),
            Value::F64(f64::NAN)
        ));
        assert!(!eval_cmp(
            CmpOp::Eq,
            Ty::F64,
            Value::F64(f64::NAN),
            Value::F64(f64::NAN)
        ));
        assert!(eval_cmp(CmpOp::Le, Ty::I32, Value::I32(3), Value::I32(3)));
    }

    #[test]
    fn eval_un_semantics() {
        assert_eq!(
            eval_un(UnOp::Abs, Ty::F64, Value::F64(-2.5)).unwrap(),
            Value::F64(2.5)
        );
        assert_eq!(
            eval_un(UnOp::Neg, Ty::I32, Value::I32(7)).unwrap(),
            Value::I32(-7)
        );
        assert_eq!(
            eval_un(UnOp::Sqrt, Ty::F32, Value::F32(4.0)).unwrap(),
            Value::F32(2.0)
        );
        assert_eq!(
            eval_un(UnOp::Not, Ty::Pred, Value::Pred(false)).unwrap(),
            Value::Pred(true)
        );
        assert!(eval_un(UnOp::Sqrt, Ty::I32, Value::I32(4)).is_err());
    }

    /// Timing model: the same work on more SMs takes fewer cycles.
    #[test]
    fn more_sms_is_faster() {
        let mut b = KernelBuilder::new("work");
        let acc = b.mov_imm(Value::I32(0));
        let i = b.mov_imm(Value::I32(0));
        let top = b.new_label();
        let done = b.new_label();
        b.place(top);
        let c = b.cmp(CmpOp::Ge, Ty::I32, i, Value::I32(100));
        b.bra_if(c, done);
        b.bin_to(acc, BinOp::Add, Ty::I32, acc, i);
        b.bin_to(i, BinOp::Add, Ty::I32, i, Value::I32(1));
        b.bra(top);
        b.place(done);
        let k = b.finish();
        let cost = CostModel::default();
        let mut mem1 = GlobalMemory::new(1 << 20);
        let d1 = DeviceConfig {
            num_sms: 1,
            ..DeviceConfig::test_small()
        };
        let s1 = run_kernel(&k, LaunchConfig::d1(8, 32), &[], &mut mem1, &d1, &cost).unwrap();
        let mut mem2 = GlobalMemory::new(1 << 20);
        let d8 = DeviceConfig {
            num_sms: 8,
            ..DeviceConfig::test_small()
        };
        let s8 = run_kernel(&k, LaunchConfig::d1(8, 32), &[], &mut mem2, &d8, &cost).unwrap();
        assert!(s8.cycles < s1.cycles);
    }

    // ---- parallel block execution ----------------------------------------

    /// An independent-blocks kernel for determinism tests: each thread
    /// writes a value derived from its global id.
    fn ids_kernel() -> Kernel {
        let mut b = KernelBuilder::new("ids");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let ntid = b.special(SpecialReg::NTidX);
        let base = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        let gid = b.bin(BinOp::Add, Ty::I32, base, tid);
        let v = b.bin(BinOp::Mul, Ty::I32, gid, Value::I32(3));
        let gid64 = b.cvt(Ty::I64, gid);
        b.st_global(Ty::I32, MemRef::indexed(out, gid64, 4), v);
        b.finish()
    }

    /// Parallel execution is bit-identical to sequential: same memory
    /// contents and the exact same [`LaunchStats`] (cycles included).
    #[test]
    fn parallel_matches_sequential_bitwise() {
        let k = ids_kernel();
        let cfg = LaunchConfig::d1(7, 96); // odd block count, multi-warp blocks
        let mut mem_seq = GlobalMemory::new(1 << 20);
        let buf_seq = mem_seq.alloc(4 * 7 * 96).unwrap();
        let seq = run_threads(&k, cfg, &[Value::U64(buf_seq.addr)], &mut mem_seq, 1).unwrap();
        for threads in [2, 3, 8] {
            let mut mem_par = GlobalMemory::new(1 << 20);
            let buf = mem_par.alloc(4 * 7 * 96).unwrap();
            let par = run_threads(&k, cfg, &[Value::U64(buf.addr)], &mut mem_par, threads).unwrap();
            assert_eq!(seq, par, "stats diverge at {threads} threads");
            assert_eq!(
                dump(&mem_seq),
                dump(&mem_par),
                "memory diverges at {threads} threads"
            );
        }
    }

    /// Cross-block floating-point atomics commit in block-id order, so the
    /// (rounding-sensitive) result is bit-identical at any thread count.
    #[test]
    fn parallel_float_atomics_are_order_deterministic() {
        let mut b = KernelBuilder::new("fatom");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let ntid = b.special(SpecialReg::NTidX);
        let base = b.bin(BinOp::Mul, Ty::I32, ctaid, ntid);
        let gid = b.bin(BinOp::Add, Ty::I32, base, tid);
        let gf = b.cvt(Ty::F32, gid);
        let v = b.bin(BinOp::Div, Ty::F32, gf, Value::F32(3.0));
        b.atom_global(AtomOp::Add, Ty::F32, MemRef::direct(out), v, false);
        let k = b.finish();
        let cfg = LaunchConfig::d1(6, 64);

        let mut mem_seq = GlobalMemory::new(1 << 20);
        let buf_seq = mem_seq.alloc(4).unwrap();
        run_threads(&k, cfg, &[Value::U64(buf_seq.addr)], &mut mem_seq, 1).unwrap();
        let want = mem_seq.read(Ty::F32, buf_seq.addr).unwrap();
        for threads in [2, 5] {
            let mut mem_par = GlobalMemory::new(1 << 20);
            let buf = mem_par.alloc(4).unwrap();
            run_threads(&k, cfg, &[Value::U64(buf.addr)], &mut mem_par, threads).unwrap();
            // Bitwise comparison: Value::F32 PartialEq compares the floats,
            // which is exactly the determinism claim (no NaN involved).
            assert_eq!(want, mem_par.read(Ty::F32, buf.addr).unwrap());
        }
    }

    /// A launch where one block reads what an earlier block wrote triggers
    /// the commit-time divergence check and silently falls back to the
    /// sequential path — results match sequential execution exactly.
    #[test]
    fn parallel_cross_block_raw_falls_back() {
        let mut b = KernelBuilder::new("raw");
        let flag = b.param(0);
        let out = b.param(1);
        // v = flag[0]; out[ctaid] = v; if ctaid == 0 { flag[0] = 99 }
        let v = b.ld_global(Ty::I32, MemRef::direct(flag));
        let ctaid = b.special(SpecialReg::CtaIdX);
        let cta64 = b.cvt(Ty::I64, ctaid);
        b.st_global(Ty::I32, MemRef::indexed(out, cta64, 4), v);
        let is0 = b.cmp(CmpOp::Eq, Ty::I32, ctaid, Value::I32(0));
        let skip = b.new_label();
        b.bra_unless(is0, skip);
        b.st_global(Ty::I32, MemRef::direct(flag), Value::I32(99));
        b.place(skip);
        b.ret();
        let k = b.finish();
        let cfg = LaunchConfig::d1(4, 32);

        let mk = || {
            let mut m = GlobalMemory::new(1 << 20);
            let f = m.alloc(4).unwrap();
            let o = m.alloc(4 * 4).unwrap();
            (m, f, o)
        };
        let (mut mem_seq, f1, o1) = mk();
        run_threads(
            &k,
            cfg,
            &[Value::U64(f1.addr), Value::U64(o1.addr)],
            &mut mem_seq,
            1,
        )
        .unwrap();
        // Sequential semantics: block 0 reads 0 then sets the flag; later
        // blocks observe 99.
        assert_eq!(mem_seq.read(Ty::I32, o1.addr).unwrap(), Value::I32(0));
        assert_eq!(mem_seq.read(Ty::I32, o1.addr + 4).unwrap(), Value::I32(99));
        let (mut mem_par, f2, o2) = mk();
        run_threads(
            &k,
            cfg,
            &[Value::U64(f2.addr), Value::U64(o2.addr)],
            &mut mem_par,
            4,
        )
        .unwrap();
        assert_eq!(dump(&mem_seq), dump(&mem_par));
    }

    /// Multi-block failure is deterministic: the error is the lowest
    /// failing block's, and the committed partial state (earlier blocks
    /// complete, failing block partial, later blocks absent) matches the
    /// sequential executor byte for byte.
    #[test]
    fn parallel_error_matches_sequential_partial_state() {
        let mut b = KernelBuilder::new("err2");
        let out = b.param(0);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let one_based = b.bin(BinOp::Add, Ty::I32, ctaid, Value::I32(1));
        let cta64 = b.cvt(Ty::I64, ctaid);
        b.st_global(Ty::I32, MemRef::indexed(out, cta64, 4), one_based);
        // Block 2 divides by zero after its store.
        let is2 = b.cmp(CmpOp::Eq, Ty::I32, ctaid, Value::I32(2));
        let skip = b.new_label();
        b.bra_unless(is2, skip);
        let z = b.mov_imm(Value::I32(0));
        let _ = b.bin(BinOp::Div, Ty::I32, Value::I32(1), z);
        b.place(skip);
        b.ret();
        let k = b.finish();
        let cfg = LaunchConfig::d1(5, 32);

        let mut mem_seq = GlobalMemory::new(1 << 20);
        let b1 = mem_seq.alloc(4 * 5).unwrap();
        let err_seq = run_threads(&k, cfg, &[Value::U64(b1.addr)], &mut mem_seq, 1).unwrap_err();
        for threads in [2, 3, 8] {
            let mut mem_par = GlobalMemory::new(1 << 20);
            let b2 = mem_par.alloc(4 * 5).unwrap();
            let err_par =
                run_threads(&k, cfg, &[Value::U64(b2.addr)], &mut mem_par, threads).unwrap_err();
            assert_eq!(err_seq, err_par);
            assert_eq!(dump(&mem_seq), dump(&mem_par));
            // Blocks 0..=2 stored, blocks 3.. did not run.
            assert_eq!(mem_par.read(Ty::I32, b2.addr + 8).unwrap(), Value::I32(3));
            assert_eq!(mem_par.read(Ty::I32, b2.addr + 12).unwrap(), Value::I32(0));
        }
    }

    /// Value-returning atomics (`atomicAdd` with a destination register)
    /// observe commit order mid-block, so such kernels take the sequential
    /// path — and still produce correct results at any `host_threads`.
    #[test]
    fn parallel_returning_atomics_run_sequentially() {
        let mut b = KernelBuilder::new("ticket");
        let ctr = b.param(0);
        let out = b.param(1);
        let ticket = b
            .atom_global(
                AtomOp::Add,
                Ty::I32,
                MemRef::direct(ctr),
                Value::I32(1),
                true,
            )
            .expect("value-returning atomic");
        let t64 = b.cvt(Ty::I64, ticket);
        let gid = b.special(SpecialReg::CtaIdX);
        b.st_global(Ty::I32, MemRef::indexed(out, t64, 4), gid);
        let k = b.finish();
        assert!(kernel_returns_atomics(&k));
        let cfg = LaunchConfig::d1(4, 1);
        let mut mem = GlobalMemory::new(1 << 20);
        let c = mem.alloc(4).unwrap();
        let o = mem.alloc(4 * 4).unwrap();
        run_threads(
            &k,
            cfg,
            &[Value::U64(c.addr), Value::U64(o.addr)],
            &mut mem,
            8,
        )
        .unwrap();
        // Sequential ticket order: block i takes ticket i.
        for i in 0..4u64 {
            assert_eq!(
                mem.read(Ty::I32, o.addr + i * 4).unwrap(),
                Value::I32(i as i32)
            );
        }
        assert_eq!(mem.read(Ty::I32, c.addr).unwrap(), Value::I32(4));
    }

    /// Hazard reports are deduplicated per block and merged in block-id
    /// order, so the sanitizer's report list (order, text, and count) is
    /// identical at any thread count. The racy kernel here only *writes*
    /// cross-block, so the parallel path does not fall back — the reports
    /// come from genuinely parallel shadow tracking.
    #[test]
    fn parallel_sanitizer_reports_are_identical() {
        use crate::sanitizer::SanitizerLevel;
        // Every thread of every block writes out[tid] — cross-block
        // same-address conflicts at every slot.
        let mut b = KernelBuilder::new("racy");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaIdX);
        let tid64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, tid64, 4), ctaid);
        let k = b.finish();
        let cfg = LaunchConfig::d1(4, 32);

        let run_san = |threads: u32| {
            let mut mem = GlobalMemory::new(1 << 20);
            let buf = mem.alloc(4 * 32).unwrap();
            let mut s = LaunchSanitizer::new(SanitizerConfig {
                level: SanitizerLevel::Full,
                ..Default::default()
            });
            run_kernel_instrumented(
                &k,
                cfg,
                &[Value::U64(buf.addr)],
                &mut mem,
                &dev_threads(threads),
                &CostModel::default(),
                None,
                Some(&mut s),
                None,
            )
            .unwrap();
            (s.hazard_count(), s.take_reports(), dump(&mem))
        };
        let (count_seq, reports_seq, mem_seq) = run_san(1);
        assert!(count_seq > 0, "racy kernel must report hazards");
        for threads in [2, 4] {
            let (count, reports, mem) = run_san(threads);
            assert_eq!(count_seq, count);
            assert_eq!(reports_seq, reports);
            // Block-id-ordered dirty-byte commit: the last block's writes
            // win, exactly like sequential execution.
            assert_eq!(mem_seq, mem);
        }
    }

    /// Traces are captured per block and merged in block-id order, so a
    /// bounded trace is event-for-event identical at any thread count —
    /// including the truncation point.
    #[test]
    fn parallel_traces_are_identical() {
        let k = ids_kernel();
        let cfg = LaunchConfig::d1(4, 32);
        let run_traced = |threads: u32| {
            let mut mem = GlobalMemory::new(1 << 20);
            let buf = mem.alloc(4 * 4 * 32).unwrap();
            let mut t = Trace::with_limit(11); // truncates mid-block
            run_kernel_traced(
                &k,
                cfg,
                &[Value::U64(buf.addr)],
                &mut mem,
                &dev_threads(threads),
                &CostModel::default(),
                Some(&mut t),
            )
            .unwrap();
            t
        };
        let seq = run_traced(1);
        assert!(seq.truncated());
        for threads in [2, 4] {
            let par = run_traced(threads);
            assert_eq!(seq.events(), par.events());
            assert_eq!(seq.truncated(), par.truncated());
            assert_eq!(seq.render(), par.render());
        }
    }
}
