//! # redcert — symbolic translation validation for compiled kernels
//!
//! This module is the kernel-side half of the per-region translation
//! validator (`uhacc-cc --certify`): a **symbolic executor** over
//! [`crate::ir`] that runs a compiled kernel at small concrete launch
//! dimensions with *symbolic array contents*, folding every thread's
//! contribution into a canonical term. The source-side half (the
//! reference interpreter over the analyzed HIR) lives in
//! `uhacc-core::cert`; both sides build terms in **one shared
//! [`TermPool`]**, so proving the kernel correct reduces to comparing
//! `TermId`s at the observable boundary (host scalars + copied-out
//! array cells).
//!
//! ## Abstract domain
//!
//! A symbolic value ([`SVal`]) is either a concrete [`Value`] (scalars,
//! loop bounds and addresses are always concrete) or a reference into
//! the hash-consed term pool. Terms are:
//!
//! - `Input(region, offset, ty)` — an unknown array cell,
//! - `Bin` / `Cmp` / `Un` / `Sel` / `Cvt` — mirroring the interpreter's
//!   conversion semantics exactly (operands are converted to the
//!   operation type first, like [`crate::exec::eval_bin`]),
//! - `Fold(op, ty, args)` — an **n-ary, TermId-sorted multiset** for the
//!   flattenable commutative-associative operations
//!   (`add/mul/min/max/and/or/xor`). Nested same-op/same-ty folds are
//!   spliced, so any reassociation/commutation of the same multiset of
//!   contributions canonicalizes to the same term.
//!
//! Integer folds merge concrete contributions eagerly (integer ops are
//! exactly associative, so the merged constant is bit-faithful); the
//! merged constant is dropped only when bit-equal to the operation's
//! true neutral element. **Float folds never merge constants** — each
//! concrete contribution stays a distinct `Num` argument — because
//! reassociating a concrete float sum would change its bits; a verdict
//! that still matches is reported as *certified modulo reassociation*.
//!
//! ## Soundness
//!
//! The executor replicates the lockstep interpreter of [`crate::exec`]
//! (warps of 32, min-PC reconvergence, strict barrier rounds, ascending
//! block order) and **refuses** — verdict `Unknown` — on anything it
//! cannot model exactly: symbolic branch conditions, symbolic
//! addresses, value-returning atomics, barrier divergence, data races
//! (detected with an epoch-based per-cell log), uninitialized reads,
//! or exhausted step/term budgets. It never guesses: a `Certified`
//! verdict means every observable is the *same term* as the reference,
//! which for integer folds implies bit-identical results and for float
//! folds implies value equality modulo IEEE reassociation (and signed
//! zeros).

use std::collections::HashMap;

use crate::exec::{eval_bin, eval_cmp, eval_un, mref_addr, LaunchConfig};
use crate::ir::{
    format_imm, AtomOp, BinOp, CmpOp, Inst, Kernel, MemRef, Operand, SpecialReg, UnOp,
};
use crate::types::{Ty, Value};

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

/// Index of a term in a [`TermPool`]. Equal ids ⇔ structurally equal terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A concrete value keyed by its bit pattern (hashable; `-0.0` and `+0.0`
/// stay distinct, NaNs compare by their canonicalized payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NumBits {
    pub ty: Ty,
    pub bits: u64,
}

impl NumBits {
    pub fn of(v: Value) -> NumBits {
        let (buf, _) = v.to_bytes();
        NumBits {
            ty: v.ty(),
            bits: u64::from_le_bytes(buf),
        }
    }

    pub fn value(self) -> Value {
        Value::from_bytes(self.ty, &self.bits.to_le_bytes())
    }
}

/// Bit-level equality of two concrete values (same type, same bytes).
pub fn bit_eq(a: Value, b: Value) -> bool {
    a.ty() == b.ty() && NumBits::of(a).bits == NumBits::of(b).bits
}

/// A node in the shared term algebra. See the module docs for the domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A concrete constant embedded in a composite term.
    Num(NumBits),
    /// Symbolic initial contents of one array cell.
    Input {
        region: u32,
        off: u64,
        ty: Ty,
    },
    /// A schedule-dependent value (racy read, or a read of a cell whose
    /// contents depend on an unordered cross-warp write). Each has a
    /// unique id so distinct races never compare equal; certification of
    /// any observable containing one degrades to `Unknown`.
    Poison {
        id: u32,
        ty: Ty,
    },
    Un {
        op: UnOp,
        ty: Ty,
        a: TermId,
    },
    Bin {
        op: BinOp,
        ty: Ty,
        a: TermId,
        b: TermId,
    },
    Cmp {
        op: CmpOp,
        ty: Ty,
        a: TermId,
        b: TermId,
    },
    Sel {
        cond: TermId,
        a: TermId,
        b: TermId,
    },
    Cvt {
        ty: Ty,
        a: TermId,
    },
    /// N-ary fold of a flattenable op; `args` is sorted by `TermId` and
    /// holds at most one `Num` for integer folds (the merged constant).
    Fold {
        op: BinOp,
        ty: Ty,
        args: Vec<TermId>,
    },
}

/// A symbolic value: concrete, or a term in the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SVal {
    C(Value),
    T(TermId),
}

/// Structural equality of two symbolic values (bitwise for concretes).
pub fn sval_eq(a: SVal, b: SVal) -> bool {
    match (a, b) {
        (SVal::C(x), SVal::C(y)) => bit_eq(x, y),
        (SVal::T(x), SVal::T(y)) => x == y,
        _ => false,
    }
}

/// True for the ops whose folds the canonicalizer may flatten (the
/// commutative-associative reduction operators of the paper's Table 1).
pub fn flattenable(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// The true (bit-level) neutral element of `op` at `ty`, when one exists.
pub fn fold_neutral(op: BinOp, ty: Ty) -> Option<Value> {
    match (op, ty) {
        (BinOp::Add, _) => Some(Value::zero(ty)),
        (BinOp::Mul, Ty::I32) => Some(Value::I32(1)),
        (BinOp::Mul, Ty::I64) => Some(Value::I64(1)),
        (BinOp::Mul, Ty::U64) => Some(Value::U64(1)),
        (BinOp::Mul, Ty::F32) => Some(Value::F32(1.0)),
        (BinOp::Mul, Ty::F64) => Some(Value::F64(1.0)),
        (BinOp::Min, Ty::I32) => Some(Value::I32(i32::MAX)),
        (BinOp::Min, Ty::I64) => Some(Value::I64(i64::MAX)),
        (BinOp::Min, Ty::U64) => Some(Value::U64(u64::MAX)),
        (BinOp::Min, Ty::F32) => Some(Value::F32(f32::INFINITY)),
        (BinOp::Min, Ty::F64) => Some(Value::F64(f64::INFINITY)),
        (BinOp::Max, Ty::I32) => Some(Value::I32(i32::MIN)),
        (BinOp::Max, Ty::I64) => Some(Value::I64(i64::MIN)),
        (BinOp::Max, Ty::U64) => Some(Value::U64(0)),
        (BinOp::Max, Ty::F32) => Some(Value::F32(f32::NEG_INFINITY)),
        (BinOp::Max, Ty::F64) => Some(Value::F64(f64::NEG_INFINITY)),
        (BinOp::And, Ty::I32) => Some(Value::I32(-1)),
        (BinOp::And, Ty::I64) => Some(Value::I64(-1)),
        (BinOp::And, Ty::U64) => Some(Value::U64(u64::MAX)),
        (BinOp::And, Ty::Pred) => Some(Value::Pred(true)),
        (BinOp::Or, Ty::I32) | (BinOp::Xor, Ty::I32) => Some(Value::I32(0)),
        (BinOp::Or, Ty::I64) | (BinOp::Xor, Ty::I64) => Some(Value::I64(0)),
        (BinOp::Or, Ty::U64) | (BinOp::Xor, Ty::U64) => Some(Value::U64(0)),
        (BinOp::Or, Ty::Pred) | (BinOp::Xor, Ty::Pred) => Some(Value::Pred(false)),
        _ => None,
    }
}

#[derive(Debug, Clone, Copy)]
struct TermMeta {
    ty: Ty,
    /// Known to evaluate to 0 or 1 (predicates, comparisons, normalized
    /// logical values) — enables the `sel(cmp-ne-0, 1, 0)` elision.
    boolish: bool,
    /// Contains a float-typed fold somewhere below (forces the
    /// "modulo reassociation" qualifier on a matching verdict).
    float_fold: bool,
    /// Contains a `Poison` leaf somewhere below (a race reached this
    /// value); such a term can never certify.
    poisoned: bool,
}

/// Hash-consing pool shared by the kernel-side executor and the
/// source-side reference interpreter. All smart constructors live here so
/// both sides canonicalize identically.
#[derive(Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    meta: Vec<TermMeta>,
    index: HashMap<Term, TermId>,
    poison_msgs: Vec<String>,
}

impl TermPool {
    pub fn new() -> TermPool {
        TermPool::default()
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn term(&self, t: TermId) -> &Term {
        &self.terms[t.0 as usize]
    }

    pub fn ty_of(&self, t: TermId) -> Ty {
        self.meta[t.0 as usize].ty
    }

    /// True when the term (or a subterm) is a float-typed fold.
    pub fn has_float_fold(&self, t: TermId) -> bool {
        self.meta[t.0 as usize].float_fold
    }

    pub fn sval_float_fold(&self, v: SVal) -> bool {
        match v {
            SVal::C(_) => false,
            SVal::T(t) => self.has_float_fold(t),
        }
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let meta = self.meta_of(&t);
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.meta.push(meta);
        self.index.insert(t, id);
        id
    }

    fn meta_of(&self, t: &Term) -> TermMeta {
        let m = |id: TermId| self.meta[id.0 as usize];
        match t {
            Term::Num(nb) => TermMeta {
                ty: nb.ty,
                boolish: match nb.value() {
                    Value::Pred(_) => true,
                    Value::I32(v) => v == 0 || v == 1,
                    Value::I64(v) => v == 0 || v == 1,
                    Value::U64(v) => v == 0 || v == 1,
                    _ => false,
                },
                float_fold: false,
                poisoned: false,
            },
            Term::Input { ty, .. } => TermMeta {
                ty: *ty,
                boolish: false,
                float_fold: false,
                poisoned: false,
            },
            Term::Poison { ty, .. } => TermMeta {
                ty: *ty,
                boolish: false,
                float_fold: false,
                poisoned: true,
            },
            Term::Un { op, ty, a } => TermMeta {
                ty: *ty,
                boolish: *op == UnOp::Not && *ty == Ty::Pred,
                float_fold: m(*a).float_fold,
                poisoned: m(*a).poisoned,
            },
            Term::Bin { ty, a, b, .. } => TermMeta {
                ty: *ty,
                boolish: false,
                float_fold: m(*a).float_fold || m(*b).float_fold,
                poisoned: m(*a).poisoned || m(*b).poisoned,
            },
            Term::Cmp { a, b, .. } => TermMeta {
                ty: Ty::Pred,
                boolish: true,
                float_fold: m(*a).float_fold || m(*b).float_fold,
                poisoned: m(*a).poisoned || m(*b).poisoned,
            },
            Term::Sel { cond, a, b } => TermMeta {
                ty: m(*a).ty,
                boolish: m(*a).boolish && m(*b).boolish,
                float_fold: m(*cond).float_fold || m(*a).float_fold || m(*b).float_fold,
                poisoned: m(*cond).poisoned || m(*a).poisoned || m(*b).poisoned,
            },
            Term::Cvt { ty, a } => TermMeta {
                ty: *ty,
                boolish: m(*a).boolish,
                float_fold: m(*a).float_fold,
                poisoned: m(*a).poisoned,
            },
            Term::Fold { op, ty, args } => TermMeta {
                ty: *ty,
                boolish: matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
                    && args.iter().all(|&a| m(a).boolish),
                float_fold: ty.is_float() || args.iter().any(|&a| m(a).float_fold),
                poisoned: args.iter().any(|&a| m(a).poisoned),
            },
        }
    }

    fn num(&mut self, v: Value) -> TermId {
        self.intern(Term::Num(NumBits::of(v)))
    }

    /// Symbolic input leaf for one array cell.
    pub fn input(&mut self, region: u32, off: u64, ty: Ty) -> TermId {
        self.intern(Term::Input { region, off, ty })
    }

    /// A fresh poison leaf for a schedule-dependent value. `msg` records
    /// the race that created it; [`TermPool::sval_poison`] recovers the
    /// message of the first poison leaf inside a term.
    pub fn poison(&mut self, ty: Ty, msg: String) -> SVal {
        let id = self.poison_msgs.len() as u32;
        self.poison_msgs.push(msg);
        SVal::T(self.intern(Term::Poison { id, ty }))
    }

    /// The race message of the first poison leaf in `v`, if any. A
    /// poisoned observable can never certify: its value depends on the
    /// warp schedule, which the validator does not enumerate.
    pub fn sval_poison(&self, v: SVal) -> Option<String> {
        let SVal::T(root) = v else { return None };
        if !self.meta[root.0 as usize].poisoned {
            return None;
        }
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            if !self.meta[t.0 as usize].poisoned {
                continue;
            }
            match &self.terms[t.0 as usize] {
                Term::Poison { id, .. } => return Some(self.poison_msgs[*id as usize].clone()),
                Term::Num(_) | Term::Input { .. } => {}
                Term::Un { a, .. } | Term::Cvt { a, .. } => stack.push(*a),
                Term::Bin { a, b, .. } | Term::Cmp { a, b, .. } => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Term::Sel { cond, a, b } => {
                    stack.push(*cond);
                    stack.push(*a);
                    stack.push(*b);
                }
                Term::Fold { args, .. } => stack.extend(args.iter().copied()),
            }
        }
        None
    }

    /// A term id for any symbolic value (constants become `Num` nodes).
    pub fn term_of(&mut self, v: SVal) -> TermId {
        match v {
            SVal::C(x) => self.num(x),
            SVal::T(t) => t,
        }
    }

    /// Convert `v` to `ty`, mirroring `Value::convert` for concretes and
    /// wrapping symbolic values in a `Cvt` node (elided when the type
    /// already matches; chains through boolish values collapse, since a
    /// 0/1 survives any numeric round-trip into an integer type).
    pub fn coerce(&mut self, v: SVal, ty: Ty) -> SVal {
        match v {
            SVal::C(x) => SVal::C(x.convert(ty)),
            SVal::T(t) => {
                if self.ty_of(t) == ty {
                    return SVal::T(t);
                }
                let mut src = t;
                if !ty.is_float() {
                    while let Term::Cvt { a, .. } = self.terms[src.0 as usize] {
                        if self.meta[a.0 as usize].boolish {
                            src = a;
                        } else {
                            break;
                        }
                    }
                    if self.ty_of(src) == ty {
                        return SVal::T(src);
                    }
                }
                SVal::T(self.intern(Term::Cvt { ty, a: src }))
            }
        }
    }

    fn atom(&mut self, v: SVal, ty: Ty) -> TermId {
        let cv = self.coerce(v, ty);
        self.term_of(cv)
    }

    /// Splice `v` (coerced to `ty`) into a fold's contribution lists.
    fn fold_contrib(
        &mut self,
        op: BinOp,
        ty: Ty,
        v: SVal,
        consts: &mut Vec<Value>,
        args: &mut Vec<TermId>,
    ) {
        match self.coerce(v, ty) {
            SVal::C(x) => consts.push(x),
            SVal::T(t) => {
                if let Term::Fold {
                    op: fo,
                    ty: ft,
                    args: fa,
                } = &self.terms[t.0 as usize]
                {
                    if *fo == op && *ft == ty {
                        for x in fa.clone() {
                            if let Term::Num(nb) = self.terms[x.0 as usize] {
                                consts.push(nb.value());
                            } else {
                                args.push(x);
                            }
                        }
                        return;
                    }
                }
                args.push(t);
            }
        }
    }

    /// `a <op> b` at `ty` with the interpreter's conversion semantics.
    /// Flattenable ops canonicalize into sorted n-ary folds.
    pub fn v_bin(&mut self, op: BinOp, ty: Ty, a: SVal, b: SVal) -> Result<SVal, String> {
        let flat = flattenable(op);
        if let (SVal::C(x), SVal::C(y)) = (a, b) {
            if !flat || !ty.is_float() {
                return eval_bin(op, ty, x, y)
                    .map(SVal::C)
                    .map_err(|e| format!("concrete {op} at {ty:?} failed: {e}"));
            }
        }
        if !flat {
            if matches!(op, BinOp::Div | BinOp::Rem) && !ty.is_float() {
                if let SVal::C(y) = b {
                    if y.convert(ty).as_i64() == 0 {
                        return Err(format!("{op} by zero"));
                    }
                }
            }
            let ai = self.atom(a, ty);
            let bi = self.atom(b, ty);
            return Ok(SVal::T(self.intern(Term::Bin {
                op,
                ty,
                a: ai,
                b: bi,
            })));
        }
        // Fold canonicalization.
        let mut consts: Vec<Value> = Vec::new();
        let mut args: Vec<TermId> = Vec::new();
        self.fold_contrib(op, ty, a, &mut consts, &mut args);
        self.fold_contrib(op, ty, b, &mut consts, &mut args);
        let neutral = fold_neutral(op, ty);
        if ty.is_float() {
            // Keep float constants as distinct multiset elements: merging
            // them would commit to one association order. Only exact
            // neutral bits are dropped.
            for c in consts {
                if !neutral.is_some_and(|n| bit_eq(c, n)) {
                    let id = self.num(c);
                    args.push(id);
                }
            }
            if args.is_empty() {
                return Ok(SVal::C(neutral.expect("float fold has a neutral")));
            }
        } else {
            let mut merged: Option<Value> = None;
            for c in consts {
                merged = Some(match merged {
                    None => c,
                    Some(m) => eval_bin(op, ty, m, c)
                        .map_err(|e| format!("concrete {op} at {ty:?} failed: {e}"))?,
                });
            }
            if let Some(m) = merged {
                if args.is_empty() {
                    return Ok(SVal::C(m));
                }
                if !neutral.is_some_and(|n| bit_eq(m, n)) {
                    let id = self.num(m);
                    args.push(id);
                }
            }
        }
        args.sort_unstable();
        if args.len() == 1 {
            if let Term::Num(nb) = self.terms[args[0].0 as usize] {
                return Ok(SVal::C(nb.value()));
            }
            return Ok(SVal::T(args[0]));
        }
        Ok(SVal::T(self.intern(Term::Fold { op, ty, args })))
    }

    /// `a <cmp> b` at `ty` → predicate. Mirrors the `Inst::Cmp` arm:
    /// both operands are converted to `ty` before comparing.
    pub fn v_cmp(&mut self, op: CmpOp, ty: Ty, a: SVal, b: SVal) -> Result<SVal, String> {
        if let (SVal::C(x), SVal::C(y)) = (a, b) {
            return Ok(SVal::C(Value::Pred(eval_cmp(
                op,
                ty,
                x.convert(ty),
                y.convert(ty),
            ))));
        }
        let ai = self.atom(a, ty);
        let bi = self.atom(b, ty);
        Ok(SVal::T(self.intern(Term::Cmp {
            op,
            ty,
            a: ai,
            b: bi,
        })))
    }

    /// `<op> a` at `ty`, mirroring `eval_un` (which converts internally).
    pub fn v_un(&mut self, op: UnOp, ty: Ty, a: SVal) -> Result<SVal, String> {
        if let SVal::C(x) = a {
            return eval_un(op, ty, x)
                .map(SVal::C)
                .map_err(|e| format!("concrete {op} at {ty:?} failed: {e}"));
        }
        match op {
            UnOp::Sqrt if !ty.is_float() => return Err("sqrt at integer type".into()),
            UnOp::Not if ty.is_float() => return Err("not at float type".into()),
            UnOp::Neg | UnOp::Abs if ty == Ty::Pred => {
                return Err(format!("{op} at predicate type"))
            }
            _ => {}
        }
        let ai = self.atom(a, ty);
        Ok(SVal::T(self.intern(Term::Un { op, ty, a: ai })))
    }

    /// `cond ? a : b`; a concrete condition picks the arm *unconverted*
    /// (like `Inst::Select`). The canonical boolean normalization
    /// `sel(cmp.ne(x, 0), 1, 0)` with boolish `x` elides to `cvt(i32, x)`
    /// so re-normalizing an already-boolean value is the identity.
    pub fn v_sel(&mut self, cond: SVal, a: SVal, b: SVal) -> Result<SVal, String> {
        match cond {
            SVal::C(c) => Ok(if c.as_bool() { a } else { b }),
            SVal::T(ct) => {
                if let (SVal::C(av), SVal::C(bv)) = (a, b) {
                    if bit_eq(av, Value::I32(1)) && bit_eq(bv, Value::I32(0)) {
                        if let Term::Cmp {
                            op: CmpOp::Ne,
                            ty,
                            a: xa,
                            b: xb,
                        } = self.terms[ct.0 as usize]
                        {
                            let zero_rhs = matches!(
                                self.terms[xb.0 as usize],
                                Term::Num(nb) if bit_eq(nb.value(), Value::zero(ty))
                            );
                            if zero_rhs && self.meta[xa.0 as usize].boolish {
                                return Ok(self.coerce(SVal::T(xa), Ty::I32));
                            }
                        }
                    }
                }
                let ai = self.term_of(a);
                let bi = self.term_of(b);
                Ok(SVal::T(self.intern(Term::Sel {
                    cond: ct,
                    a: ai,
                    b: bi,
                })))
            }
        }
    }

    // -- rendering ----------------------------------------------------------

    /// Render a term for reports; `names[region]` labels input leaves.
    /// Deterministic, depth- and width-capped.
    pub fn render(&self, t: TermId, names: &[String]) -> String {
        self.render_depth(t, names, 0)
    }

    pub fn render_sval(&self, v: SVal, names: &[String]) -> String {
        match v {
            SVal::C(x) => format_imm(x),
            SVal::T(t) => self.render(t, names),
        }
    }

    fn render_depth(&self, t: TermId, names: &[String], depth: u32) -> String {
        if depth > 6 {
            return "…".into();
        }
        let name = |r: u32| -> String {
            names
                .get(r as usize)
                .cloned()
                .unwrap_or_else(|| format!("region{r}"))
        };
        match &self.terms[t.0 as usize] {
            Term::Num(nb) => format_imm(nb.value()),
            Term::Input { region, off, ty } => {
                format!("{}[{off}]:{ty}", name(*region))
            }
            Term::Poison { id, ty } => format!("poison#{id}:{ty}"),
            Term::Un { op, ty, a } => {
                format!("{op}.{ty}({})", self.render_depth(*a, names, depth + 1))
            }
            Term::Bin { op, ty, a, b } => format!(
                "({} {op}.{ty} {})",
                self.render_depth(*a, names, depth + 1),
                self.render_depth(*b, names, depth + 1)
            ),
            Term::Cmp { op, ty, a, b } => format!(
                "({} {op}.{ty} {})",
                self.render_depth(*a, names, depth + 1),
                self.render_depth(*b, names, depth + 1)
            ),
            Term::Sel { cond, a, b } => format!(
                "sel({}, {}, {})",
                self.render_depth(*cond, names, depth + 1),
                self.render_depth(*a, names, depth + 1),
                self.render_depth(*b, names, depth + 1)
            ),
            Term::Cvt { ty, a } => {
                format!("cvt.{ty}({})", self.render_depth(*a, names, depth + 1))
            }
            Term::Fold { op, ty, args } => {
                let shown: Vec<String> = args
                    .iter()
                    .take(8)
                    .map(|&a| self.render_depth(a, names, depth + 1))
                    .collect();
                let tail = if args.len() > 8 {
                    format!(", … (+{} more)", args.len() - 8)
                } else {
                    String::new()
                };
                format!("fold[{op}.{ty}]({}{tail})", shown.join(", "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic memory
// ---------------------------------------------------------------------------

/// Kind of a logged access, for the epoch-based race check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccKind {
    Read,
    Write,
    Atomic,
}

#[derive(Debug, Clone)]
struct Access {
    kind: AccKind,
    block: u32,
    warp: u32,
    epoch: u32,
    size: u8,
    written: Option<SVal>,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    ty: Ty,
    val: SVal,
    written: bool,
}

/// One global-memory region (an array or a compiler temp buffer) at a
/// fixed concrete base address, so kernel address arithmetic runs fully
/// concrete — exactly as in the real runner.
#[derive(Debug)]
pub struct Region {
    pub name: String,
    pub base: u64,
    pub size: u64,
    /// `Some(ty)` ⇒ input-backed: unwritten cells materialize as
    /// symbolic `Input` leaves of this element type.
    pub elem_ty: Option<Ty>,
    /// Races on this region are tolerated (the last-block-wins host
    /// mailbox, which the device executes deterministically).
    pub race_exempt: bool,
    cells: HashMap<u64, Cell>,
    log: HashMap<u64, Vec<Access>>,
}

const REGION_SHIFT: u32 = 32;
const REGION_OFF_MASK: u64 = (1u64 << REGION_SHIFT) - 1;

/// Symbolic global memory: regions at spaced concrete base addresses
/// (`base = (index + 1) << 32`), resolved back by range lookup.
#[derive(Debug, Default)]
pub struct SymMemory {
    regions: Vec<Region>,
}

impl SymMemory {
    pub fn new() -> SymMemory {
        SymMemory::default()
    }

    /// Allocate a region; returns its index. The base address is
    /// `(index + 1) << 32`.
    pub fn alloc(
        &mut self,
        name: &str,
        size: u64,
        elem_ty: Option<Ty>,
        race_exempt: bool,
    ) -> Result<u32, String> {
        if size > REGION_OFF_MASK {
            return Err(format!(
                "region `{name}` too large to certify ({size} bytes)"
            ));
        }
        let idx = self.regions.len() as u32;
        self.regions.push(Region {
            name: name.to_string(),
            base: ((idx as u64) + 1) << REGION_SHIFT,
            size,
            elem_ty,
            race_exempt,
            cells: HashMap::new(),
            log: HashMap::new(),
        });
        Ok(idx)
    }

    pub fn region(&self, idx: u32) -> &Region {
        &self.regions[idx as usize]
    }

    pub fn base(&self, idx: u32) -> u64 {
        self.regions[idx as usize].base
    }

    pub fn names(&self) -> Vec<String> {
        self.regions.iter().map(|r| r.name.clone()).collect()
    }

    /// Byte offsets of cells written by kernel stores/atomics.
    pub fn written_offsets(&self, idx: u32) -> Vec<u64> {
        let mut v: Vec<u64> = self.regions[idx as usize]
            .cells
            .iter()
            .filter(|(_, c)| c.written)
            .map(|(&o, _)| o)
            .collect();
        v.sort_unstable();
        v
    }

    /// Clear access logs between kernel launches (memory persists, the
    /// happens-before edge is the launch boundary).
    pub fn clear_logs(&mut self) {
        for r in &mut self.regions {
            r.log.clear();
        }
    }

    fn find(&self, addr: u64) -> Result<(u32, u64), String> {
        let idx = (addr >> REGION_SHIFT)
            .checked_sub(1)
            .ok_or_else(|| format!("access to unmapped address {addr:#x}"))?;
        let off = addr & REGION_OFF_MASK;
        match self.regions.get(idx as usize) {
            Some(r) if off < r.size => Ok((idx as u32, off)),
            _ => Err(format!("access to unmapped address {addr:#x}")),
        }
    }

    /// Seed a cell (buffer init / staged input) without logging.
    pub fn poke(&mut self, idx: u32, off: u64, v: Value) {
        let r = &mut self.regions[idx as usize];
        r.cells.insert(
            off,
            Cell {
                ty: v.ty(),
                val: SVal::C(v),
                written: false,
            },
        );
    }

    /// Read a cell without logging; `Ok(None)` means uninitialized.
    /// Input-backed regions materialize `Input` leaves.
    pub fn peek(
        &mut self,
        pool: &mut TermPool,
        idx: u32,
        off: u64,
        ty: Ty,
    ) -> Result<Option<SVal>, String> {
        let r = &mut self.regions[idx as usize];
        if !off.is_multiple_of(ty.size() as u64) || off + ty.size() as u64 > r.size {
            return Err(format!(
                "misaligned or out-of-bounds peek at {}+{off} ({ty})",
                r.name
            ));
        }
        if let Some(c) = r.cells.get(&off) {
            if c.ty.size() != ty.size() {
                return Err(format!(
                    "type-punned cell at {}+{off}: {} vs {ty}",
                    r.name, c.ty
                ));
            }
            return Ok(Some(c.val));
        }
        if let Some(et) = r.elem_ty {
            if et == ty {
                let t = pool.input(idx, off, ty);
                r.cells.insert(
                    off,
                    Cell {
                        ty,
                        val: SVal::T(t),
                        written: false,
                    },
                );
                return Ok(Some(SVal::T(t)));
            }
            return Err(format!(
                "element-type mismatch at {}+{off}: array is {et}, access is {ty}",
                r.name
            ));
        }
        Ok(None)
    }
}

fn conflicts(p: &Access, q: &Access, same_cell: bool) -> bool {
    if p.kind == AccKind::Read && q.kind == AccKind::Read {
        return false;
    }
    if p.kind == AccKind::Atomic && q.kind == AccKind::Atomic {
        return false;
    }
    if p.block == q.block && p.warp == q.warp {
        return false;
    }
    if p.block == q.block && p.epoch != q.epoch {
        return false;
    }
    if same_cell && p.kind == AccKind::Write && q.kind == AccKind::Write && p.size == q.size {
        // Redundant identical stores (duplicate-rows staging) are benign.
        if let (Some(a), Some(b)) = (p.written, q.written) {
            if sval_eq(a, b) {
                return false;
            }
        }
    }
    true
}

/// Log an access and check it against every overlapping prior access in
/// this launch. Max access size is 8 bytes, so scanning start offsets in
/// `[off-7, off+size)` covers all overlaps. A conflict does not abort
/// execution: the description is returned and the caller poisons the
/// value involved, so a race only blocks certification when the
/// schedule-dependent value actually reaches an observable (generated
/// kernels legitimately contain dead redundant reads — e.g. every
/// thread of a gang evaluating the gang-level body while only thread 0
/// publishes its accumulator).
fn log_access(
    log: &mut HashMap<u64, Vec<Access>>,
    where_: &str,
    off: u64,
    acc: Access,
) -> Option<String> {
    let mut race = None;
    for o in off.saturating_sub(7)..off + acc.size as u64 {
        if let Some(list) = log.get(&o) {
            for prev in list {
                if o + prev.size as u64 <= off {
                    continue; // prior access ends before ours starts
                }
                if conflicts(prev, &acc, o == off) {
                    race = Some(format!(
                        "data race on {where_}+{off}: {:?} by block {} warp {} epoch {} \
                         vs {:?} by block {} warp {} epoch {}",
                        prev.kind,
                        prev.block,
                        prev.warp,
                        prev.epoch,
                        acc.kind,
                        acc.block,
                        acc.warp,
                        acc.epoch
                    ));
                }
            }
        }
    }
    log.entry(off).or_default().push(acc);
    race
}

fn check_cell_overlap(
    cells: &HashMap<u64, Cell>,
    where_: &str,
    off: u64,
    size: u64,
) -> Result<(), String> {
    for o in off.saturating_sub(7)..off + size {
        if o == off {
            continue;
        }
        if let Some(c) = cells.get(&o) {
            if o + c.ty.size() as u64 > off {
                return Err(format!(
                    "overlapping typed cells at {where_}+{off} (existing cell at +{o})"
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Verdicts and reports
// ---------------------------------------------------------------------------

/// The four-point verdict lattice, ordered by severity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertVerdict {
    /// Every observable is the same term as the reference; for integer
    /// and exact-order operations this implies bit-identical results.
    Certified,
    /// Terms match but a float-typed fold is involved: value-equal
    /// modulo IEEE reassociation (and signed zeros).
    CertifiedModuloReassoc,
    /// The validator could not model the kernel (symbolic branch, race,
    /// budget, …). Never implies correctness.
    Unknown { reason: String },
    /// An observable provably differs from the reference; the witness
    /// renders both terms.
    Refuted { witness: String },
}

impl CertVerdict {
    pub fn severity(&self) -> u8 {
        match self {
            CertVerdict::Certified => 0,
            CertVerdict::CertifiedModuloReassoc => 1,
            CertVerdict::Unknown { .. } => 2,
            CertVerdict::Refuted { .. } => 3,
        }
    }

    /// Keep the worse of the two verdicts (first wins ties).
    pub fn merge(self, other: CertVerdict) -> CertVerdict {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// True for `Certified` and `CertifiedModuloReassoc`.
    pub fn is_certified(&self) -> bool {
        self.severity() <= 1
    }

    pub fn label(&self) -> &'static str {
        match self {
            CertVerdict::Certified => "certified",
            CertVerdict::CertifiedModuloReassoc => "certified-modulo-reassoc",
            CertVerdict::Unknown { .. } => "unknown",
            CertVerdict::Refuted { .. } => "refuted",
        }
    }
}

/// One compared observable (a host scalar or an array cell).
#[derive(Debug, Clone, PartialEq)]
pub struct CertObservable {
    pub name: String,
    pub verdict: CertVerdict,
}

/// The per-region certification report.
#[derive(Debug, Clone, PartialEq)]
pub struct CertReport {
    pub region: usize,
    pub kernel: String,
    pub dims: (u32, u32, u32),
    /// Source reduction triples `(var, op, identity)` from the accparse
    /// region summary.
    pub reductions: Vec<String>,
    pub verdict: CertVerdict,
    pub observables: Vec<CertObservable>,
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn verdict_json(v: &CertVerdict) -> String {
    let reason = match v {
        CertVerdict::Unknown { reason } => format!("\"{}\"", json_escape(reason)),
        _ => "null".into(),
    };
    let witness = match v {
        CertVerdict::Refuted { witness } => format!("\"{}\"", json_escape(witness)),
        _ => "null".into(),
    };
    format!(
        "\"verdict\":\"{}\",\"reason\":{reason},\"witness\":{witness}",
        v.label()
    )
}

impl CertReport {
    /// Byte-stable JSON object (schema v1; field order is fixed).
    pub fn to_json(&self) -> String {
        let mut obs = String::new();
        for (i, o) in self.observables.iter().enumerate() {
            if i > 0 {
                obs.push(',');
            }
            obs.push_str(&format!(
                "{{\"name\":\"{}\",{}}}",
                json_escape(&o.name),
                verdict_json(&o.verdict)
            ));
        }
        let reds = self
            .reductions
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"region\":{},\"kernel\":\"{}\",\"dims\":[{},{},{}],\"reductions\":[{reds}],{},\"observables\":[{obs}]}}",
            self.region,
            json_escape(&self.kernel),
            self.dims.0,
            self.dims.1,
            self.dims.2,
            verdict_json(&self.verdict)
        )
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let headline = match &self.verdict {
            CertVerdict::Certified => "CERTIFIED".to_string(),
            CertVerdict::CertifiedModuloReassoc => {
                "CERTIFIED (modulo FP reassociation)".to_string()
            }
            CertVerdict::Unknown { reason } => format!("UNKNOWN — {reason}"),
            CertVerdict::Refuted { witness } => format!("REFUTED — {witness}"),
        };
        let _ = writeln!(
            out,
            "redcert: region {} kernel `{}` dims {}x{}x{} — {headline}",
            self.region, self.kernel, self.dims.0, self.dims.1, self.dims.2
        );
        for r in &self.reductions {
            let _ = writeln!(out, "  reduction {r}");
        }
        for o in &self.observables {
            match &o.verdict {
                CertVerdict::Unknown { reason } => {
                    let _ = writeln!(out, "  {}: unknown — {reason}", o.name);
                }
                CertVerdict::Refuted { witness } => {
                    let _ = writeln!(out, "  {}: refuted — {witness}", o.name);
                }
                v => {
                    let _ = writeln!(out, "  {}: {}", o.name, v.label());
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Symbolic executor
// ---------------------------------------------------------------------------

/// Budgets for one region certification (all launches + reference run).
#[derive(Debug, Clone, Copy)]
pub struct CertConfig {
    /// Total symbolically executed instructions across all launches.
    pub max_steps: u64,
    /// Total threads per launch.
    pub max_threads: u64,
    /// Term-pool size cap.
    pub max_terms: u64,
}

impl Default for CertConfig {
    fn default() -> Self {
        CertConfig {
            max_steps: 5_000_000,
            max_threads: 65_536,
            max_terms: 1_000_000,
        }
    }
}

const WARP_SIZE: usize = 32;

struct SThread {
    regs: Vec<SVal>,
    pc: usize,
    exited: bool,
    at_barrier: bool,
}

struct SharedMem {
    size: u64,
    cells: HashMap<u64, Cell>,
    log: HashMap<u64, Vec<Access>>,
}

/// Symbolically execute one kernel launch against `mem`/`pool`.
///
/// Replicates the lockstep interpreter: warps of 32 consecutive lanes,
/// min-PC reconvergence within a warp, strict barrier rounds (all
/// non-exited threads must reach the same barrier), blocks in ascending
/// linear order. Any construct the validator cannot model exactly
/// returns `Err(reason)` → verdict `Unknown`.
pub fn run_symbolic(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[SVal],
    mem: &mut SymMemory,
    pool: &mut TermPool,
    ccfg: &CertConfig,
    steps: &mut u64,
) -> Result<(), String> {
    let tpb = cfg.threads_per_block() as usize;
    let nblocks = cfg.num_blocks();
    if tpb == 0 || nblocks == 0 {
        return Err("empty launch".into());
    }
    if tpb as u64 * nblocks as u64 > ccfg.max_threads {
        return Err(format!(
            "launch too large to certify ({} threads)",
            tpb as u64 * nblocks as u64
        ));
    }
    if params.len() < kernel.num_params as usize {
        return Err(format!(
            "kernel `{}` expects {} params, got {}",
            kernel.name,
            kernel.num_params,
            params.len()
        ));
    }
    for block_id in 0..nblocks {
        let block_idx = (block_id % cfg.grid.0, block_id / cfg.grid.0);
        let mut shared = SharedMem {
            size: kernel.shared_bytes as u64,
            cells: HashMap::new(),
            log: HashMap::new(),
        };
        let mut epoch: u32 = 0;
        let mut threads: Vec<SThread> = (0..tpb)
            .map(|_| SThread {
                regs: vec![SVal::C(Value::I32(0)); kernel.num_regs as usize],
                pc: 0,
                exited: false,
                at_barrier: false,
            })
            .collect();
        let warps = tpb.div_ceil(WARP_SIZE);
        loop {
            for w in 0..warps {
                let lo = w * WARP_SIZE;
                let hi = (lo + WARP_SIZE).min(tpb);
                loop {
                    let pc = (lo..hi)
                        .filter(|&l| !threads[l].exited && !threads[l].at_barrier)
                        .map(|l| threads[l].pc)
                        .min();
                    let Some(pc) = pc else { break };
                    for l in lo..hi {
                        if threads[l].exited || threads[l].at_barrier || threads[l].pc != pc {
                            continue;
                        }
                        *steps += 1;
                        if *steps > ccfg.max_steps {
                            return Err("step budget exceeded".into());
                        }
                        if pool.len() as u64 > ccfg.max_terms {
                            return Err("term budget exceeded".into());
                        }
                        exec_inst(
                            kernel,
                            cfg,
                            params,
                            mem,
                            pool,
                            &mut threads,
                            &mut shared,
                            l,
                            block_id,
                            block_idx,
                            w as u32,
                            epoch,
                            pc,
                        )?;
                    }
                }
            }
            if threads.iter().all(|t| t.exited) {
                break;
            }
            // Barrier round.
            let mut bar_pc: Option<usize> = None;
            for t in threads.iter() {
                if t.exited {
                    continue;
                }
                if !t.at_barrier {
                    return Err(format!(
                        "barrier deadlock in `{}` (block {block_id})",
                        kernel.name
                    ));
                }
                match bar_pc {
                    None => bar_pc = Some(t.pc),
                    Some(p) if p != t.pc => {
                        return Err(format!(
                            "barrier divergence in `{}` (block {block_id})",
                            kernel.name
                        ));
                    }
                    _ => {}
                }
            }
            for t in threads.iter_mut() {
                t.at_barrier = false;
            }
            epoch += 1;
        }
    }
    mem.clear_logs();
    Ok(())
}

fn special(lane: usize, cfg: LaunchConfig, block_idx: (u32, u32), sr: SpecialReg) -> Value {
    let v = match sr {
        SpecialReg::TidX => lane as u32 % cfg.block.0,
        SpecialReg::TidY => lane as u32 / cfg.block.0,
        SpecialReg::TidZ => 0,
        SpecialReg::NTidX => cfg.block.0,
        SpecialReg::NTidY => cfg.block.1,
        SpecialReg::NTidZ => 1,
        SpecialReg::CtaIdX => block_idx.0,
        SpecialReg::CtaIdY => block_idx.1,
        SpecialReg::NCtaIdX => cfg.grid.0,
        SpecialReg::NCtaIdY => cfg.grid.1,
        SpecialReg::LaneLinear => lane as u32,
    };
    Value::I32(v as i32)
}

fn operand(threads: &[SThread], lane: usize, op: Operand) -> SVal {
    match op {
        Operand::Reg(r) => threads[lane].regs[r.0 as usize],
        Operand::Imm(v) => SVal::C(v),
    }
}

/// Resolve a memory reference to a concrete byte address, mirroring the
/// interpreter's `resolve_mref` (i64 wrapping arithmetic).
fn addr_of(threads: &[SThread], lane: usize, m: &MemRef) -> Result<u64, String> {
    let base = match operand(threads, lane, m.base) {
        SVal::C(v) => v.as_u64(),
        SVal::T(_) => return Err("symbolic address base".into()),
    };
    let idx = match m.index {
        None => 0,
        Some(r) => match threads[lane].regs[r.0 as usize] {
            SVal::C(v) => v.as_i64(),
            SVal::T(_) => return Err("symbolic address index".into()),
        },
    };
    Ok(mref_addr(base, idx, m.scale as i64, m.disp))
}

#[allow(clippy::too_many_arguments)]
fn exec_inst(
    kernel: &Kernel,
    cfg: LaunchConfig,
    params: &[SVal],
    mem: &mut SymMemory,
    pool: &mut TermPool,
    threads: &mut [SThread],
    shared: &mut SharedMem,
    lane: usize,
    block_id: u32,
    block_idx: (u32, u32),
    warp: u32,
    epoch: u32,
    pc: usize,
) -> Result<(), String> {
    let inst = &kernel.insts[pc];
    let mut next_pc = pc + 1;
    let acc = |kind: AccKind, size: u8, written: Option<SVal>| Access {
        kind,
        block: block_id,
        warp,
        epoch,
        size,
        written,
    };
    // NOTE: this match is deliberately wildcard-free — adding a variant to
    // `Inst` without certification semantics is a compile error (and the
    // `cert_covers_every_inst_variant` test fails CI).
    match inst {
        Inst::MovImm { dst, value } => {
            threads[lane].regs[dst.0 as usize] = SVal::C(*value);
        }
        Inst::Mov { dst, src } => {
            threads[lane].regs[dst.0 as usize] = threads[lane].regs[src.0 as usize];
        }
        Inst::ReadSpecial { dst, sr } => {
            threads[lane].regs[dst.0 as usize] = SVal::C(special(lane, cfg, block_idx, *sr));
        }
        Inst::ReadParam { dst, idx } => {
            let v = *params
                .get(*idx as usize)
                .ok_or_else(|| format!("param index {idx} out of range"))?;
            threads[lane].regs[dst.0 as usize] = v;
        }
        Inst::Bin { op, ty, dst, a, b } => {
            let av = operand(threads, lane, *a);
            let bv = operand(threads, lane, *b);
            threads[lane].regs[dst.0 as usize] = pool.v_bin(*op, *ty, av, bv)?;
        }
        Inst::Cmp { op, ty, dst, a, b } => {
            let av = operand(threads, lane, *a);
            let bv = operand(threads, lane, *b);
            threads[lane].regs[dst.0 as usize] = pool.v_cmp(*op, *ty, av, bv)?;
        }
        Inst::Un { op, ty, dst, a } => {
            let av = operand(threads, lane, *a);
            threads[lane].regs[dst.0 as usize] = pool.v_un(*op, *ty, av)?;
        }
        Inst::Select { dst, cond, a, b } => {
            let cv = threads[lane].regs[cond.0 as usize];
            let av = operand(threads, lane, *a);
            let bv = operand(threads, lane, *b);
            threads[lane].regs[dst.0 as usize] = pool.v_sel(cv, av, bv)?;
        }
        Inst::Cvt { dst, ty, src } => {
            let sv = operand(threads, lane, *src);
            threads[lane].regs[dst.0 as usize] = pool.coerce(sv, *ty);
        }
        Inst::LdGlobal { ty, dst, mref } => {
            let addr = addr_of(threads, lane, mref)?;
            let (ridx, off) = mem.find(addr)?;
            let r = &mut mem.regions[ridx as usize];
            check_cell_overlap(&r.cells, &r.name.clone(), off, ty.size() as u64)?;
            let race = if r.race_exempt {
                None
            } else {
                let name = r.name.clone();
                log_access(
                    &mut r.log,
                    &name,
                    off,
                    acc(AccKind::Read, ty.size() as u8, None),
                )
            };
            threads[lane].regs[dst.0 as usize] = if let Some(msg) = race {
                pool.poison(*ty, msg)
            } else {
                mem.peek(pool, ridx, off, *ty)?.ok_or_else(|| {
                    format!(
                        "read of uninitialized global memory ({}+{off})",
                        mem.region(ridx).name
                    )
                })?
            };
        }
        Inst::StGlobal { ty, src, mref } => {
            let addr = addr_of(threads, lane, mref)?;
            let (ridx, off) = mem.find(addr)?;
            let sv = operand(threads, lane, *src);
            let v = pool.coerce(sv, *ty);
            let r = &mut mem.regions[ridx as usize];
            if !off.is_multiple_of(ty.size() as u64) || off + ty.size() as u64 > r.size {
                return Err(format!("misaligned or OOB store at {}+{off}", r.name));
            }
            check_cell_overlap(&r.cells, &r.name.clone(), off, ty.size() as u64)?;
            let race = if r.race_exempt {
                None
            } else {
                let name = r.name.clone();
                log_access(
                    &mut r.log,
                    &name,
                    off,
                    acc(AccKind::Write, ty.size() as u8, Some(v)),
                )
            };
            let val = match race {
                Some(msg) => pool.poison(*ty, msg),
                None => v,
            };
            r.cells.insert(
                off,
                Cell {
                    ty: *ty,
                    val,
                    written: true,
                },
            );
        }
        Inst::LdShared { ty, dst, mref } => {
            let off = addr_of(threads, lane, mref)?;
            if off % ty.size() as u64 != 0 || off + ty.size() as u64 > shared.size {
                return Err(format!("misaligned or OOB shared load at +{off}"));
            }
            check_cell_overlap(&shared.cells, "shared", off, ty.size() as u64)?;
            let race = log_access(
                &mut shared.log,
                "shared",
                off,
                acc(AccKind::Read, ty.size() as u8, None),
            );
            threads[lane].regs[dst.0 as usize] = if let Some(msg) = race {
                pool.poison(*ty, msg)
            } else {
                let c = shared
                    .cells
                    .get(&off)
                    .ok_or_else(|| format!("read of uninitialized shared memory (+{off})"))?;
                if c.ty.size() != ty.size() {
                    return Err(format!("type-punned shared cell at +{off}"));
                }
                c.val
            };
        }
        Inst::StShared { ty, src, mref } => {
            let off = addr_of(threads, lane, mref)?;
            if off % ty.size() as u64 != 0 || off + ty.size() as u64 > shared.size {
                return Err(format!("misaligned or OOB shared store at +{off}"));
            }
            let sv = operand(threads, lane, *src);
            let v = pool.coerce(sv, *ty);
            check_cell_overlap(&shared.cells, "shared", off, ty.size() as u64)?;
            let race = log_access(
                &mut shared.log,
                "shared",
                off,
                acc(AccKind::Write, ty.size() as u8, Some(v)),
            );
            let val = match race {
                Some(msg) => pool.poison(*ty, msg),
                None => v,
            };
            shared.cells.insert(
                off,
                Cell {
                    ty: *ty,
                    val,
                    written: true,
                },
            );
        }
        Inst::AtomGlobal {
            op,
            ty,
            mref,
            src,
            dst,
        } => {
            if dst.is_some() {
                return Err("value-returning atomic".into());
            }
            let bop = match op {
                AtomOp::Add => BinOp::Add,
                AtomOp::Min => BinOp::Min,
                AtomOp::Max => BinOp::Max,
                AtomOp::And => BinOp::And,
                AtomOp::Or => BinOp::Or,
                AtomOp::Xor => BinOp::Xor,
                AtomOp::Exch => return Err("exchange atomic".into()),
            };
            let addr = addr_of(threads, lane, mref)?;
            let (ridx, off) = mem.find(addr)?;
            let sv = operand(threads, lane, *src);
            let old = mem.peek(pool, ridx, off, *ty)?.ok_or_else(|| {
                format!(
                    "atomic on uninitialized cell ({}+{off})",
                    mem.region(ridx).name
                )
            })?;
            let new = pool.v_bin(bop, *ty, old, sv)?;
            let r = &mut mem.regions[ridx as usize];
            let race = if r.race_exempt {
                None
            } else {
                let name = r.name.clone();
                log_access(
                    &mut r.log,
                    &name,
                    off,
                    acc(AccKind::Atomic, ty.size() as u8, None),
                )
            };
            let val = match race {
                Some(msg) => pool.poison(*ty, msg),
                None => new,
            };
            r.cells.insert(
                off,
                Cell {
                    ty: *ty,
                    val,
                    written: true,
                },
            );
        }
        Inst::Bar => {
            threads[lane].at_barrier = true;
        }
        Inst::Bra { target, cond } => match cond {
            None => next_pc = kernel.target(*target),
            Some((r, expect)) => match threads[lane].regs[r.0 as usize] {
                SVal::C(v) => {
                    if v.as_bool() == *expect {
                        next_pc = kernel.target(*target);
                    }
                }
                SVal::T(_) => return Err("symbolic branch condition".into()),
            },
        },
        Inst::Ret => {
            threads[lane].exited = true;
        }
    }
    threads[lane].pc = next_pc;
    Ok(())
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{Label, Reg};

    fn input(pool: &mut TermPool, off: u64, ty: Ty) -> SVal {
        SVal::T(pool.input(0, off, ty))
    }

    #[test]
    fn int_fold_merges_and_drops_neutral() {
        let mut p = TermPool::new();
        let x = input(&mut p, 0, Ty::I32);
        // (0 + x) + 0 == x
        let a = p
            .v_bin(BinOp::Add, Ty::I32, SVal::C(Value::I32(0)), x)
            .unwrap();
        let b = p
            .v_bin(BinOp::Add, Ty::I32, a, SVal::C(Value::I32(0)))
            .unwrap();
        assert!(sval_eq(b, x));
        // (3 + x) + 4 keeps a single merged Num(7)
        let c = p
            .v_bin(BinOp::Add, Ty::I32, SVal::C(Value::I32(3)), x)
            .unwrap();
        let d = p
            .v_bin(BinOp::Add, Ty::I32, c, SVal::C(Value::I32(4)))
            .unwrap();
        let SVal::T(t) = d else {
            panic!("expected term")
        };
        let Term::Fold { args, .. } = p.term(t) else {
            panic!("expected fold")
        };
        let nums: Vec<_> = args
            .iter()
            .filter(|&&a| matches!(p.term(a), Term::Num(_)))
            .collect();
        assert_eq!(nums.len(), 1);
        // logical-and identity 1 is NOT the bitwise-and neutral: kept.
        let e = p
            .v_bin(BinOp::And, Ty::I32, SVal::C(Value::I32(1)), x)
            .unwrap();
        let SVal::T(t) = e else {
            panic!("expected term")
        };
        let Term::Fold { args, .. } = p.term(t) else {
            panic!("expected fold")
        };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn fold_is_order_insensitive() {
        let mut p = TermPool::new();
        let x = input(&mut p, 0, Ty::I32);
        let y = input(&mut p, 4, Ty::I32);
        let z = input(&mut p, 8, Ty::I32);
        let xy = p.v_bin(BinOp::Add, Ty::I32, x, y).unwrap();
        let xyz = p.v_bin(BinOp::Add, Ty::I32, xy, z).unwrap();
        let zy = p.v_bin(BinOp::Add, Ty::I32, z, y).unwrap();
        let zyx = p.v_bin(BinOp::Add, Ty::I32, zy, x).unwrap();
        assert!(sval_eq(xyz, zyx));
    }

    #[test]
    fn float_fold_keeps_constants_unmerged() {
        let mut p = TermPool::new();
        // 0.1 + 0.2 stays a two-element fold (merging would commit to an
        // association order), and the result is flagged as a float fold.
        let a = p
            .v_bin(
                BinOp::Add,
                Ty::F64,
                SVal::C(Value::F64(0.1)),
                SVal::C(Value::F64(0.2)),
            )
            .unwrap();
        let SVal::T(t) = a else {
            panic!("expected term")
        };
        assert!(matches!(p.term(t), Term::Fold { args, .. } if args.len() == 2));
        assert!(p.has_float_fold(t));
        // +0.0 is dropped, -0.0 is kept.
        let x = input(&mut p, 0, Ty::F64);
        let b = p
            .v_bin(BinOp::Add, Ty::F64, x, SVal::C(Value::F64(0.0)))
            .unwrap();
        assert!(sval_eq(b, x));
        let c = p
            .v_bin(BinOp::Add, Ty::F64, x, SVal::C(Value::F64(-0.0)))
            .unwrap();
        assert!(!sval_eq(c, x));
    }

    #[test]
    fn boolean_normalization_is_idempotent() {
        let mut p = TermPool::new();
        let x = input(&mut p, 0, Ty::I32);
        let norm = |p: &mut TermPool, v: SVal| {
            let z = SVal::C(Value::zero(Ty::I32));
            let c = p.v_cmp(CmpOp::Ne, Ty::I32, v, z).unwrap();
            p.v_sel(c, SVal::C(Value::I32(1)), SVal::C(Value::I32(0)))
                .unwrap()
        };
        let n1 = norm(&mut p, x);
        let n2 = norm(&mut p, n1);
        assert!(sval_eq(n1, n2));
    }

    #[test]
    fn executor_folds_a_two_thread_tree() {
        // 64 threads load in[tid], stage to shared, barrier, then lane 0
        // combines all 64 and stores out[0] — must equal the reference
        // fold(add, {in[0..64]}) built in any order.
        let n = 64u32;
        let mut b = KernelBuilder::new("tree");
        let inp = b.param(0);
        let out = b.param(1);
        let slab = b.alloc_shared(4 * n as usize, 8);
        let tid = b.special(SpecialReg::TidX);
        let t64 = b.cvt(Ty::I64, tid);
        let v = b.ld_global(Ty::I32, MemRef::indexed(inp, t64, 4));
        b.st_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), t64, 4), v);
        b.bar();
        let is0 = b.cmp(CmpOp::Eq, Ty::I32, tid, Value::I32(0));
        let done = b.new_label();
        b.bra_unless(is0, done);
        let acc = b.mov_imm(Value::I32(0));
        let i = b.mov_imm(Value::I32(0));
        let head = b.new_label();
        b.place(head);
        let i64r = b.cvt(Ty::I64, i);
        let e = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), i64r, 4));
        b.bin_to(acc, BinOp::Add, Ty::I32, acc, e);
        b.bin_to(i, BinOp::Add, Ty::I32, i, Value::I32(1));
        let more = b.cmp(CmpOp::Lt, Ty::I32, i, Value::I32(n as i32));
        b.bra_if(more, head);
        b.st_global(Ty::I32, MemRef::direct(out), acc);
        b.place(done);
        let k = b.finish();

        let mut mem = SymMemory::new();
        let rin = mem.alloc("in", 4 * n as u64, Some(Ty::I32), false).unwrap();
        let rout = mem.alloc("out", 4, None, false).unwrap();
        let mut pool = TermPool::new();
        let params = [
            SVal::C(Value::U64(mem.base(rin))),
            SVal::C(Value::U64(mem.base(rout))),
        ];
        let mut steps = 0;
        run_symbolic(
            &k,
            LaunchConfig::d1(1, n),
            &params,
            &mut mem,
            &mut pool,
            &CertConfig::default(),
            &mut steps,
        )
        .unwrap();
        let got = mem.peek(&mut pool, rout, 0, Ty::I32).unwrap().unwrap();
        // Reference: fold the same inputs in a scrambled order.
        let mut expect = SVal::C(Value::I32(0));
        for i in (0..n as u64).rev() {
            let leaf = SVal::T(pool.input(rin, i * 4, Ty::I32));
            expect = pool.v_bin(BinOp::Add, Ty::I32, expect, leaf).unwrap();
        }
        assert!(sval_eq(got, expect), "tree result != reference fold");
        assert_eq!(mem.written_offsets(rout), vec![0]);
    }

    #[test]
    fn executor_poisons_cross_warp_race() {
        // 64 threads all store tid to out[0] with no barrier: lanes in
        // different warps write different values to one cell → the cell
        // is schedule-dependent, so its value must come back poisoned
        // (execution itself continues — a dead race is benign).
        let mut b = KernelBuilder::new("race");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        b.st_global(Ty::I32, MemRef::direct(out), tid);
        let k = b.finish();
        let mut mem = SymMemory::new();
        let r = mem.alloc("out", 4, None, false).unwrap();
        let mut pool = TermPool::new();
        let params = [SVal::C(Value::U64(mem.base(r)))];
        let mut steps = 0;
        run_symbolic(
            &k,
            LaunchConfig::d1(1, 64),
            &params,
            &mut mem,
            &mut pool,
            &CertConfig::default(),
            &mut steps,
        )
        .unwrap();
        let v = mem.peek(&mut pool, r, 0, Ty::I32).unwrap().unwrap();
        let msg = pool.sval_poison(v).expect("racy cell must be poisoned");
        assert!(msg.contains("data race"), "got: {msg}");
    }

    #[test]
    fn executor_rejects_symbolic_branch() {
        let mut b = KernelBuilder::new("symbr");
        let inp = b.param(0);
        let v = b.ld_global(Ty::I32, MemRef::direct(inp));
        let z = b.cmp(CmpOp::Ne, Ty::I32, v, Value::I32(0));
        let l = b.new_label();
        b.bra_if(z, l);
        b.place(l);
        let k = b.finish();
        let mut mem = SymMemory::new();
        let r = mem.alloc("in", 4, Some(Ty::I32), false).unwrap();
        let mut pool = TermPool::new();
        let params = [SVal::C(Value::U64(mem.base(r)))];
        let mut steps = 0;
        let err = run_symbolic(
            &k,
            LaunchConfig::d1(1, 1),
            &params,
            &mut mem,
            &mut pool,
            &CertConfig::default(),
            &mut steps,
        )
        .unwrap_err();
        assert!(err.contains("symbolic branch"), "got: {err}");
    }

    /// Exhaustive variant coverage: constructing one of each `Inst`
    /// variant through this wildcard-free match guarantees that adding a
    /// new IR op without certification semantics breaks the build here
    /// and in `exec_inst`.
    #[test]
    fn cert_covers_every_inst_variant() {
        let r = Reg(0);
        let m = MemRef::direct(Value::U64(0));
        let variants: Vec<Inst> = vec![
            Inst::MovImm {
                dst: r,
                value: Value::I32(0),
            },
            Inst::Mov { dst: r, src: r },
            Inst::ReadSpecial {
                dst: r,
                sr: SpecialReg::TidX,
            },
            Inst::ReadParam { dst: r, idx: 0 },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::I32,
                dst: r,
                a: r.into(),
                b: r.into(),
            },
            Inst::Cmp {
                op: CmpOp::Eq,
                ty: Ty::I32,
                dst: r,
                a: r.into(),
                b: r.into(),
            },
            Inst::Un {
                op: UnOp::Neg,
                ty: Ty::I32,
                dst: r,
                a: r.into(),
            },
            Inst::Select {
                dst: r,
                cond: r,
                a: r.into(),
                b: r.into(),
            },
            Inst::Cvt {
                dst: r,
                ty: Ty::I64,
                src: r.into(),
            },
            Inst::LdGlobal {
                ty: Ty::I32,
                dst: r,
                mref: m,
            },
            Inst::StGlobal {
                ty: Ty::I32,
                src: r.into(),
                mref: m,
            },
            Inst::LdShared {
                ty: Ty::I32,
                dst: r,
                mref: m,
            },
            Inst::StShared {
                ty: Ty::I32,
                src: r.into(),
                mref: m,
            },
            Inst::AtomGlobal {
                op: AtomOp::Add,
                ty: Ty::I32,
                mref: m,
                src: r.into(),
                dst: None,
            },
            Inst::Bar,
            Inst::Bra {
                target: Label(0),
                cond: None,
            },
            Inst::Ret,
        ];
        for v in &variants {
            // Mirror of the executor's match; wildcard-free on purpose.
            match v {
                Inst::MovImm { .. }
                | Inst::Mov { .. }
                | Inst::ReadSpecial { .. }
                | Inst::ReadParam { .. }
                | Inst::Bin { .. }
                | Inst::Cmp { .. }
                | Inst::Un { .. }
                | Inst::Select { .. }
                | Inst::Cvt { .. }
                | Inst::LdGlobal { .. }
                | Inst::StGlobal { .. }
                | Inst::LdShared { .. }
                | Inst::StShared { .. }
                | Inst::AtomGlobal { .. }
                | Inst::Bar
                | Inst::Bra { .. }
                | Inst::Ret => {}
            }
        }
        assert_eq!(variants.len(), 17);
    }
}
