//! Parser for the textual kernel listing produced by [`Kernel::disasm`].
//!
//! `parse_kernel(k.disasm()) == k` for every finalized kernel: the listing
//! is the stable interchange form cited by verifier reports and golden
//! tests, so it must round-trip — labels, branch targets, and typed
//! immediates included. Immediates carry their type in the spelling (see
//! [`crate::ir::format_imm`]); this module is the decoding side.

use crate::ir::{
    AtomOp, BinOp, CmpOp, Inst, Kernel, Label, MemRef, Operand, Reg, SpecialReg, UnOp,
};
use crate::types::{Ty, Value};

/// Parse a disassembly listing back into a [`Kernel`].
///
/// Accepts exactly the format emitted by [`Kernel::disasm`]; returns a
/// message pinpointing the offending line otherwise.
pub fn parse_kernel(text: &str) -> Result<Kernel, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or("empty listing")?;
    let (name, num_regs, shared_bytes, num_params) = parse_header(header.trim())?;

    let mut insts: Vec<Inst> = Vec::new();
    let mut inst_lines: Vec<u32> = Vec::new();
    let mut cur_line = 0u32;
    let mut saw_loc = false;
    let mut labels: Vec<(u32, usize)> = Vec::new();
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| format!("line {}: {m} (`{line}`)", ln + 1);
        if let Some(id) = line.strip_prefix('L').and_then(|r| r.strip_suffix(':')) {
            let id: u32 = id.parse().map_err(|_| err("bad label id".into()))?;
            labels.push((id, insts.len()));
            continue;
        }
        if let Some(n) = line.strip_prefix(".loc ") {
            cur_line = n.trim().parse().map_err(|_| err("bad .loc line".into()))?;
            saw_loc = true;
            continue;
        }
        let (idx, body) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected `<idx> <inst>`".into()))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| err("bad instruction index".into()))?;
        if idx != insts.len() {
            return Err(err(format!("index {idx}, expected {}", insts.len())));
        }
        insts.push(parse_inst(body.trim()).map_err(err)?);
        inst_lines.push(cur_line);
    }

    let max_label = labels.iter().map(|&(id, _)| id).max();
    let mut label_targets = vec![usize::MAX; max_label.map_or(0, |m| m as usize + 1)];
    for (id, pos) in labels {
        label_targets[id as usize] = pos;
    }
    if let Some(missing) = label_targets.iter().position(|&t| t == usize::MAX) {
        return Err(format!("label L{missing} never placed"));
    }
    Ok(Kernel {
        name,
        insts,
        label_targets,
        num_regs,
        shared_bytes,
        num_params,
        // A listing without `.loc` directives has no line table; with
        // them, lines carry forward from each directive (matching the
        // on-change emission in `Kernel::disasm`).
        lines: if saw_loc { inst_lines } else { Vec::new() },
    })
}

fn parse_header(line: &str) -> Result<(String, u32, usize, u32), String> {
    let rest = line
        .strip_prefix(".kernel ")
        .ok_or("missing `.kernel` header")?;
    let (name, meta) = rest.split_once(" (").ok_or("malformed header")?;
    let meta = meta.strip_suffix(')').ok_or("malformed header")?;
    let mut regs = None;
    let mut shared = None;
    let mut params = None;
    for field in meta.split(", ") {
        let (k, v) = field.split_once('=').ok_or("malformed header field")?;
        match k {
            "regs" => regs = v.parse().ok(),
            "shared" => shared = v.strip_suffix('B').and_then(|n| n.parse().ok()),
            "params" => params = v.parse().ok(),
            _ => return Err(format!("unknown header field `{k}`")),
        }
    }
    Ok((
        name.to_string(),
        regs.ok_or("missing regs")?,
        shared.ok_or("missing shared")?,
        params.ok_or("missing params")?,
    ))
}

fn parse_inst(body: &str) -> Result<Inst, String> {
    if body == "ret" {
        return Ok(Inst::Ret);
    }
    if body == "bar.sync 0" {
        return Ok(Inst::Bar);
    }
    if let Some(rest) = body.strip_prefix('@') {
        let (neg, rest) = match rest.strip_prefix('!') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let (pred, rest) = rest.split_once(' ').ok_or("malformed predicated branch")?;
        let target = rest
            .strip_prefix("bra ")
            .ok_or("expected `bra` after predicate")?;
        return Ok(Inst::Bra {
            target: parse_label(target)?,
            cond: Some((parse_reg(pred)?, !neg)),
        });
    }
    if let Some(target) = body.strip_prefix("bra ") {
        return Ok(Inst::Bra {
            target: parse_label(target)?,
            cond: None,
        });
    }
    let (mnem, rest) = body.split_once(' ').ok_or("missing operands")?;
    let ops = split_operands(rest);
    let arity = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("expected {n} operands, got {}", ops.len()))
        }
    };
    match mnem {
        "mov" => {
            arity(2)?;
            let dst = parse_reg(&ops[0])?;
            if let Some(sr) = parse_special(&ops[1]) {
                Ok(Inst::ReadSpecial { dst, sr })
            } else if ops[1].starts_with("%r") {
                Ok(Inst::Mov {
                    dst,
                    src: parse_reg(&ops[1])?,
                })
            } else {
                Ok(Inst::MovImm {
                    dst,
                    value: parse_imm(&ops[1])?,
                })
            }
        }
        "ld.param" => {
            arity(2)?;
            let idx = ops[1]
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse().ok())
                .ok_or("bad param index")?;
            Ok(Inst::ReadParam {
                dst: parse_reg(&ops[0])?,
                idx,
            })
        }
        "selp" => {
            arity(4)?;
            Ok(Inst::Select {
                dst: parse_reg(&ops[0])?,
                cond: parse_reg(&ops[1])?,
                a: parse_operand(&ops[2])?,
                b: parse_operand(&ops[3])?,
            })
        }
        _ => parse_dotted(mnem, &ops, arity),
    }
}

fn parse_dotted(
    mnem: &str,
    ops: &[String],
    arity: impl Fn(usize) -> Result<(), String>,
) -> Result<Inst, String> {
    let parts: Vec<&str> = mnem.split('.').collect();
    match parts.as_slice() {
        ["setp", op, ty] => {
            arity(3)?;
            Ok(Inst::Cmp {
                op: parse_cmp(op)?,
                ty: parse_ty(ty)?,
                dst: parse_reg(&ops[0])?,
                a: parse_operand(&ops[1])?,
                b: parse_operand(&ops[2])?,
            })
        }
        ["cvt", ty] => {
            arity(2)?;
            Ok(Inst::Cvt {
                dst: parse_reg(&ops[0])?,
                ty: parse_ty(ty)?,
                src: parse_operand(&ops[1])?,
            })
        }
        ["ld", space @ ("global" | "shared"), ty] => {
            arity(2)?;
            let ty = parse_ty(ty)?;
            let dst = parse_reg(&ops[0])?;
            let mref = parse_mref(&ops[1])?;
            Ok(if *space == "global" {
                Inst::LdGlobal { ty, dst, mref }
            } else {
                Inst::LdShared { ty, dst, mref }
            })
        }
        ["st", space @ ("global" | "shared"), ty] => {
            arity(2)?;
            let ty = parse_ty(ty)?;
            let mref = parse_mref(&ops[0])?;
            let src = parse_operand(&ops[1])?;
            Ok(if *space == "global" {
                Inst::StGlobal { ty, src, mref }
            } else {
                Inst::StShared { ty, src, mref }
            })
        }
        ["atom", "global", op, ty] => {
            arity(3)?;
            Ok(Inst::AtomGlobal {
                op: parse_atom(op)?,
                ty: parse_ty(ty)?,
                dst: Some(parse_reg(&ops[0])?),
                mref: parse_mref(&ops[1])?,
                src: parse_operand(&ops[2])?,
            })
        }
        ["red", "global", op, ty] => {
            arity(2)?;
            Ok(Inst::AtomGlobal {
                op: parse_atom(op)?,
                ty: parse_ty(ty)?,
                dst: None,
                mref: parse_mref(&ops[0])?,
                src: parse_operand(&ops[1])?,
            })
        }
        [op, ty] if parse_un(op).is_some() && ops.len() == 2 => Ok(Inst::Un {
            op: parse_un(op).unwrap(),
            ty: parse_ty(ty)?,
            dst: parse_reg(&ops[0])?,
            a: parse_operand(&ops[1])?,
        }),
        [op, ty] if parse_bin(op).is_some() => {
            arity(3)?;
            Ok(Inst::Bin {
                op: parse_bin(op).unwrap(),
                ty: parse_ty(ty)?,
                dst: parse_reg(&ops[0])?,
                a: parse_operand(&ops[1])?,
                b: parse_operand(&ops[2])?,
            })
        }
        _ => Err(format!("unknown mnemonic `{mnem}`")),
    }
}

/// Split an operand list at top-level commas (commas never occur inside
/// the bracketed memory-reference form, but be safe about it anyway).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0u32;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    s.strip_prefix("%r")
        .and_then(|n| n.parse().ok())
        .map(Reg)
        .ok_or_else(|| format!("expected register, got `{s}`"))
}

fn parse_label(s: &str) -> Result<Label, String> {
    s.strip_prefix('L')
        .and_then(|n| n.parse().ok())
        .map(Label)
        .ok_or_else(|| format!("expected label, got `{s}`"))
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if s.starts_with("%r") {
        Ok(Operand::Reg(parse_reg(s)?))
    } else {
        Ok(Operand::Imm(parse_imm(s)?))
    }
}

/// Decode a typed immediate; inverse of [`crate::ir::format_imm`].
fn parse_imm(s: &str) -> Result<Value, String> {
    let bad = || format!("bad immediate `{s}`");
    if s == "true" {
        return Ok(Value::Pred(true));
    }
    if s == "false" {
        return Ok(Value::Pred(false));
    }
    if let Some(hex) = s.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16)
            .map(Value::U64)
            .map_err(|_| bad());
    }
    if let Some(body) = s.strip_suffix('L') {
        return body.parse().map(Value::I64).map_err(|_| bad());
    }
    if let Some(body) = s.strip_suffix('f') {
        return body.parse().map(Value::F32).map_err(|_| bad());
    }
    if s.contains(['.', 'e', 'E', 'n', 'N', 'i']) {
        return s.parse().map(Value::F64).map_err(|_| bad());
    }
    s.parse().map(Value::I32).map_err(|_| bad())
}

/// Parse `[base + %rI*S + D]` with the index and displacement optional.
fn parse_mref(s: &str) -> Result<MemRef, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected memory reference, got `{s}`"))?;
    let mut parts = inner.split(" + ");
    let base = parse_operand(parts.next().ok_or("empty memory reference")?)?;
    let mut mref = MemRef {
        base,
        index: None,
        scale: 1,
        disp: 0,
    };
    for part in parts {
        if let Some((reg, scale)) = part.split_once('*') {
            mref.index = Some(parse_reg(reg)?);
            mref.scale = scale
                .parse()
                .map_err(|_| format!("bad index scale `{scale}`"))?;
        } else {
            mref.disp = part
                .parse()
                .map_err(|_| format!("bad displacement `{part}`"))?;
        }
    }
    Ok(mref)
}

fn parse_special(s: &str) -> Option<SpecialReg> {
    Some(match s {
        "%tid.x" => SpecialReg::TidX,
        "%tid.y" => SpecialReg::TidY,
        "%tid.z" => SpecialReg::TidZ,
        "%ntid.x" => SpecialReg::NTidX,
        "%ntid.y" => SpecialReg::NTidY,
        "%ntid.z" => SpecialReg::NTidZ,
        "%ctaid.x" => SpecialReg::CtaIdX,
        "%ctaid.y" => SpecialReg::CtaIdY,
        "%nctaid.x" => SpecialReg::NCtaIdX,
        "%nctaid.y" => SpecialReg::NCtaIdY,
        "%linear" => SpecialReg::LaneLinear,
        _ => return None,
    })
}

fn parse_ty(s: &str) -> Result<Ty, String> {
    Ok(match s {
        "s32" => Ty::I32,
        "s64" => Ty::I64,
        "f32" => Ty::F32,
        "f64" => Ty::F64,
        "u64" => Ty::U64,
        "pred" => Ty::Pred,
        _ => return Err(format!("unknown type `{s}`")),
    })
}

fn parse_bin(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn parse_un(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "abs" => UnOp::Abs,
        "sqrt" => UnOp::Sqrt,
        "not" => UnOp::Not,
        _ => return None,
    })
}

fn parse_cmp(s: &str) -> Result<CmpOp, String> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return Err(format!("unknown comparison `{s}`")),
    })
}

fn parse_atom(s: &str) -> Result<AtomOp, String> {
    Ok(match s {
        "add" => AtomOp::Add,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "and" => AtomOp::And,
        "or" => AtomOp::Or,
        "xor" => AtomOp::Xor,
        "exch" => AtomOp::Exch,
        _ => return Err(format!("unknown atomic op `{s}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    /// Build a kernel exercising every operand form and check the full
    /// disasm → parse → disasm round trip.
    #[test]
    fn round_trip_every_operand_form() {
        let mut b = KernelBuilder::new("rt");
        let slab = b.alloc_shared(128, 8);
        let p = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let t64 = b.cvt(Ty::I64, tid);
        let c = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
        let body = b.new_label();
        let end = b.new_label();
        b.bra_unless(c, end);
        b.place(body);
        let v = b.ld_global(Ty::F64, MemRef::indexed(p, t64, 8));
        let v2 = b.bin(BinOp::Add, Ty::F64, v, Value::F64(1.5));
        b.st_shared(
            Ty::F64,
            MemRef::indexed(Value::U64(slab as u64), t64, 8).with_disp(-8),
            v2,
        );
        b.bar();
        let w = b.ld_shared(Ty::F64, MemRef::direct(Value::U64(slab as u64)));
        let sel = b.select(c, w, Value::F64(0.0));
        b.st_global(Ty::F64, MemRef::indexed(p, t64, 8), sel);
        b.place(end);
        let k = b.finish();

        let text = k.disasm();
        let parsed = parse_kernel(&text).expect("parse");
        assert_eq!(parsed, k);
        assert_eq!(parsed.disasm(), text);
    }

    /// Kernels with a line table round-trip through the `.loc` directives.
    #[test]
    fn round_trip_with_line_table() {
        let mut b = KernelBuilder::new("lines");
        b.set_line(4);
        let p = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        b.set_line(6);
        let t64 = b.cvt(Ty::I64, tid);
        let v = b.ld_global(Ty::I32, MemRef::indexed(p, t64, 4));
        b.set_line(7);
        b.st_global(Ty::I32, MemRef::indexed(p, t64, 4), v);
        let k = b.finish();
        assert_eq!(k.lines, vec![4, 4, 6, 6, 7, 7]);

        let text = k.disasm();
        assert!(text.contains(".loc 4"));
        let parsed = parse_kernel(&text).expect("parse");
        assert_eq!(parsed, k);
        assert_eq!(parsed.disasm(), text);
    }

    #[test]
    fn immediates_round_trip_typed() {
        for v in [
            Value::I32(-3),
            Value::I64(1 << 40),
            Value::U64(0xdead_beef),
            Value::F32(0.5),
            Value::F64(-2.25),
            Value::F64(1e100),
            Value::Pred(false),
        ] {
            let text = crate::ir::format_imm(v);
            assert_eq!(parse_imm(&text).unwrap(), v, "through `{text}`");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_kernel("nonsense").is_err());
        assert!(parse_kernel(".kernel k (regs=1, shared=0B, params=0)\n  0  frob %r0").is_err());
    }
}
