//! The [`Device`] facade: global memory, configuration, cost model and
//! session statistics behind one handle — the simulated analogue of a CUDA
//! context.

use crate::cost::{CostModel, DeviceConfig};
use crate::error::SimError;
use crate::exec::{run_kernel_instrumented, LaunchConfig};
use crate::ir::Kernel;
use crate::memory::{BufferHandle, GlobalMemory};
use crate::profile::{LaunchProfile, ProfileConfig, SessionProfile, SpanKind};
use crate::sanitizer::{HazardReport, LaunchSanitizer, SanitizerConfig};
use crate::stats::{LaunchStats, SessionStats};
use crate::trace::Trace;
use crate::types::{Ty, Value};
use crate::verify::{verify_kernel, VerifyConfig, VerifyReport};

/// A simulated GPU device.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    cost: CostModel,
    global: GlobalMemory,
    stats: SessionStats,
    sanitizer: SanitizerConfig,
    hazards: Vec<HazardReport>,
    verifier: Option<VerifyConfig>,
    verify_reports: Vec<VerifyReport>,
    certifier: Option<crate::cert::CertConfig>,
    cert_reports: Vec<crate::cert::CertReport>,
    session_profile: SessionProfile,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default(), CostModel::default())
    }
}

impl Device {
    /// Create a device with the given configuration and cost model.
    ///
    /// Panics on a malformed configuration; use [`Device::try_new`] to get
    /// the error instead.
    pub fn new(config: DeviceConfig, cost: CostModel) -> Self {
        Device::try_new(config, cost).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create a device, validating the configuration (see
    /// [`DeviceConfig::validate`]) instead of deferring the failure to the
    /// first launch.
    pub fn try_new(config: DeviceConfig, cost: CostModel) -> Result<Self, SimError> {
        config.validate()?;
        let global = GlobalMemory::new(config.global_mem_bytes);
        Ok(Device {
            config,
            cost,
            global,
            stats: SessionStats::default(),
            sanitizer: SanitizerConfig::default(),
            hazards: Vec::new(),
            verifier: None,
            verify_reports: Vec::new(),
            certifier: None,
            cert_reports: Vec::new(),
            session_profile: SessionProfile::default(),
        })
    }

    /// Set the number of host worker threads for subsequent launches
    /// (0 = auto; see [`DeviceConfig::host_threads`]). Results are
    /// bit-identical at any setting.
    pub fn set_host_threads(&mut self, n: u32) {
        self.config.host_threads = n;
    }

    /// Select the execution tier for subsequent launches (see
    /// [`crate::cost::ExecTier`]). Results are bit-identical at any
    /// setting; this is purely a simulator speed knob.
    pub fn set_exec_tier(&mut self, tier: crate::cost::ExecTier) {
        self.config.exec_tier = tier;
    }

    /// Set the sanitizer configuration for subsequent launches (see
    /// [`crate::sanitizer`]). Pass [`SanitizerConfig::default`] to turn
    /// instrumentation back off.
    pub fn set_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.sanitizer = cfg;
    }

    /// The sanitizer configuration in effect.
    pub fn sanitizer(&self) -> &SanitizerConfig {
        &self.sanitizer
    }

    /// Mutable sanitizer configuration (the runtime updates
    /// per-launch ignore ranges through this).
    pub fn sanitizer_mut(&mut self) -> &mut SanitizerConfig {
        &mut self.sanitizer
    }

    /// Hazard reports accumulated across this device's launches, in launch
    /// order. Reports from a launch that *failed* (synccheck) are included:
    /// they are harvested before the error propagates.
    pub fn hazards(&self) -> &[HazardReport] {
        &self.hazards
    }

    /// Drain the accumulated hazard reports.
    pub fn take_hazards(&mut self) -> Vec<HazardReport> {
        std::mem::take(&mut self.hazards)
    }

    /// Enable (or disable, with `None`) the static verifier as a
    /// pre-launch pass: every subsequent launch first runs
    /// [`crate::verify::verify_kernel`] over the kernel at the launch's
    /// block shape and accumulates the report. Verification never aborts
    /// the launch — verdicts are advisory, mirroring the sanitizer.
    pub fn set_verifier(&mut self, cfg: Option<VerifyConfig>) {
        self.verifier = cfg;
    }

    /// Static verification reports accumulated across launches.
    pub fn verify_reports(&self) -> &[VerifyReport] {
        &self.verify_reports
    }

    /// Drain the accumulated verification reports.
    pub fn take_verify_reports(&mut self) -> Vec<VerifyReport> {
        std::mem::take(&mut self.verify_reports)
    }

    /// Enable (or disable, with `None`) the translation validator for
    /// subsequent regions. The device only carries the configuration and
    /// collects reports — certification itself needs the source HIR and
    /// launch plan, so the runtime runs it pre-launch and pushes the
    /// report here (mirroring the verifier; verdicts never abort a
    /// launch).
    pub fn set_certifier(&mut self, cfg: Option<crate::cert::CertConfig>) {
        self.certifier = cfg;
    }

    /// The certifier configuration in effect, when enabled.
    pub fn certifier(&self) -> Option<&crate::cert::CertConfig> {
        self.certifier.as_ref()
    }

    /// Record a certification report for this session.
    pub fn push_cert_report(&mut self, report: crate::cert::CertReport) {
        self.cert_reports.push(report);
    }

    /// Certification reports accumulated across regions, in launch order.
    pub fn cert_reports(&self) -> &[crate::cert::CertReport] {
        &self.cert_reports
    }

    /// Drain the accumulated certification reports.
    pub fn take_cert_reports(&mut self) -> Vec<crate::cert::CertReport> {
        std::mem::take(&mut self.cert_reports)
    }

    /// Enable (or disable, with `None`) the profiler for subsequent
    /// launches and transfers (see [`crate::profile`]). Profiling never
    /// changes modelled cycles or results; it only observes them.
    pub fn set_profiler(&mut self, cfg: Option<ProfileConfig>) {
        self.config.profile = cfg;
    }

    /// The session profile accumulated so far (empty when the profiler
    /// was never enabled).
    pub fn profile(&self) -> &SessionProfile {
        &self.session_profile
    }

    /// Drain the accumulated session profile.
    pub fn take_profile(&mut self) -> SessionProfile {
        std::mem::take(&mut self.session_profile)
    }

    /// A small device for fast unit tests.
    pub fn test_small() -> Self {
        Device::new(DeviceConfig::test_small(), CostModel::default())
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable cost model (for calibration experiments).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Session statistics accumulated so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Reset session statistics (keeps memory contents).
    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }

    /// Total modelled milliseconds elapsed in this session.
    pub fn elapsed_ms(&self) -> f64 {
        self.cost
            .cycles_to_ms(self.stats.total_cycles(), self.config.clock_hz)
    }

    /// Allocate `len` bytes of device global memory.
    pub fn alloc(&mut self, len: u64) -> Result<BufferHandle, SimError> {
        self.global.alloc(len)
    }

    /// Allocate a buffer for `n` elements of type `ty`.
    pub fn alloc_elems(&mut self, ty: Ty, n: u64) -> Result<BufferHandle, SimError> {
        // Checked size: an absurd element count must surface as an
        // allocation failure, not a debug overflow panic (or a wrapped
        // release-mode size that "succeeds" tiny).
        let bytes = n
            .checked_mul(ty.size() as u64)
            .ok_or(SimError::OutOfMemory {
                requested: u64::MAX,
            })?;
        self.global.alloc(bytes)
    }

    /// Copy host bytes to the device (modelled PCIe transfer).
    pub fn memcpy_h2d(&mut self, dst: BufferHandle, src: &[u8]) -> Result<(), SimError> {
        self.global.write_bytes(dst.addr, src)?;
        let cycles = self.cost.transfer_cycles(src.len() as u64);
        self.stats.bytes_h2d += src.len() as u64;
        self.stats.transfer_cycles += cycles;
        if self.config.profile.is_some() {
            self.session_profile
                .add_transfer(SpanKind::H2d, src.len() as u64, cycles);
        }
        Ok(())
    }

    /// Copy device bytes to the host (modelled PCIe transfer).
    pub fn memcpy_d2h(&mut self, src: BufferHandle, dst: &mut [u8]) -> Result<(), SimError> {
        self.global.read_bytes(src.addr, dst)?;
        let cycles = self.cost.transfer_cycles(dst.len() as u64);
        self.stats.bytes_d2h += dst.len() as u64;
        self.stats.transfer_cycles += cycles;
        if self.config.profile.is_some() {
            self.session_profile
                .add_transfer(SpanKind::D2h, dst.len() as u64, cycles);
        }
        Ok(())
    }

    /// Read one typed value from device memory without charging transfer
    /// cost (debug/verification access).
    pub fn peek(&self, ty: Ty, addr: u64) -> Result<Value, SimError> {
        self.global.read(ty, addr)
    }

    /// Write one typed value to device memory without charging transfer
    /// cost (debug/initialization access).
    pub fn poke(&mut self, addr: u64, v: Value) -> Result<(), SimError> {
        self.global.write(addr, v)
    }

    /// Launch `kernel` with the given config and parameters; blocks until
    /// completion (the simulator is synchronous). Returns the launch stats;
    /// cycles are also accumulated into the session.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[Value],
    ) -> Result<LaunchStats, SimError> {
        self.launch_inner(kernel, cfg, params, None)
    }

    /// [`Device::launch`] with a bounded execution trace: capture up to
    /// `limit` warp-instructions (with active masks) for debugging.
    pub fn launch_traced(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[Value],
        limit: usize,
    ) -> Result<(LaunchStats, Trace), SimError> {
        let mut trace = Trace::with_limit(limit);
        let stats = self.launch_inner(kernel, cfg, params, Some(&mut trace))?;
        Ok((stats, trace))
    }

    /// Shared launch path: runs the kernel under the configured sanitizer
    /// (if any) and harvests hazard reports on success *and* failure, so
    /// synccheck reports survive the launch erroring out.
    fn launch_inner(
        &mut self,
        kernel: &Kernel,
        cfg: LaunchConfig,
        params: &[Value],
        trace: Option<&mut Trace>,
    ) -> Result<LaunchStats, SimError> {
        if let Some(vc) = &self.verifier {
            let vc = VerifyConfig {
                warp_size: self.config.warp_size,
                shared_banks: self.config.shared_banks,
                ..*vc
            };
            self.verify_reports.push(verify_kernel(kernel, cfg, &vc));
        }
        let mut san = self
            .sanitizer
            .level
            .enabled()
            .then(|| LaunchSanitizer::new(self.sanitizer.clone()));
        let mut prof = self
            .config
            .profile
            .as_ref()
            .map(|pc| LaunchProfile::new(kernel, cfg, self.config.num_sms, pc));
        let result = run_kernel_instrumented(
            kernel,
            cfg,
            params,
            &mut self.global,
            &self.config,
            &self.cost,
            trace,
            san.as_mut(),
            prof.as_mut(),
        );
        let hazard_count = san.as_ref().map_or(0, |s| s.hazard_count());
        if let Some(s) = san.as_mut() {
            self.hazards.append(&mut s.take_reports());
        }
        if let Some(mut lp) = prof {
            // Keep the (possibly partial) attribution of a failed launch,
            // like hazard reports above.
            lp.finish(self.cost.launch_overhead, result.is_ok());
            self.session_profile.add_launch(lp);
        }
        match result {
            Ok(mut stats) => {
                stats.hazards = hazard_count;
                self.stats.launches += 1;
                self.stats.kernel_cycles += stats.cycles;
                self.stats.totals += stats;
                Ok(stats)
            }
            Err(e) => {
                // The launch failed mid-flight; keep the hazard count in
                // the session totals so it is not silently lost.
                self.stats.totals.hazards += hazard_count;
                Err(e)
            }
        }
    }

    /// Typed host->device copy of a slice of `f64`-convertible values.
    pub fn upload_values(&mut self, dst: BufferHandle, vals: &[Value]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            let (b, n) = v.to_bytes();
            bytes.extend_from_slice(&b[..n]);
        }
        self.memcpy_h2d(dst, &bytes)
    }

    /// Typed device->host copy of `n` values of type `ty`.
    pub fn download_values(
        &mut self,
        src: BufferHandle,
        ty: Ty,
        n: usize,
    ) -> Result<Vec<Value>, SimError> {
        let mut bytes = vec![0u8; n * ty.size()];
        self.memcpy_d2h(src, &mut bytes)?;
        Ok((0..n)
            .map(|i| Value::from_bytes(ty, &bytes[i * ty.size()..]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{BinOp, MemRef, SpecialReg};

    /// Regression: an element count whose byte size overflows `u64` is an
    /// allocation error, not a debug multiply panic (or a wrapped tiny
    /// allocation in release).
    #[test]
    fn alloc_elems_overflow_is_oom() {
        let mut d = Device::test_small();
        assert!(matches!(
            d.alloc_elems(crate::types::Ty::F64, u64::MAX / 2),
            Err(SimError::OutOfMemory { .. })
        ));
        // A sane allocation still works afterwards.
        assert!(d.alloc_elems(crate::types::Ty::F64, 8).is_ok());
    }

    #[test]
    fn alloc_and_transfer_roundtrip() {
        let mut d = Device::test_small();
        let buf = d.alloc(16).unwrap();
        d.memcpy_h2d(
            buf,
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
        )
        .unwrap();
        let mut out = [0u8; 16];
        d.memcpy_d2h(buf, &mut out).unwrap();
        assert_eq!(out[0], 1);
        assert_eq!(out[15], 16);
        assert_eq!(d.stats().bytes_h2d, 16);
        assert_eq!(d.stats().bytes_d2h, 16);
        assert!(d.stats().transfer_cycles > 0);
    }

    #[test]
    fn launch_accumulates_session_stats() {
        let mut d = Device::test_small();
        let buf = d.alloc_elems(Ty::I32, 32).unwrap();
        let mut b = KernelBuilder::new("k");
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let v = b.bin(BinOp::Mul, Ty::I32, tid, Value::I32(3));
        let t64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(out, t64, 4), v);
        let k = b.finish();
        let s = d
            .launch(&k, LaunchConfig::d1(1, 32), &[Value::U64(buf.addr)])
            .unwrap();
        assert_eq!(d.stats().launches, 1);
        assert_eq!(d.stats().kernel_cycles, s.cycles);
        assert!(d.elapsed_ms() > 0.0);
        assert_eq!(d.peek(Ty::I32, buf.addr + 4).unwrap(), Value::I32(3));
    }

    #[test]
    fn upload_download_values() {
        let mut d = Device::test_small();
        let buf = d.alloc_elems(Ty::F64, 3).unwrap();
        d.upload_values(buf, &[Value::F64(1.0), Value::F64(2.0), Value::F64(3.0)])
            .unwrap();
        let vals = d.download_values(buf, Ty::F64, 3).unwrap();
        assert_eq!(
            vals,
            vec![Value::F64(1.0), Value::F64(2.0), Value::F64(3.0)]
        );
    }

    #[test]
    fn try_new_rejects_bad_config() {
        let bad = DeviceConfig {
            segment_bytes: 100,
            ..DeviceConfig::test_small()
        };
        let err = Device::try_new(bad, CostModel::default()).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }), "got {err:?}");
        assert!(err.to_string().contains("segment_bytes"));
    }

    #[test]
    fn reset_stats() {
        let mut d = Device::test_small();
        let buf = d.alloc(8).unwrap();
        d.memcpy_h2d(buf, &[0u8; 8]).unwrap();
        assert!(d.stats().transfer_cycles > 0);
        d.reset_stats();
        assert_eq!(d.stats().total_cycles(), 0);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{BinOp, MemRef, SpecialReg};

    /// A kernel exercising every stall bucket: global load/store, a
    /// conflicted shared store, a barrier, and ALU work — with a line
    /// table so the rollup has something to attribute to.
    fn profiled_kernel() -> Kernel {
        let mut b = KernelBuilder::new("prof_k");
        b.set_line(3);
        let inp = b.param(0);
        let out = b.param(1);
        let tid = b.special(SpecialReg::TidX);
        let t64 = b.cvt(Ty::I64, tid);
        let v = b.ld_global(Ty::F32, MemRef::indexed(inp, t64, 4));
        b.set_line(5);
        let slab = b.alloc_shared(32 * 128, 4) as u64;
        // scale 128: all lanes hit bank 0 -> 32-way conflict.
        let m = MemRef {
            base: Value::U64(slab).into(),
            index: Some(tid),
            scale: 128,
            disp: 0,
        };
        b.st_shared(Ty::F32, m, v);
        b.bar();
        b.set_line(7);
        let w = b.bin(BinOp::Add, Ty::F32, v, v);
        b.st_global(Ty::F32, MemRef::indexed(out, t64, 4), w);
        b.finish()
    }

    fn run_profiled(host_threads: u32) -> (LaunchStats, SessionProfile) {
        let cfg = DeviceConfig {
            host_threads,
            profile: Some(ProfileConfig::default()),
            ..DeviceConfig::test_small()
        };
        let mut d = Device::new(cfg, CostModel::default());
        let inp = d.alloc_elems(Ty::F32, 128).unwrap();
        let out = d.alloc_elems(Ty::F32, 128).unwrap();
        d.memcpy_h2d(inp, &[0u8; 128 * 4]).unwrap();
        let stats = d
            .launch(
                &profiled_kernel(),
                LaunchConfig::d1(4, 32),
                &[Value::U64(inp.addr), Value::U64(out.addr)],
            )
            .unwrap();
        let mut buf = [0u8; 128 * 4];
        d.memcpy_d2h(out, &mut buf).unwrap();
        (stats, d.take_profile())
    }

    /// The stall decomposition partitions the charged cycles, the profile
    /// counters agree with [`LaunchStats`], and both buckets (per-PC and
    /// per-interval) sum to the same totals.
    #[test]
    fn profile_counters_agree_with_stats() {
        let (stats, prof) = run_profiled(1);
        assert_eq!(prof.launches.len(), 1);
        let lp = &prof.launches[0];
        let t = lp.totals();
        assert_eq!(t.warp_insts, stats.warp_insts);
        assert_eq!(t.lane_insts, stats.lane_insts);
        assert_eq!(t.global_accesses, stats.global_accesses);
        assert_eq!(t.global_transactions, stats.global_transactions);
        assert_eq!(t.shared_accesses, stats.shared_accesses);
        assert_eq!(t.shared_ways, stats.shared_ways);
        assert_eq!(t.atomics, stats.atomics);
        assert_eq!(t.barriers, stats.barriers);
        // Every stall bucket this kernel exercises is populated.
        assert!(t.issue_cycles > 0);
        assert!(t.alu_cycles > 0);
        assert!(t.mem_cycles > 0);
        assert!(t.shared_cycles > 0);
        assert!(t.conflict_cycles > 0, "128-stride store must conflict");
        assert!(t.barrier_cycles > 0);
        // Interval buckets partition the same cycles as PC buckets.
        let iv: u64 = lp.intervals.iter().map(|c| c.cycles()).sum();
        assert_eq!(iv, t.cycles());
        // The barrier split produced two intervals.
        assert_eq!(lp.intervals.len(), 2);
        assert_eq!(lp.blocks, 4);
        // Line rollup covers lines 3, 5, 7.
        let lines: Vec<u32> = lp.line_rollup().iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![3, 5, 7]);
        // Timeline: h2d, kernel, d2h in program order.
        let kinds: Vec<SpanKind> = prof.timeline.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::H2d, SpanKind::Kernel, SpanKind::D2h]);
        assert_eq!(prof.timeline[1].cycles, stats.cycles);
    }

    /// Profiling is deterministic: every exported byte is identical at any
    /// host thread count, and enabling it never changes modelled cycles.
    #[test]
    fn profile_is_bit_identical_across_host_threads() {
        let (stats1, prof1) = run_profiled(1);
        for threads in [2, 4] {
            let (stats, prof) = run_profiled(threads);
            assert_eq!(stats1, stats);
            assert_eq!(prof1.to_json(), prof.to_json());
            assert_eq!(prof1.to_chrome_trace(), prof.to_chrome_trace());
            assert_eq!(prof1.report(None), prof.report(None));
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::{BinOp, SpecialReg};

    #[test]
    fn traced_launch_captures_warp_instructions() {
        let mut d = Device::test_small();
        let mut b = KernelBuilder::new("traced");
        let tid = b.special(SpecialReg::TidX);
        let _ = b.bin(BinOp::Add, Ty::I32, tid, Value::I32(1));
        let k = b.finish();
        let (stats, trace) = d
            .launch_traced(&k, LaunchConfig::d1(2, 64), &[], 100)
            .unwrap();
        // 2 blocks x 2 warps x 3 instructions (2 + implicit ret).
        assert_eq!(trace.events().len(), 12);
        assert!(!trace.truncated());
        assert_eq!(stats.warp_insts, 12);
        let r = trace.render();
        assert!(r.contains("%tid.x"), "{r}");
        assert!(r.contains("add.s32"), "{r}");
        assert!(r.contains("[32 lanes]"), "{r}");
        // Limit is respected.
        let (_, t2) = d
            .launch_traced(&k, LaunchConfig::d1(2, 64), &[], 3)
            .unwrap();
        assert_eq!(t2.events().len(), 3);
        assert!(t2.truncated());
    }
}
