//! Ergonomic construction of [`Kernel`]s.
//!
//! [`KernelBuilder`] manages register allocation, label creation/placement
//! and shared-memory layout, and verifies structural invariants when
//! finishing (`all labels placed`, `branch targets in range`, ...). The
//! compiler crates build every kernel through this interface.

use crate::ir::{
    AtomOp, BinOp, CmpOp, Inst, Kernel, Label, MemRef, Operand, Reg, SpecialReg, UnOp,
};
use crate::types::{Ty, Value};

/// Incremental builder for a [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Inst>,
    lines: Vec<u32>,
    cur_line: u32,
    labels: Vec<Option<usize>>,
    next_reg: u32,
    shared_bytes: usize,
    num_params: u32,
}

impl KernelBuilder {
    /// Start building a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            lines: Vec::new(),
            cur_line: 0,
            labels: Vec::new(),
            next_reg: 0,
            shared_bytes: 0,
            num_params: 0,
        }
    }

    /// Set the current 1-based source line; every instruction emitted from
    /// now on is attributed to it (0 = unknown). The setting persists until
    /// the next call, so statements without their own span inherit the
    /// enclosing construct's line.
    pub fn set_line(&mut self, line: u32) {
        self.cur_line = line;
    }

    /// The source line instructions are currently attributed to.
    pub fn current_line(&self) -> u32 {
        self.cur_line
    }

    /// Allocate a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Declare that the kernel takes (at least) `n` parameters.
    pub fn set_num_params(&mut self, n: u32) {
        self.num_params = self.num_params.max(n);
    }

    /// Reserve `bytes` of shared memory aligned to `align`; returns the byte
    /// offset of the reserved region.
    pub fn alloc_shared(&mut self, bytes: usize, align: usize) -> usize {
        debug_assert!(align.is_power_of_two());
        let off = (self.shared_bytes + align - 1) & !(align - 1);
        self.shared_bytes = off + bytes;
        off
    }

    /// Total shared memory reserved so far.
    pub fn shared_bytes(&self) -> usize {
        self.shared_bytes
    }

    /// Create a new, not-yet-placed label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Place `label` at the current instruction position.
    ///
    /// # Panics
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} placed twice");
        *slot = Some(self.insts.len());
    }

    /// Append a raw instruction, attributed to the current source line.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
        self.lines.push(self.cur_line);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    // ---- convenience emitters -------------------------------------------

    /// `dst = value`
    pub fn mov_imm(&mut self, value: Value) -> Reg {
        let dst = self.reg();
        self.emit(Inst::MovImm { dst, value });
        dst
    }

    /// `dst = src` into a fresh register.
    pub fn mov(&mut self, src: Reg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov { dst, src });
        dst
    }

    /// Copy `src` into an existing register `dst`.
    pub fn mov_to(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::Mov { dst, src });
    }

    /// Set an existing register to an immediate.
    pub fn mov_imm_to(&mut self, dst: Reg, value: Value) {
        self.emit(Inst::MovImm { dst, value });
    }

    /// Read a special register into a fresh register.
    pub fn special(&mut self, sr: SpecialReg) -> Reg {
        let dst = self.reg();
        self.emit(Inst::ReadSpecial { dst, sr });
        dst
    }

    /// Read launch parameter `idx` into a fresh register.
    pub fn param(&mut self, idx: u32) -> Reg {
        self.set_num_params(idx + 1);
        let dst = self.reg();
        self.emit(Inst::ReadParam { dst, idx });
        dst
    }

    /// `dst = a <op> b` at `ty` into a fresh register.
    pub fn bin(&mut self, op: BinOp, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Bin {
            op,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `dst = a <op> b` at `ty` into an existing register.
    pub fn bin_to(
        &mut self,
        dst: Reg,
        op: BinOp,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.emit(Inst::Bin {
            op,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `dst = a <cmp> b` at `ty` producing a fresh predicate register.
    pub fn cmp(&mut self, op: CmpOp, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Cmp {
            op,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, ty: Ty, a: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Un {
            op,
            ty,
            dst,
            a: a.into(),
        });
        dst
    }

    /// `dst = cond ? a : b` into a fresh register.
    pub fn select(&mut self, cond: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Select {
            dst,
            cond,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Convert `src` to `ty` into a fresh register.
    pub fn cvt(&mut self, ty: Ty, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Cvt {
            dst,
            ty,
            src: src.into(),
        });
        dst
    }

    /// Convert into an existing register.
    pub fn cvt_to(&mut self, dst: Reg, ty: Ty, src: impl Into<Operand>) {
        self.emit(Inst::Cvt {
            dst,
            ty,
            src: src.into(),
        });
    }

    /// Load from global memory into a fresh register.
    pub fn ld_global(&mut self, ty: Ty, mref: MemRef) -> Reg {
        let dst = self.reg();
        self.emit(Inst::LdGlobal { ty, dst, mref });
        dst
    }

    /// Load from global memory into an existing register.
    pub fn ld_global_to(&mut self, dst: Reg, ty: Ty, mref: MemRef) {
        self.emit(Inst::LdGlobal { ty, dst, mref });
    }

    /// Store to global memory.
    pub fn st_global(&mut self, ty: Ty, mref: MemRef, src: impl Into<Operand>) {
        self.emit(Inst::StGlobal {
            ty,
            src: src.into(),
            mref,
        });
    }

    /// Load from shared memory into a fresh register.
    pub fn ld_shared(&mut self, ty: Ty, mref: MemRef) -> Reg {
        let dst = self.reg();
        self.emit(Inst::LdShared { ty, dst, mref });
        dst
    }

    /// Load from shared memory into an existing register.
    pub fn ld_shared_to(&mut self, dst: Reg, ty: Ty, mref: MemRef) {
        self.emit(Inst::LdShared { ty, dst, mref });
    }

    /// Store to shared memory.
    pub fn st_shared(&mut self, ty: Ty, mref: MemRef, src: impl Into<Operand>) {
        self.emit(Inst::StShared {
            ty,
            src: src.into(),
            mref,
        });
    }

    /// Atomic RMW on global memory.
    pub fn atom_global(
        &mut self,
        op: AtomOp,
        ty: Ty,
        mref: MemRef,
        src: impl Into<Operand>,
        want_old: bool,
    ) -> Option<Reg> {
        let dst = if want_old { Some(self.reg()) } else { None };
        self.emit(Inst::AtomGlobal {
            op,
            ty,
            mref,
            src: src.into(),
            dst,
        });
        dst
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Inst::Bar);
    }

    /// Unconditional branch.
    pub fn bra(&mut self, target: Label) {
        self.emit(Inst::Bra { target, cond: None });
    }

    /// Branch to `target` if predicate `cond` is true.
    pub fn bra_if(&mut self, cond: Reg, target: Label) {
        self.emit(Inst::Bra {
            target,
            cond: Some((cond, true)),
        });
    }

    /// Branch to `target` if predicate `cond` is false.
    pub fn bra_unless(&mut self, cond: Reg, target: Label) {
        self.emit(Inst::Bra {
            target,
            cond: Some((cond, false)),
        });
    }

    /// Thread exit.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Finish the kernel, verifying structural invariants. A violated
    /// invariant (a label created but never placed, a branch targeting an
    /// unknown label) is a compiler bug, surfaced as
    /// [`SimError::KernelBuild`] so a driver can report it as a per-case
    /// diagnostic instead of aborting the whole process.
    pub fn try_finish(mut self) -> Result<Kernel, crate::error::SimError> {
        let build_err = |name: &str, reason: String| crate::error::SimError::KernelBuild {
            kernel: name.to_string(),
            reason,
        };
        // Implicit ret at the end keeps codegen simpler.
        if !matches!(self.insts.last(), Some(Inst::Ret)) {
            self.insts.push(Inst::Ret);
            self.lines.push(self.cur_line);
        }
        // Normalize: an all-unknown line table carries no information and
        // is stored empty, so kernels built without `set_line` compare
        // equal to hand-constructed ones (and disasm round-trips).
        if self.lines.iter().all(|&l| l == 0) {
            self.lines.clear();
        }
        let mut label_targets: Vec<usize> = Vec::with_capacity(self.labels.len());
        for (i, t) in self.labels.iter().enumerate() {
            match t {
                Some(t) => label_targets.push(*t),
                None => {
                    return Err(build_err(
                        &self.name,
                        format!("label L{i} never placed in {}", self.name),
                    ))
                }
            }
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Inst::Bra { target, .. } = inst {
                let t = label_targets
                    .get(target.0 as usize)
                    .copied()
                    .unwrap_or(usize::MAX);
                if t > self.insts.len() {
                    return Err(build_err(
                        &self.name,
                        format!("branch at {i} targets out-of-range label {target}"),
                    ));
                }
            }
        }
        Ok(Kernel {
            name: self.name,
            insts: self.insts,
            label_targets,
            num_regs: self.next_reg,
            shared_bytes: self.shared_bytes,
            num_params: self.num_params,
            lines: self.lines,
        })
    }

    /// [`KernelBuilder::try_finish`], panicking on structural bugs — the
    /// convenient form for tests and hand-built kernels.
    ///
    /// # Panics
    /// Panics if a label was created but never placed, or a branch targets an
    /// unknown label.
    pub fn finish(self) -> Kernel {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_kernel() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov_imm(Value::I32(41));
        let y = b.bin(BinOp::Add, Ty::I32, x, Value::I32(1));
        let p = b.param(0);
        b.st_global(Ty::I32, MemRef::direct(p), y);
        let k = b.finish();
        assert_eq!(k.num_params, 1);
        assert_eq!(k.num_regs, 3);
        // Implicit ret appended.
        assert!(matches!(k.insts.last(), Some(Inst::Ret)));
    }

    #[test]
    fn line_table_tracks_set_line() {
        let mut b = KernelBuilder::new("k");
        assert_eq!(b.current_line(), 0);
        let x = b.mov_imm(Value::I32(1)); // line 0 (unknown)
        b.set_line(5);
        let y = b.bin(BinOp::Add, Ty::I32, x, Value::I32(1)); // line 5
        b.set_line(9);
        let p = b.param(0); // line 9
        b.st_global(Ty::I32, MemRef::direct(p), y); // line 9
        let k = b.finish();
        // Implicit ret inherits the last line.
        assert_eq!(k.lines, vec![0, 5, 9, 9, 9]);
        assert_eq!(k.line_of(0), None);
        assert_eq!(k.line_of(1), Some(5));
    }

    #[test]
    fn all_unknown_line_table_is_normalized_empty() {
        let mut b = KernelBuilder::new("k");
        b.mov_imm(Value::I32(1));
        let k = b.finish();
        assert!(k.lines.is_empty());
    }

    #[test]
    fn shared_alloc_alignment() {
        let mut b = KernelBuilder::new("k");
        let a = b.alloc_shared(3, 1);
        let c = b.alloc_shared(8, 8);
        assert_eq!(a, 0);
        assert_eq!(c, 8);
        assert_eq!(b.shared_bytes(), 16);
    }

    #[test]
    fn labels_resolve() {
        let mut b = KernelBuilder::new("k");
        let top = b.new_label();
        let done = b.new_label();
        b.place(top);
        let c = b.mov_imm(Value::Pred(true));
        b.bra_if(c, done);
        b.bra(top);
        b.place(done);
        let k = b.finish();
        assert_eq!(k.target(Label(0)), 0);
        assert_eq!(k.target(Label(1)), 3);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        b.bra(l);
        let _ = b.finish();
    }

    /// Regression: `try_finish` turns the structural panic into a
    /// [`SimError::KernelBuild`] a driver can report per-case.
    #[test]
    fn unplaced_label_is_a_build_error() {
        let mut b = KernelBuilder::new("broken");
        let l = b.new_label();
        b.bra(l);
        let err = b.try_finish().unwrap_err();
        match &err {
            crate::error::SimError::KernelBuild { kernel, reason } => {
                assert_eq!(kernel, "broken");
                assert!(reason.contains("never placed"), "{reason}");
            }
            other => panic!("expected KernelBuild, got {other:?}"),
        }
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn try_finish_ok_matches_finish() {
        let mut b = KernelBuilder::new("k");
        let top = b.new_label();
        b.place(top);
        b.ret();
        let k = b.try_finish().unwrap();
        assert_eq!(k.target(Label(0)), 0);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn double_place_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        b.place(l);
        b.place(l);
    }
}
