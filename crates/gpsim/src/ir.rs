//! The kernel intermediate representation executed by the simulator.
//!
//! The IR is a flat, PTX-like instruction list with labels resolved to
//! instruction indices. Each thread owns a register file of [`Value`]s;
//! instructions are typed. Control flow uses conditional/unconditional
//! branches; the interpreter provides SIMT divergence semantics on top
//! (see [`crate::exec`]).

use crate::types::{Ty, Value};
use std::fmt;

/// A virtual register index into a thread's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// An instruction operand: either a register or an immediate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    Reg(Reg),
    Imm(Value),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Special (read-only) hardware registers, as in CUDA/PTX.
///
/// These are the CUDA builtins of the paper's Table 1: `threadIdx`,
/// `blockDim`, `blockIdx`, `gridDim` (plus Y/Z where defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `threadIdx.x`
    TidX,
    /// `threadIdx.y`
    TidY,
    /// `threadIdx.z`
    TidZ,
    /// `blockDim.x`
    NTidX,
    /// `blockDim.y`
    NTidY,
    /// `blockDim.z`
    NTidZ,
    /// `blockIdx.x`
    CtaIdX,
    /// `blockIdx.y`
    CtaIdY,
    /// `gridDim.x`
    NCtaIdX,
    /// `gridDim.y`
    NCtaIdY,
    /// Linear thread id within the block: `threadIdx.y * blockDim.x + threadIdx.x`.
    LaneLinear,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NTidZ => "%ntid.z",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
            SpecialReg::LaneLinear => "%linear",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic/logical operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Comparison operations producing predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Unary math operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value (`fabs`/`abs`).
    Abs,
    /// Square root (float types only).
    Sqrt,
    /// Logical not (predicates) / bitwise not (integers).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Not => "not",
        };
        f.write_str(s)
    }
}

/// A memory reference: `base + index * scale + disp`, all in bytes.
///
/// For global accesses `base` evaluates to a device byte address (usually a
/// kernel parameter); for shared accesses it is a byte offset into the
/// block's shared memory window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRef {
    pub base: Operand,
    /// Optional integer index register (interpreted as i64).
    pub index: Option<Reg>,
    /// Byte scale applied to `index` (element size, typically).
    pub scale: u64,
    /// Constant byte displacement.
    pub disp: i64,
}

impl MemRef {
    /// A reference at exactly the address/offset in `base`.
    pub fn direct(base: impl Into<Operand>) -> Self {
        MemRef {
            base: base.into(),
            index: None,
            scale: 1,
            disp: 0,
        }
    }

    /// `base + index * scale` (the common array-element form).
    pub fn indexed(base: impl Into<Operand>, index: Reg, scale: u64) -> Self {
        MemRef {
            base: base.into(),
            index: Some(index),
            scale,
            disp: 0,
        }
    }

    /// Add a constant byte displacement.
    pub fn with_disp(mut self, disp: i64) -> Self {
        self.disp = disp;
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some(idx) = self.index {
            write!(f, " + {idx}*{}", self.scale)?;
        }
        if self.disp != 0 {
            write!(f, " + {}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// Atomic read-modify-write operations on global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    Add,
    Min,
    Max,
    And,
    Or,
    Xor,
    Exch,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::And => "and",
            AtomOp::Or => "or",
            AtomOp::Xor => "xor",
            AtomOp::Exch => "exch",
        };
        f.write_str(s)
    }
}

/// A branch target label, resolved to an instruction index at finalize time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = imm`
    MovImm { dst: Reg, value: Value },
    /// `dst = src`
    Mov { dst: Reg, src: Reg },
    /// `dst = special_register` (as `I32`, except addresses).
    ReadSpecial { dst: Reg, sr: SpecialReg },
    /// `dst = param[idx]` — read a kernel launch parameter.
    ReadParam { dst: Reg, idx: u32 },
    /// `dst = a <op> b` at type `ty` (operands converted to `ty` first).
    Bin {
        op: BinOp,
        ty: Ty,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = a <cmp> b` at type `ty`, producing a predicate.
    Cmp {
        op: CmpOp,
        ty: Ty,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = <op> a` at type `ty`.
    Un {
        op: UnOp,
        ty: Ty,
        dst: Reg,
        a: Operand,
    },
    /// `dst = cond ? a : b`
    Select {
        dst: Reg,
        cond: Reg,
        a: Operand,
        b: Operand,
    },
    /// `dst = convert(src, ty)`
    Cvt { dst: Reg, ty: Ty, src: Operand },
    /// Load `ty` from global memory.
    LdGlobal { ty: Ty, dst: Reg, mref: MemRef },
    /// Store `ty` to global memory.
    StGlobal { ty: Ty, src: Operand, mref: MemRef },
    /// Load `ty` from the block's shared memory.
    LdShared { ty: Ty, dst: Reg, mref: MemRef },
    /// Store `ty` to the block's shared memory.
    StShared { ty: Ty, src: Operand, mref: MemRef },
    /// Atomic read-modify-write on global memory; optionally returns the old value.
    AtomGlobal {
        op: AtomOp,
        ty: Ty,
        mref: MemRef,
        src: Operand,
        dst: Option<Reg>,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Bar,
    /// Branch to `target`; conditional if `cond` is set (branch taken when
    /// predicate equals `expect`).
    Bra {
        target: Label,
        cond: Option<(Reg, bool)>,
    },
    /// Thread exit.
    Ret,
}

impl Inst {
    /// True if this instruction writes register `r`.
    pub fn writes(&self, r: Reg) -> bool {
        self.def() == Some(r)
    }

    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::MovImm { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::ReadSpecial { dst, .. }
            | Inst::ReadParam { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Cvt { dst, .. }
            | Inst::LdGlobal { dst, .. }
            | Inst::LdShared { dst, .. } => Some(*dst),
            Inst::AtomGlobal { dst, .. } => *dst,
            _ => None,
        }
    }

    /// True for instructions that access global memory.
    pub fn is_global_access(&self) -> bool {
        matches!(
            self,
            Inst::LdGlobal { .. } | Inst::StGlobal { .. } | Inst::AtomGlobal { .. }
        )
    }

    /// True for instructions that access shared memory.
    pub fn is_shared_access(&self) -> bool {
        matches!(self, Inst::LdShared { .. } | Inst::StShared { .. })
    }

    /// Call `f` on every register this instruction *reads* (sources,
    /// predicates, and memory-reference base/index registers).
    ///
    /// The match is deliberately exhaustive — adding an `Inst` variant
    /// without deciding its uses must not compile.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        fn op(o: &Operand, f: &mut dyn FnMut(Reg)) {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        }
        fn mem(m: &MemRef, f: &mut dyn FnMut(Reg)) {
            if let Operand::Reg(r) = m.base {
                f(r);
            }
            if let Some(r) = m.index {
                f(r);
            }
        }
        match self {
            Inst::MovImm { .. } | Inst::ReadSpecial { .. } | Inst::ReadParam { .. } => {}
            Inst::Mov { src, .. } => f(*src),
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                op(a, &mut f);
                op(b, &mut f);
            }
            Inst::Un { a, .. } => op(a, &mut f),
            Inst::Select { cond, a, b, .. } => {
                f(*cond);
                op(a, &mut f);
                op(b, &mut f);
            }
            Inst::Cvt { src, .. } => op(src, &mut f),
            Inst::LdGlobal { mref, .. } | Inst::LdShared { mref, .. } => mem(mref, &mut f),
            Inst::StGlobal { src, mref, .. } | Inst::StShared { src, mref, .. } => {
                op(src, &mut f);
                mem(mref, &mut f);
            }
            Inst::AtomGlobal { mref, src, .. } => {
                op(src, &mut f);
                mem(mref, &mut f);
            }
            Inst::Bar | Inst::Ret => {}
            Inst::Bra { cond, .. } => {
                if let Some((r, _)) = cond {
                    f(*r);
                }
            }
        }
    }
}

/// A compiled kernel: a finalized instruction list plus launch metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Human-readable kernel name (shows up in stats and errors).
    pub name: String,
    /// The instruction stream. Branch targets are instruction indices.
    pub insts: Vec<Inst>,
    /// Resolved label table: `label_targets[label.0]` = instruction index.
    pub label_targets: Vec<usize>,
    /// Number of virtual registers per thread.
    pub num_regs: u32,
    /// Bytes of shared memory required per block.
    pub shared_bytes: usize,
    /// Number of launch parameters expected.
    pub num_params: u32,
    /// Source line table: `lines[i]` is the 1-based source line that
    /// instruction `i` was generated from, `0` = unknown. Either empty
    /// (no line info at all) or exactly `insts.len()` long. The profiler
    /// uses it to roll per-PC costs up to OpenACC directive lines.
    pub lines: Vec<u32>,
}

impl Kernel {
    /// Resolve a label to its instruction index.
    ///
    /// # Panics
    /// Panics if the label was never placed (builder bug).
    pub fn target(&self, l: Label) -> usize {
        self.label_targets[l.0 as usize]
    }

    /// The 1-based source line instruction `pc` was generated from, or
    /// `None` when unknown (no line table, or line recorded as 0).
    pub fn line_of(&self, pc: usize) -> Option<u32> {
        match self.lines.get(pc) {
            Some(0) | None => None,
            Some(&l) => Some(l),
        }
    }

    /// Disassemble the kernel to a readable listing (for golden tests and
    /// debugging).
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            ".kernel {} (regs={}, shared={}B, params={})",
            self.name, self.num_regs, self.shared_bytes, self.num_params
        );
        // Invert label table for printing.
        let mut labels_at: Vec<Vec<usize>> = vec![Vec::new(); self.insts.len() + 1];
        for (li, &ti) in self.label_targets.iter().enumerate() {
            if ti <= self.insts.len() {
                labels_at[ti].push(li);
            }
        }
        // Current source line; `.loc N` directives are emitted on change
        // only, so a kernel without line info lists exactly as before.
        let mut cur_line = 0u32;
        for (i, inst) in self.insts.iter().enumerate() {
            for &l in &labels_at[i] {
                let _ = writeln!(out, "L{l}:");
            }
            let line = self.lines.get(i).copied().unwrap_or(0);
            if line != cur_line {
                let _ = writeln!(out, "  .loc {line}");
                cur_line = line;
            }
            let _ = writeln!(out, "  {:4}  {}", i, format_inst(inst));
        }
        for &l in &labels_at[self.insts.len()] {
            let _ = writeln!(out, "L{l}:");
        }
        out
    }
}

/// Render an immediate with its type made explicit in the spelling, so
/// the listing parses back to the same [`Value`]: `I32` is a bare
/// decimal, `I64` carries an `L` suffix, `U64` is hex, `F32` carries an
/// `f` suffix, `F64` always shows a `.`/exponent, predicates are
/// `true`/`false`.
pub fn format_imm(v: Value) -> String {
    match v {
        Value::I32(x) => format!("{x}"),
        Value::I64(x) => format!("{x}L"),
        Value::U64(x) => format!("{x:#x}"),
        Value::F32(x) => format!("{x:?}f"),
        Value::F64(x) => format!("{x:?}"),
        Value::Pred(x) => format!("{x}"),
    }
}

fn format_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => format_imm(*v),
    }
}

fn format_mref(m: &MemRef) -> String {
    let mut s = format!("[{}", format_operand(&m.base));
    if let Some(idx) = m.index {
        s.push_str(&format!(" + {idx}*{}", m.scale));
    }
    if m.disp != 0 {
        s.push_str(&format!(" + {}", m.disp));
    }
    s.push(']');
    s
}

/// Render one instruction as text (used by `disasm` and the tracer).
/// [`crate::disasm::parse_kernel`] is the exact inverse.
pub fn format_inst(inst: &Inst) -> String {
    let op_s = format_operand;
    let mref_s = format_mref;
    match inst {
        Inst::MovImm { dst, value } => format!("mov {dst}, {}", format_imm(*value)),
        Inst::Mov { dst, src } => format!("mov {dst}, {src}"),
        Inst::ReadSpecial { dst, sr } => format!("mov {dst}, {sr}"),
        Inst::ReadParam { dst, idx } => format!("ld.param {dst}, [{idx}]"),
        Inst::Bin { op, ty, dst, a, b } => {
            format!("{op}.{ty} {dst}, {}, {}", op_s(a), op_s(b))
        }
        Inst::Cmp { op, ty, dst, a, b } => {
            format!("setp.{op}.{ty} {dst}, {}, {}", op_s(a), op_s(b))
        }
        Inst::Un { op, ty, dst, a } => format!("{op}.{ty} {dst}, {}", op_s(a)),
        Inst::Select { dst, cond, a, b } => {
            format!("selp {dst}, {cond}, {}, {}", op_s(a), op_s(b))
        }
        Inst::Cvt { dst, ty, src } => format!("cvt.{ty} {dst}, {}", op_s(src)),
        Inst::LdGlobal { ty, dst, mref } => format!("ld.global.{ty} {dst}, {}", mref_s(mref)),
        Inst::StGlobal { ty, src, mref } => {
            format!("st.global.{ty} {}, {}", mref_s(mref), op_s(src))
        }
        Inst::LdShared { ty, dst, mref } => format!("ld.shared.{ty} {dst}, {}", mref_s(mref)),
        Inst::StShared { ty, src, mref } => {
            format!("st.shared.{ty} {}, {}", mref_s(mref), op_s(src))
        }
        Inst::AtomGlobal {
            op,
            ty,
            mref,
            src,
            dst,
        } => match dst {
            Some(d) => format!("atom.global.{op}.{ty} {d}, {}, {}", mref_s(mref), op_s(src)),
            None => format!("red.global.{op}.{ty} {}, {}", mref_s(mref), op_s(src)),
        },
        Inst::Bar => "bar.sync 0".to_string(),
        Inst::Bra { target, cond } => match cond {
            Some((r, true)) => format!("@{r} bra {target}"),
            Some((r, false)) => format!("@!{r} bra {target}"),
            None => format!("bra {target}"),
        },
        Inst::Ret => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_constructors() {
        let r = Reg(3);
        let m = MemRef::indexed(Reg(1), r, 4).with_disp(8);
        assert_eq!(m.index, Some(r));
        assert_eq!(m.scale, 4);
        assert_eq!(m.disp, 8);
        let d = MemRef::direct(Value::U64(16));
        assert_eq!(d.index, None);
        assert_eq!(d.scale, 1);
    }

    #[test]
    fn inst_def_and_classes() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            dst: Reg(5),
            a: Reg(1).into(),
            b: Operand::Imm(Value::I32(2)),
        };
        assert_eq!(i.def(), Some(Reg(5)));
        assert!(i.writes(Reg(5)));
        assert!(!i.writes(Reg(1)));
        assert!(!i.is_global_access());

        let ld = Inst::LdGlobal {
            ty: Ty::F32,
            dst: Reg(0),
            mref: MemRef::direct(Reg(1)),
        };
        assert!(ld.is_global_access());
        let ls = Inst::LdShared {
            ty: Ty::F32,
            dst: Reg(0),
            mref: MemRef::direct(Reg(1)),
        };
        assert!(ls.is_shared_access());
        assert_eq!(Inst::Bar.def(), None);
    }

    /// Exhaustive `def()`/`writes()` coverage: one instance of *every*
    /// `Inst` variant, checked against its expected def with a full match
    /// (no wildcard) so that adding a variant without deciding what it
    /// defines fails to compile here first, not silently in a dataflow.
    #[test]
    fn def_covers_every_variant() {
        let m = MemRef::indexed(Reg(9), Reg(10), 4);
        let all: Vec<(Inst, Option<Reg>)> = vec![
            (
                Inst::MovImm {
                    dst: Reg(0),
                    value: Value::I32(1),
                },
                Some(Reg(0)),
            ),
            (
                Inst::Mov {
                    dst: Reg(1),
                    src: Reg(2),
                },
                Some(Reg(1)),
            ),
            (
                Inst::ReadSpecial {
                    dst: Reg(2),
                    sr: SpecialReg::TidX,
                },
                Some(Reg(2)),
            ),
            (
                Inst::ReadParam {
                    dst: Reg(3),
                    idx: 0,
                },
                Some(Reg(3)),
            ),
            (
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    dst: Reg(4),
                    a: Reg(1).into(),
                    b: Reg(2).into(),
                },
                Some(Reg(4)),
            ),
            (
                Inst::Cmp {
                    op: CmpOp::Lt,
                    ty: Ty::I32,
                    dst: Reg(5),
                    a: Reg(1).into(),
                    b: Reg(2).into(),
                },
                Some(Reg(5)),
            ),
            (
                Inst::Un {
                    op: UnOp::Neg,
                    ty: Ty::I32,
                    dst: Reg(6),
                    a: Reg(1).into(),
                },
                Some(Reg(6)),
            ),
            (
                Inst::Select {
                    dst: Reg(7),
                    cond: Reg(5),
                    a: Reg(1).into(),
                    b: Reg(2).into(),
                },
                Some(Reg(7)),
            ),
            (
                Inst::Cvt {
                    dst: Reg(8),
                    ty: Ty::I64,
                    src: Reg(1).into(),
                },
                Some(Reg(8)),
            ),
            (
                Inst::LdGlobal {
                    ty: Ty::I32,
                    dst: Reg(11),
                    mref: m,
                },
                Some(Reg(11)),
            ),
            (
                Inst::StGlobal {
                    ty: Ty::I32,
                    src: Reg(11).into(),
                    mref: m,
                },
                None,
            ),
            (
                Inst::LdShared {
                    ty: Ty::I32,
                    dst: Reg(12),
                    mref: m,
                },
                Some(Reg(12)),
            ),
            (
                Inst::StShared {
                    ty: Ty::I32,
                    src: Reg(12).into(),
                    mref: m,
                },
                None,
            ),
            (
                Inst::AtomGlobal {
                    op: AtomOp::Add,
                    ty: Ty::I32,
                    mref: m,
                    src: Reg(1).into(),
                    dst: Some(Reg(13)),
                },
                Some(Reg(13)),
            ),
            (
                Inst::AtomGlobal {
                    op: AtomOp::Add,
                    ty: Ty::I32,
                    mref: m,
                    src: Reg(1).into(),
                    dst: None,
                },
                None,
            ),
            (Inst::Bar, None),
            (
                Inst::Bra {
                    target: Label(0),
                    cond: Some((Reg(5), true)),
                },
                None,
            ),
            (Inst::Ret, None),
        ];
        // Every variant must appear in the list above. This match has no
        // wildcard arm: extend both it and the list when adding a variant.
        for (inst, _) in &all {
            match inst {
                Inst::MovImm { .. }
                | Inst::Mov { .. }
                | Inst::ReadSpecial { .. }
                | Inst::ReadParam { .. }
                | Inst::Bin { .. }
                | Inst::Cmp { .. }
                | Inst::Un { .. }
                | Inst::Select { .. }
                | Inst::Cvt { .. }
                | Inst::LdGlobal { .. }
                | Inst::StGlobal { .. }
                | Inst::LdShared { .. }
                | Inst::StShared { .. }
                | Inst::AtomGlobal { .. }
                | Inst::Bar
                | Inst::Bra { .. }
                | Inst::Ret => {}
            }
        }
        for (inst, want) in &all {
            assert_eq!(inst.def(), *want, "def() mismatch for {inst:?}");
            if let Some(r) = want {
                assert!(inst.writes(*r), "writes() false for def of {inst:?}");
                let mut used = false;
                inst.for_each_use(|u| used |= u == *r);
                assert!(!used, "def reported as use for {inst:?}");
            }
        }
        // Spot-check use sets: stores read their source and both memref regs.
        let st = Inst::StShared {
            ty: Ty::I32,
            src: Reg(12).into(),
            mref: m,
        };
        let mut uses = Vec::new();
        st.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(12), Reg(9), Reg(10)]);
    }

    #[test]
    fn immediates_render_with_type_suffixes() {
        assert_eq!(format_imm(Value::I32(-5)), "-5");
        assert_eq!(format_imm(Value::I64(7)), "7L");
        assert_eq!(format_imm(Value::U64(64)), "0x40");
        assert_eq!(format_imm(Value::F32(1.0)), "1.0f");
        assert_eq!(format_imm(Value::F64(2.5)), "2.5");
        assert_eq!(format_imm(Value::Pred(true)), "true");
    }

    #[test]
    fn disasm_contains_name_and_instructions() {
        let k = Kernel {
            name: "demo".into(),
            insts: vec![
                Inst::MovImm {
                    dst: Reg(0),
                    value: Value::I32(1),
                },
                Inst::Ret,
            ],
            label_targets: vec![1],
            num_regs: 1,
            shared_bytes: 0,
            num_params: 0,
            lines: Vec::new(),
        };
        let d = k.disasm();
        assert!(d.contains(".kernel demo"));
        assert!(d.contains("mov %r0, 1"));
        assert!(d.contains("L0:"));
        assert!(d.contains("ret"));
        // No line table: no `.loc` directives in the listing.
        assert!(!d.contains(".loc"));
    }

    #[test]
    fn disasm_emits_loc_on_line_change() {
        let k = Kernel {
            name: "demo".into(),
            insts: vec![
                Inst::MovImm {
                    dst: Reg(0),
                    value: Value::I32(1),
                },
                Inst::Mov {
                    dst: Reg(0),
                    src: Reg(0),
                },
                Inst::Ret,
            ],
            label_targets: vec![],
            num_regs: 1,
            shared_bytes: 0,
            num_params: 0,
            lines: vec![3, 3, 7],
        };
        assert_eq!(k.line_of(0), Some(3));
        assert_eq!(k.line_of(2), Some(7));
        assert_eq!(k.line_of(9), None);
        let d = k.disasm();
        // One `.loc` per change, not per instruction.
        assert_eq!(d.matches(".loc").count(), 2);
        assert!(d.contains(".loc 3"));
        assert!(d.contains(".loc 7"));
    }
}
