//! # gpsim — a deterministic SIMT GPU simulator
//!
//! `gpsim` is the hardware substrate for the reproduction of *"Reduction
//! Operations in Parallel Loops for GPGPUs"* (Xu et al., PMAM/PPoPP 2014).
//! The paper evaluates OpenACC reduction codegen on an NVIDIA K20c; this
//! crate provides a software stand-in with the properties that codegen
//! depends on:
//!
//! - warps of 32 threads executing in lockstep with divergence and
//!   reconvergence ([`exec`]),
//! - per-block shared memory with a 32-bank conflict model,
//! - global memory with 128-byte-segment coalescing,
//! - `__syncthreads()`-style block barriers with deadlock detection,
//! - **no** inter-block synchronization (the constraint that forces the
//!   paper's two-kernel gang reduction),
//! - a deterministic cycle cost model ([`cost`]) calibrated to Kepler-class
//!   throughput, so codegen strategies differ in modelled time the same way
//!   the paper's measurements differ.
//!
//! ## Quick example
//!
//! ```
//! use gpsim::{Device, KernelBuilder, LaunchConfig, MemRef, SpecialReg, Ty, Value, BinOp};
//!
//! // out[i] = i * 2 for one block of 32 threads
//! let mut b = KernelBuilder::new("double");
//! let out = b.param(0);
//! let tid = b.special(SpecialReg::TidX);
//! let v = b.bin(BinOp::Mul, Ty::I32, tid, Value::I32(2));
//! let t64 = b.cvt(Ty::I64, tid);
//! b.st_global(Ty::I32, MemRef::indexed(out, t64, 4), v);
//! let kernel = b.finish();
//!
//! let mut dev = Device::default();
//! let buf = dev.alloc_elems(Ty::I32, 32).unwrap();
//! dev.launch(&kernel, LaunchConfig::d1(1, 32), &[Value::U64(buf.addr)]).unwrap();
//! assert_eq!(dev.peek(Ty::I32, buf.addr + 4 * 5).unwrap(), Value::I32(10));
//! ```

pub mod builder;
pub mod cert;
pub mod coalesce;
pub mod compiled;
pub mod cost;
pub mod device;
pub mod disasm;
pub mod error;
pub mod exec;
pub mod ir;
pub mod memory;
pub mod profile;
pub mod sanitizer;
pub mod stats;
pub mod trace;
pub mod types;
pub mod verify;

pub use builder::KernelBuilder;
pub use cert::{
    run_symbolic, CertConfig, CertObservable, CertReport, CertVerdict, SVal, SymMemory, TermId,
    TermPool,
};
pub use compiled::CompiledKernel;
pub use cost::{CostModel, DeviceConfig, ExecTier};
pub use device::Device;
pub use disasm::parse_kernel;
pub use error::SimError;
pub use exec::{
    eval_bin, eval_cmp, eval_un, run_kernel_instrumented, run_kernel_traced, LaunchConfig,
};
pub use ir::{AtomOp, BinOp, CmpOp, Inst, Kernel, Label, MemRef, Operand, Reg, SpecialReg, UnOp};
pub use memory::{BufferHandle, GlobalMemory, SharedMemory};
pub use profile::{
    BlockProfile, BlockSpan, LaunchProfile, PcCounters, ProfileConfig, SessionProfile, SpanKind,
    TimelineSpan,
};
pub use sanitizer::{
    AccessInfo, AccessKind, BlockSanitizer, HazardClass, HazardReport, HazardSpace,
    LaunchSanitizer, SanitizerConfig, SanitizerLevel,
};
pub use stats::{LaunchStats, SessionStats};
pub use trace::{MemTouch, Trace, TraceEvent, TraceSpace};
pub use types::{Ty, Value};
pub use verify::{verify_kernel, VerifyClass, VerifyConfig, VerifyFinding, VerifyReport};
